//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the surface this project uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), [`RngExt::random`] / [`RngExt::random_range`], and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64, so sequences
//! are stable across platforms and releases — the workspace's determinism
//! tests rely on that.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's word stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // `start + u * span` can round up to exactly `end`; keep the
        // half-open contract.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

/// The convenience sampling methods the workspace calls on its generators.
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let n = rng.random_range(3usize..10);
            assert!((3..10).contains(&n));
            let f = rng.random_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let _: u64 = rng.random_range(0u64..=u64::MAX);
            let _: u8 = rng.random_range(0u8..=u8::MAX);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
