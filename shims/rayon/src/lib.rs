//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small but *real* data-parallel iterator: work is distributed over
//! `std::thread::scope` workers that pull items from a shared queue
//! (dynamic load balancing — synthesis candidates vary wildly in cost), and
//! results are re-ordered by input index so every adaptor is
//! order-preserving. Parallel and sequential execution therefore produce
//! identical outputs for pure per-item functions.
//!
//! Unlike upstream rayon, adaptors evaluate eagerly: each `map` /
//! `filter_map` is one parallel pass. Chains of adaptors insert a barrier
//! per stage, which is fine for the coarse-grained fan-outs this workspace
//! runs.

use std::sync::Mutex;

/// Number of worker threads a parallel pass will use.
///
/// Honors `RAYON_NUM_THREADS` when set (like upstream), otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of scoped workers, preserving input
/// order in the output. Items are claimed one at a time from a shared
/// queue, so uneven per-item cost still keeps all workers busy.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = current_num_threads().min(items.len());
    parallel_map_with_workers(items, f, workers)
}

fn parallel_map_with_workers<T, U, F>(items: Vec<T>, f: F, workers: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    let mut panic_payload = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let next = queue.lock().unwrap().next();
                    let Some((index, item)) = next else { break };
                    let out = f(item);
                    results.lock().unwrap().push((index, out));
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload survives (the scope
        // itself would rethrow a generic "a scoped thread panicked").
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    let mut indexed = match results.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    indexed.sort_unstable_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, out)| out).collect()
}

/// An order-preserving parallel iterator over an owned buffer of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel `map`; output order matches input order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Parallel `filter_map`; surviving items keep their relative order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Parallel `flat_map`; per-item outputs are concatenated in input
    /// order.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> ParIter<U>
    where
        I: IntoIterator<Item = U>,
        I::IntoIter: Send,
        F: Fn(T) -> I + Sync,
    {
        ParIter {
            items: parallel_map(self.items, |item| f(item).into_iter().collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel `filter`.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        self.filter_map(|item| if f(&item) { Some(item) } else { None })
    }

    /// Gathers the items into any `FromIterator` collection, in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Applies `f` to every item in parallel, for side effects.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Number of items remaining in the pipeline.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;

    /// Consumes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`].
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_relative_order() {
        let out: Vec<usize> = (0..100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(out, (0..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_completes() {
        let out: Vec<u64> = (0u64..64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b)))
            .collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn worker_panic_payload_is_propagated() {
        // Pin the worker count so the threaded path runs even on
        // single-CPU machines (without touching the process environment).
        let result = std::panic::catch_unwind(|| {
            crate::parallel_map_with_workers(
                (0..32).collect::<Vec<u32>>(),
                |x| {
                    assert!(x != 17, "original message");
                    x
                },
                4,
            )
        });
        let payload = result.expect_err("map must panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or_default();
        assert!(
            message.contains("original message"),
            "payload lost: {message:?}"
        );
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x).collect::<Vec<_>>().iter().sum();
        assert_eq!(s, 6);
    }
}
