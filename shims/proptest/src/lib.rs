//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest its test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`Just`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case index instead of a minimized input), and case
//! generation is seeded from the case index, so every run explores the
//! same inputs.

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Execution plumbing used by the generated test bodies.

    use super::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case generator.
    pub type TestRng = StdRng;

    /// Builds the generator for case number `case` of a test.
    pub fn rng_for_case(case: u64) -> TestRng {
        // Golden-ratio stride keeps neighboring cases' streams unrelated.
        TestRng::seed_from_u64(0x5EED_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A failed property with its explanation.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

use test_runner::TestRng;

/// Run-time knobs of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

/// Parses a `PROPTEST_CASES`-style override value; `None` for unset,
/// non-numeric or non-positive input. Separated from the environment read
/// so it is testable without mutating process-global state.
fn parse_cases(value: Option<&str>) -> Option<u32> {
    value?.trim().parse().ok().filter(|&c| c > 0)
}

/// The `PROPTEST_CASES` environment override: when set to a positive
/// integer it replaces the default case count (as upstream does) and —
/// *unlike* upstream, where explicit configs win — also acts as a ceiling
/// on [`ProptestConfig::with_cases`] requests, so one variable trims every
/// property suite at once (CI smoke runs, quick local iterations). A swap
/// to the registry crate would lose the ceiling behavior; suites relying
/// on it would run at their full explicit case counts again.
fn env_cases() -> Option<u32> {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref())
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test (capped by the
    /// `PROPTEST_CASES` environment variable when set).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: match env_cases() {
                Some(ceiling) => cases.min(ceiling),
                None => cases,
            },
        }
    }
}

/// Attempts before a [`Strategy::prop_filter`] gives up on a case. Fixed
/// (not a [`ProptestConfig`] knob) because strategies have no access to
/// the active config at generation time.
const MAX_FILTER_REJECTS: u32 = 1000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, resampling until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted rejections: {}", self.reason);
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Generates `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      )+
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__case as u64);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{} (deterministic; \
                         re-run reproduces it): {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
    )+};
}

/// `assert!` returning a [`test_runner::TestCaseError`] instead of
/// panicking, so the harness can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_override_parses_and_caps() {
        // The parse logic is tested through its pure entry point; mutating
        // the real environment here would race sibling tests that read
        // `PROPTEST_CASES` at runtime.
        assert_eq!(crate::parse_cases(None), None);
        assert_eq!(crate::parse_cases(Some("7")), Some(7));
        assert_eq!(crate::parse_cases(Some(" 12 ")), Some(12));
        assert_eq!(crate::parse_cases(Some("0")), None);
        assert_eq!(crate::parse_cases(Some("not a number")), None);
        // The ceiling semantics on top of a parsed override.
        let apply = |ceiling: Option<u32>, cases: u32| match ceiling {
            Some(c) => cases.min(c),
            None => cases,
        };
        assert_eq!(apply(crate::parse_cases(Some("7")), 64), 7);
        assert_eq!(apply(crate::parse_cases(Some("7")), 3), 3);
        assert_eq!(apply(crate::parse_cases(None), 64), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..=12, x in 0.5f64..2.0) {
            prop_assert!((2..=12).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn combinators_compose(
            (n, pairs) in (1usize..10).prop_flat_map(|n| {
                let pairs = crate::collection::vec(
                    (0..n, 0..n).prop_filter("distinct", move |(a, b)| a != b || n == 1),
                    0..8,
                );
                (Just(n), pairs)
            }),
            flag in crate::bool::ANY,
        ) {
            if n == 1 {
                prop_assert!(pairs.iter().all(|&(a, b)| a == 0 && b == 0));
            } else {
                prop_assert!(pairs.iter().all(|&(a, b)| a < n && b < n && a != b));
            }
            let _ = flag;
        }

        #[test]
        fn early_return_is_allowed(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }
}
