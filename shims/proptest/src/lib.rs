//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest its test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`Just`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Failing cases are **shrunk** before being reported: the harness walks
//! linear candidate passes — collection removal, integer halving toward
//! the range start, component-wise tuple shrinks — re-running the property
//! on each candidate and descending into the first one that still fails,
//! until no candidate fails or [`MAX_SHRINK_RUNS`] re-runs are spent. The
//! panic message then carries the minimized input (`Debug`-formatted)
//! instead of whatever the random stream happened to produce first.
//!
//! Differences from upstream: `prop_flat_map` output does not shrink (the
//! second-stage strategy only lives for the duration of generation), and
//! case generation is seeded from the case index, so every run explores
//! the same inputs.

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Execution plumbing used by the generated test bodies.

    use super::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case generator.
    pub type TestRng = StdRng;

    /// Builds the generator for case number `case` of a test.
    pub fn rng_for_case(case: u64) -> TestRng {
        // Golden-ratio stride keeps neighboring cases' streams unrelated.
        TestRng::seed_from_u64(0x5EED_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A failed property with its explanation.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

use test_runner::TestRng;

/// Run-time knobs of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

/// Parses a `PROPTEST_CASES`-style override value; `None` for unset,
/// non-numeric or non-positive input. Separated from the environment read
/// so it is testable without mutating process-global state.
fn parse_cases(value: Option<&str>) -> Option<u32> {
    value?.trim().parse().ok().filter(|&c| c > 0)
}

/// The `PROPTEST_CASES` environment override: when set to a positive
/// integer it replaces the default case count (as upstream does) and —
/// *unlike* upstream, where explicit configs win — also acts as a ceiling
/// on [`ProptestConfig::with_cases`] requests, so one variable trims every
/// property suite at once (CI smoke runs, quick local iterations). A swap
/// to the registry crate would lose the ceiling behavior; suites relying
/// on it would run at their full explicit case counts again.
fn env_cases() -> Option<u32> {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref())
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test (capped by the
    /// `PROPTEST_CASES` environment variable when set).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: match env_cases() {
                Some(ceiling) => cases.min(ceiling),
                None => cases,
            },
        }
    }
}

/// Attempts before a [`Strategy::prop_filter`] gives up on a case. Fixed
/// (not a [`ProptestConfig`] knob) because strategies have no access to
/// the active config at generation time.
const MAX_FILTER_REJECTS: u32 = 1000;

/// Ceiling on property re-runs spent minimizing one failure. Shrinking is
/// best-effort: when the budget runs out, the smallest input found so far
/// is reported. Bounded so a pathological candidate space (e.g. float
/// halving, which converges but never terminates on its own) cannot hang
/// a failing test.
pub const MAX_SHRINK_RUNS: usize = 256;

// --- The shrink tree ----------------------------------------------------

/// A generated value together with the recipe for its simpler variants.
///
/// Shrinking explores candidates lazily: `candidates()` is only invoked
/// on values that made the property fail, and each candidate carries its
/// own recipe so the descent can continue from whichever one still fails.
pub struct Shrinkable<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// A value with the given candidate recipe.
    pub fn new(value: T, children: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Shrinkable {
            value,
            children: Rc::new(children),
        }
    }

    /// A value with no simpler variants.
    pub fn leaf(value: T) -> Self {
        Shrinkable::new(value, Vec::new)
    }

    /// The generated (or shrunken) value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Unwraps the value, discarding the shrink recipe.
    pub fn into_value(self) -> T {
        self.value
    }

    /// The simpler variants to try, simplest first.
    pub fn candidates(&self) -> Vec<Shrinkable<T>> {
        (self.children)()
    }
}

/// Minimizes a failing input: repeatedly re-runs `run` over the failing
/// value's candidates and descends into the first candidate that still
/// fails, stopping when none fail or [`MAX_SHRINK_RUNS`] re-runs are
/// spent. Returns the smallest failing value found, its error, and the
/// number of accepted shrink steps.
pub fn shrink_failure<T: 'static>(
    mut current: Shrinkable<T>,
    mut err: test_runner::TestCaseError,
    mut run: impl FnMut(&T) -> test_runner::TestCaseResult,
) -> (T, test_runner::TestCaseError, usize) {
    let mut steps = 0usize;
    let mut budget = MAX_SHRINK_RUNS;
    'descend: loop {
        for cand in current.candidates() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if let Err(e) = run(cand.value()) {
                err = e;
                current = cand;
                steps += 1;
                continue 'descend;
            }
        }
        return (current.into_value(), err, steps);
    }
}

/// One case of a `proptest!` body: draws a value from `strategy`, runs
/// the property, and on failure shrinks the input. Returns `None` when
/// the case passes, `Some((minimal_input, error, shrink_steps))` when it
/// fails. Exists as a function (rather than macro-expanded code) so the
/// property closure's argument type is pinned by `strategy` — method
/// calls inside the body then resolve without annotations.
#[doc(hidden)]
pub fn run_shrink_case<S, R>(
    strategy: &S,
    rng: &mut TestRng,
    mut run: R,
) -> Option<(S::Value, test_runner::TestCaseError, usize)>
where
    S: Strategy,
    S::Value: 'static,
    R: FnMut(&S::Value) -> test_runner::TestCaseResult,
{
    let shrinkable = strategy.generate_shrinkable(rng);
    match run(shrinkable.value()) {
        Ok(()) => None,
        Err(e) => Some(shrink_failure(shrinkable, e, run)),
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Draws one value together with its shrink recipe. Consumes the
    /// random stream exactly as [`Strategy::generate`] does, so the two
    /// entry points produce identical values from identical generators.
    /// The default recipe has no candidates (no shrinking).
    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        Shrinkable::leaf(self.generate(rng))
    }

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, resampling until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f: Rc::new(f),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

/// Maps a source shrink tree through `f`: candidates of the source value
/// become candidates of the mapped value.
fn map_shrinkable<S, U: 'static, F>(src: Shrinkable<S>, f: Rc<F>) -> Shrinkable<U>
where
    S: Clone + 'static,
    F: Fn(S) -> U + 'static,
{
    let value = f(src.value().clone());
    Shrinkable::new(value, move || {
        src.candidates()
            .into_iter()
            .map(|c| map_shrinkable(c, Rc::clone(&f)))
            .collect()
    })
}

impl<S: Strategy, U: 'static, F: Fn(S::Value) -> U + 'static> Strategy for Map<S, F>
where
    S::Value: Clone + 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }

    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<U> {
        map_shrinkable(self.inner.generate_shrinkable(rng), Rc::clone(&self.f))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
    // No generate_shrinkable override: the second-stage strategy is a
    // temporary of generation, so its shrink recipe cannot outlive this
    // call. Flat-mapped values fall back to the unshrunk default.
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: Rc<F>,
}

/// Restricts a shrink tree to candidates that still satisfy `pred`, so
/// shrinking never reports an input the strategy could not generate.
fn filter_shrinkable<T, F>(inner: Shrinkable<T>, pred: Rc<F>) -> Shrinkable<T>
where
    T: Clone + 'static,
    F: Fn(&T) -> bool + 'static,
{
    let value = inner.value().clone();
    Shrinkable::new(value, move || {
        inner
            .candidates()
            .into_iter()
            .filter(|c| pred(c.value()))
            .map(|c| filter_shrinkable(c, Rc::clone(&pred)))
            .collect()
    })
}

impl<S: Strategy, F: Fn(&S::Value) -> bool + 'static> Strategy for Filter<S, F>
where
    S::Value: Clone + 'static,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted rejections: {}", self.reason);
    }

    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<S::Value> {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.generate_shrinkable(rng);
            if (self.f)(v.value()) {
                return filter_shrinkable(v, Rc::clone(&self.f));
            }
        }
        panic!("prop_filter exhausted rejections: {}", self.reason);
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer types that shrink by halving the distance to the range start.
trait IntShrink: Copy + 'static {
    /// Candidates simpler than `v`, simplest first: `lo`, then values
    /// halving the remaining distance, ending at `v - 1`.
    fn halving(lo: Self, v: Self) -> Vec<Self>;
}

/// The shrink tree of an integer drawn from a range starting at `lo`.
fn int_shrinkable<T: IntShrink>(lo: T, v: T) -> Shrinkable<T> {
    Shrinkable::new(v, move || {
        T::halving(lo, v)
            .into_iter()
            .map(|c| int_shrinkable(lo, c))
            .collect()
    })
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl IntShrink for $t {
            fn halving(lo: Self, v: Self) -> Vec<Self> {
                let mut out = Vec::new();
                let mut step = v - lo;
                while step > 0 {
                    out.push(v - step);
                    step /= 2;
                }
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<$t> {
                int_shrinkable(self.start, self.generate(rng))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }

            fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<$t> {
                int_shrinkable(*self.start(), self.generate(rng))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// The shrink tree of a float drawn from a range starting at `lo`: the
/// range start itself, then the midpoint. The sequence converges without
/// terminating, so it relies on the [`MAX_SHRINK_RUNS`] budget.
fn f64_shrinkable(lo: f64, v: f64) -> Shrinkable<f64> {
    Shrinkable::new(v, move || {
        let mut out = Vec::new();
        if v > lo {
            out.push(f64_shrinkable(lo, lo));
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                out.push(f64_shrinkable(lo, mid));
            }
        }
        out
    })
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }

    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<f64> {
        f64_shrinkable(self.start, self.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($helper:ident: ($($s:ident . $idx:tt),+))*) => {$(
        /// Combines component shrink trees into a tuple tree: candidates
        /// shrink one component while holding the others at their current
        /// values.
        fn $helper<$($s: Clone + 'static),+>(
            parts: ($(Shrinkable<$s>,)+),
        ) -> Shrinkable<($($s,)+)> {
            let value = ($(parts.$idx.value().clone(),)+);
            Shrinkable::new(value, move || {
                let mut out = Vec::new();
                $(
                    for cand in parts.$idx.candidates() {
                        let mut next = parts.clone();
                        next.$idx = cand;
                        out.push($helper(next));
                    }
                )+
                out
            })
        }

        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone + 'static,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value> {
                $helper(($(self.$idx.generate_shrinkable(rng),)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    tuple_shrinkable1: (A.0)
    tuple_shrinkable2: (A.0, B.1)
    tuple_shrinkable3: (A.0, B.1, C.2)
    tuple_shrinkable4: (A.0, B.1, C.2, D.3)
    tuple_shrinkable5: (A.0, B.1, C.2, D.3, E.4)
    tuple_shrinkable6: (A.0, B.1, C.2, D.3, E.4, F.5)
    tuple_shrinkable7: (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    tuple_shrinkable8: (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Shrinkable, Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// The shrink tree of a generated `Vec`: removal candidates first
    /// (drop to the minimum length, drop the back half, drop each single
    /// element), then element-wise shrinks. Removals never go below the
    /// strategy's minimum length, so shrinking cannot report a `Vec` the
    /// strategy could not have generated.
    fn vec_shrinkable<T: Clone + 'static>(
        elems: Vec<Shrinkable<T>>,
        min_len: usize,
    ) -> Shrinkable<Vec<T>> {
        let value: Vec<T> = elems.iter().map(|e| e.value().clone()).collect();
        Shrinkable::new(value, move || {
            let n = elems.len();
            let mut out = Vec::new();
            if n > min_len {
                out.push(vec_shrinkable(elems[..min_len].to_vec(), min_len));
                let half = min_len.max(n / 2);
                if half > min_len && half < n {
                    out.push(vec_shrinkable(elems[..half].to_vec(), min_len));
                }
                for i in 0..n {
                    let mut rest = elems.clone();
                    rest.remove(i);
                    out.push(vec_shrinkable(rest, min_len));
                }
            }
            for i in 0..n {
                for cand in elems[i].candidates() {
                    let mut next = elems.clone();
                    next[i] = cand;
                    out.push(vec_shrinkable(next, min_len));
                }
            }
            out
        })
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + 'static,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Vec<S::Value>> {
            let len = rng.random_range(self.size.clone());
            let elems = (0..len)
                .map(|_| self.element.generate_shrinkable(rng))
                .collect();
            vec_shrinkable(elems, self.size.start)
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Shrinkable, Strategy, TestRng};
    use rand::RngExt;

    /// Generates `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }

        fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<bool> {
            if self.generate(rng) {
                Shrinkable::new(true, || vec![Shrinkable::leaf(false)])
            } else {
                Shrinkable::leaf(false)
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for every generated case and
/// shrinks the first failing input before reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      )+
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__case as u64);
                let __failure = $crate::run_shrink_case(&__strategy, &mut __rng, |__vals| {
                    let ($($pat,)+) = ::core::clone::Clone::clone(__vals);
                    (|| { $body ::core::result::Result::Ok(()) })()
                });
                if let ::core::option::Option::Some((__min, __err, __steps)) = __failure {
                    panic!(
                        "proptest `{}` failed at case {}/{} (deterministic; \
                         re-run reproduces it); shrunk {} step(s) to minimal \
                         input {:?}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __steps,
                        __min,
                        __err
                    );
                }
            }
        }
    )+};
}

/// `assert!` returning a [`test_runner::TestCaseError`] instead of
/// panicking, so the harness can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_override_parses_and_caps() {
        // The parse logic is tested through its pure entry point; mutating
        // the real environment here would race sibling tests that read
        // `PROPTEST_CASES` at runtime.
        assert_eq!(crate::parse_cases(None), None);
        assert_eq!(crate::parse_cases(Some("7")), Some(7));
        assert_eq!(crate::parse_cases(Some(" 12 ")), Some(12));
        assert_eq!(crate::parse_cases(Some("0")), None);
        assert_eq!(crate::parse_cases(Some("not a number")), None);
        // The ceiling semantics on top of a parsed override.
        let apply = |ceiling: Option<u32>, cases: u32| match ceiling {
            Some(c) => cases.min(c),
            None => cases,
        };
        assert_eq!(apply(crate::parse_cases(Some("7")), 64), 7);
        assert_eq!(apply(crate::parse_cases(Some("7")), 3), 3);
        assert_eq!(apply(crate::parse_cases(None), 64), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..=12, x in 0.5f64..2.0) {
            prop_assert!((2..=12).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn combinators_compose(
            (n, pairs) in (1usize..10).prop_flat_map(|n| {
                let pairs = crate::collection::vec(
                    (0..n, 0..n).prop_filter("distinct", move |(a, b)| a != b || n == 1),
                    0..8,
                );
                (Just(n), pairs)
            }),
            flag in crate::bool::ANY,
        ) {
            if n == 1 {
                prop_assert!(pairs.iter().all(|&(a, b)| a == 0 && b == 0));
            } else {
                prop_assert!(pairs.iter().all(|&(a, b)| a < n && b < n && a != b));
            }
            let _ = flag;
        }

        #[test]
        fn early_return_is_allowed(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }

    // --- Shrinking ------------------------------------------------------
    //
    // These tests drive `run_shrink_case` directly (not through the
    // `proptest!` macro) so they stay deterministic under any
    // `PROPTEST_CASES` ceiling: the case budget here is their own loop,
    // not the active config.

    /// Draws cases until `prop` fails, then returns the shrunk input.
    fn minimize<S>(strategy: S, mut prop: impl FnMut(&S::Value) -> bool) -> S::Value
    where
        S: crate::Strategy,
        S::Value: 'static,
    {
        for case in 0..256u64 {
            let mut rng = crate::test_runner::rng_for_case(case);
            let failure = crate::run_shrink_case(&strategy, &mut rng, |v| {
                if prop(v) {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("counterexample"))
                }
            });
            if let Some((min, _err, _steps)) = failure {
                return min;
            }
        }
        panic!("no failing case found");
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        // `n < 10` first fails at some random n >= 10; halving toward the
        // range start must land exactly on the smallest counterexample.
        assert_eq!(minimize((0u64..1000,), |&(n,)| n < 10), (10,));
    }

    #[test]
    fn vec_failures_shrink_by_removal_and_element_halving() {
        // `len < 3` fails at some random vec; removal passes must trim it
        // to exactly three elements and halving must zero each of them.
        let strategy = (crate::collection::vec(0usize..100, 0..20),);
        assert_eq!(minimize(strategy, |(v,)| v.len() < 3), (vec![0, 0, 0],));
    }

    #[test]
    fn vec_shrinking_respects_the_minimum_length() {
        // A strategy with a floor of 2 elements must never shrink below
        // it, even though the property fails for every input.
        let strategy = (crate::collection::vec(0usize..100, 2..20),);
        assert_eq!(minimize(strategy, |_| false), (vec![0, 0],));
    }

    #[test]
    fn shrinking_descends_through_prop_map() {
        // The property observes only the mapped string, but candidates
        // come from the integer source underneath the map.
        let strategy = ((0u64..1000).prop_map(|n| format!("{n:04}")),);
        assert_eq!(
            minimize(strategy, |(s,)| s.as_str() < "0010"),
            ("0010".to_string(),)
        );
    }

    #[test]
    fn shrinking_respects_prop_filter() {
        // Every shrunk candidate must still satisfy the filter (a <= b),
        // and the minimal counterexample of a + b >= 50 under it is (0, 50).
        let strategy = ((0usize..100, 0usize..100).prop_filter("ordered", |(a, b)| a <= b),);
        assert_eq!(minimize(strategy, |&((a, b),)| a + b < 50), ((0, 50),));
    }

    // The macro-level path: the property fails on every input, so any
    // positive case count hits it, and the panic message must carry the
    // minimized input (the range start, via integer halving).

    proptest! {
        fn always_fails_from_five(n in 5u64..1000) {
            prop_assert!(n == u64::MAX, "n = {n}");
        }
    }

    #[test]
    fn macro_reports_the_shrunk_input() {
        let payload =
            std::panic::catch_unwind(always_fails_from_five).expect_err("property should fail");
        let msg = match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => panic!("panic payload is not a string"),
        };
        assert!(msg.contains("minimal input (5,)"), "{msg}");
        assert!(msg.contains("always_fails_from_five"), "{msg}");
    }
}
