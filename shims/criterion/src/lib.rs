//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! warm-up iteration followed by `sample_size` timed samples and prints
//! `min / median / mean` wall-clock times — enough to compare variants and
//! to keep `cargo bench` compiling and runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing harness handed to each benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once per sample and records each duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &mut bencher.samples);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
        self
    }
}

/// Declares a function bundling several benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
