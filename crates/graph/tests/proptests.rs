//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use vi_noc_graph::{
    bellman_ford, connected_components, dijkstra, partition_kway, stoer_wagner, DiGraph, NodeId,
    PartitionConfig, SymGraph,
};

/// Strategy: a random directed graph as (n, edges) with n in 2..=12 and
/// weights in 0.1..100.0.
fn arb_digraph() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..=12).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 0.1f64..100.0).prop_filter("no self loop", |(u, v, _)| u != v),
            0..40,
        );
        (Just(n), edges)
    })
}

/// Strategy: a random undirected weighted graph.
fn arb_symgraph() -> impl Strategy<Value = SymGraph> {
    arb_digraph().prop_map(|(n, edges)| {
        let mut g = SymGraph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    })
}

fn build_digraph(n: usize, edges: &[(usize, usize, f64)]) -> DiGraph<(), f64> {
    let mut g = DiGraph::new();
    let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
    for &(u, v, w) in edges {
        g.add_edge(ids[u], ids[v], w);
    }
    g
}

proptest! {
    /// Dijkstra and Bellman–Ford agree on non-negative-weight graphs.
    #[test]
    fn dijkstra_matches_bellman_ford((n, edges) in arb_digraph()) {
        let g = build_digraph(n, &edges);
        let src = NodeId::from_index(0);
        let bf = bellman_ford(&g, src, |_, w| *w).expect("non-negative weights");
        let dj = dijkstra(&g, src, None, |_, w| *w);
        for (i, &bfi) in bf.iter().enumerate() {
            let node = NodeId::from_index(i);
            let d = dj.distance(node).unwrap_or(f64::INFINITY);
            prop_assert!((bfi - d).abs() < 1e-6 || (bfi.is_infinite() && d.is_infinite()),
                "node {i}: bellman-ford {bfi} vs dijkstra {d}");
        }
    }

    /// Shortest-path distances are monotone along the reconstructed path and
    /// the path is a real walk in the graph.
    #[test]
    fn dijkstra_paths_are_walks((n, edges) in arb_digraph()) {
        let g = build_digraph(n, &edges);
        let src = NodeId::from_index(0);
        let tree = dijkstra(&g, src, None, |_, w| *w);
        for i in 0..n {
            let node = NodeId::from_index(i);
            if let Some(path) = tree.path_nodes(node) {
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), node);
                for pair in path.windows(2) {
                    prop_assert!(g.contains_edge(pair[0], pair[1]),
                        "path step {}->{} is not an edge", pair[0], pair[1]);
                }
                let mut prev = -1.0;
                for &p in &path {
                    let d = tree.distance(p).unwrap();
                    prop_assert!(d >= prev - 1e-9);
                    prev = d;
                }
            }
        }
    }

    /// k-way partition invariants: every vertex assigned, exactly min(k, n)
    /// non-empty parts, and the cut never exceeds the total edge weight.
    #[test]
    fn partition_invariants(g in arb_symgraph(), k in 1usize..=6) {
        let cfg = PartitionConfig::default();
        let p = partition_kway(&g, k, &cfg);
        let expect_parts = k.min(g.len());
        prop_assert_eq!(p.len(), g.len());
        prop_assert_eq!(p.nonempty_part_count(), expect_parts);
        prop_assert!(p.cut_weight(&g) <= g.total_edge_weight() + 1e-9);
        for v in 0..g.len() {
            prop_assert!(p.part_of(v) < p.k());
        }
    }

    /// A 2-way partition's cut weight is lower-bounded by the global min cut.
    #[test]
    fn bisection_bounded_by_stoer_wagner(g in arb_symgraph()) {
        let p = partition_kway(&g, 2, &PartitionConfig::default());
        let (min_cut, _) = stoer_wagner(&g);
        // The heuristic is balanced so it may exceed the (unbalanced) global
        // min cut, but never undershoot it.
        prop_assert!(p.cut_weight(&g) >= min_cut - 1e-9,
            "bisection cut {} below global min cut {}", p.cut_weight(&g), min_cut);
    }

    /// Partitioning is deterministic for a fixed seed.
    #[test]
    fn partition_deterministic(g in arb_symgraph(), k in 1usize..=5, seed in 0u64..1000) {
        let cfg = PartitionConfig { seed, ..PartitionConfig::default() };
        let a = partition_kway(&g, k, &cfg);
        let b = partition_kway(&g, k, &cfg);
        prop_assert_eq!(a.assignment(), b.assignment());
    }

    /// Stoer–Wagner returns a cut consistent with its reported weight.
    #[test]
    fn stoer_wagner_weight_is_consistent(g in arb_symgraph()) {
        let (cut, side) = stoer_wagner(&g);
        let mut recomputed = 0.0;
        for u in 0..g.len() {
            for &(v, w) in g.neighbors(u) {
                if u < v && side[u] != side[v] {
                    recomputed += w;
                }
            }
        }
        prop_assert!((cut - recomputed).abs() < 1e-6,
            "reported {cut} vs recomputed {recomputed}");
        prop_assert!(side.iter().any(|&s| s));
        prop_assert!(side.iter().any(|&s| !s));
    }

    /// Components partition the vertex set and are closed under adjacency.
    #[test]
    fn components_are_closed((n, edges) in arb_digraph()) {
        let g = build_digraph(n, &edges);
        let (comp, count) = connected_components(&g);
        prop_assert!(count >= 1);
        prop_assert!(comp.iter().all(|&c| c < count));
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(comp[u.index()], comp[v.index()]);
        }
    }
}
