//! Graph substrate for the `vi-noc` workspace.
//!
//! This crate provides the graph data structures and algorithms that the
//! NoC topology-synthesis flow of Seiculescu et al. (DAC 2009) relies on:
//!
//! * [`DiGraph`] — a directed multigraph with typed node/edge payloads, used
//!   for core communication graphs and switch-level connectivity graphs.
//! * [`SymGraph`] — an undirected weighted graph with vertex weights, the
//!   input representation for min-cut partitioning.
//! * [`dijkstra`] / [`bellman_ford`] — shortest paths with caller-supplied
//!   edge costs and edge filters (used by the min-cost path-allocation step).
//! * [`partition_kway`] — k-way min-cut partitioning (multilevel recursive
//!   bisection with Fiduccia–Mattheyses-style refinement, plus a greedy
//!   agglomerative scheme for small graphs), the workhorse behind step 11 of
//!   the paper's Algorithm 1 ("perform k min-cut partitions of VCG").
//! * [`stoer_wagner`] — global min-cut, used as a test oracle.
//!
//! All randomized routines take explicit seeds and are fully deterministic.
//!
//! # Example
//!
//! ```
//! use vi_noc_graph::{SymGraph, PartitionConfig, partition_kway};
//!
//! // Two natural clusters: {0,1,2} and {3,4,5} joined by one light edge.
//! let mut g = SymGraph::new(6);
//! for &(u, v, w) in &[(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0),
//!                     (3, 4, 10.0), (4, 5, 10.0), (3, 5, 10.0),
//!                     (2, 3, 1.0)] {
//!     g.add_edge(u, v, w);
//! }
//! let part = partition_kway(&g, 2, &PartitionConfig::default());
//! assert_eq!(part.k(), 2);
//! assert_eq!(part.cut_weight(&g), 1.0);
//! ```

#![warn(missing_docs)]

mod bellman_ford;
mod bisect;
mod coarsen;
mod digraph;
mod dijkstra;
mod fm;
mod ids;
mod kway;
mod mincut;
mod partition;
mod sym;
mod traversal;
mod unionfind;

pub use bellman_ford::bellman_ford;
pub use bisect::{bisect, BisectConfig};
pub use coarsen::{coarsen, CoarseGraph};
pub use digraph::DiGraph;
pub use dijkstra::{
    dijkstra, dijkstra_filtered, dijkstra_filtered_scratch, SearchScratch, ShortestPathTree,
};
pub use ids::{EdgeId, NodeId};
pub use kway::{greedy_agglomerative, partition_kway, PartitionConfig};
pub use mincut::stoer_wagner;
pub use partition::Partition;
pub use sym::SymGraph;
pub use traversal::{bfs_order, connected_components, dfs_order, is_connected, reachable_from};
pub use unionfind::UnionFind;
