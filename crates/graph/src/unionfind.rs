//! Disjoint-set (union–find) with path compression and union by rank.

/// A disjoint-set forest over `0..n`.
///
/// # Example
///
/// ```
/// use vi_noc_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the canonical representative of `x`, compressing paths.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened (`false` if already joined).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same_set(0, 2));
    }

    #[test]
    fn transitive_union_over_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same_set(0, 99));
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 3);
        let r = uf.find(2);
        assert_eq!(uf.find(2), r);
        assert_eq!(uf.find(0), r);
    }
}
