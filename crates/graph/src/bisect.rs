//! Multilevel weighted bisection.

use crate::coarsen::coarsen;
use crate::fm::refine_bisection;
use crate::sym::SymGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`bisect`].
#[derive(Debug, Clone)]
pub struct BisectConfig {
    /// Target vertex weight of side 0 (side 1 gets the remainder).
    pub target0: f64,
    /// Allowed relative overflow of either side beyond its target
    /// (e.g. `0.1` = 10 %).
    pub epsilon: f64,
    /// RNG seed (initial-solution tie-breaking, coarsening order).
    pub seed: u64,
    /// FM refinement passes per level.
    pub passes: usize,
    /// Below this vertex count the graph is partitioned directly.
    pub coarsen_below: usize,
    /// Number of random initial solutions tried at the coarsest level.
    pub restarts: usize,
}

impl Default for BisectConfig {
    fn default() -> Self {
        BisectConfig {
            target0: 0.0, // resolved to half the total weight when 0
            epsilon: 0.15,
            seed: 0xB15EC7,
            passes: 6,
            coarsen_below: 24,
            restarts: 4,
        }
    }
}

fn cut_of(g: &SymGraph, side: &[usize]) -> f64 {
    let mut cut = 0.0;
    for u in 0..g.len() {
        for &(v, w) in g.neighbors(u) {
            if u < v && side[u] != side[v] {
                cut += w;
            }
        }
    }
    cut
}

/// Greedy growth initial bisection: grow side 0 from `seed_vertex` by
/// repeatedly absorbing the unassigned vertex with the strongest connection
/// to side 0 until its weight reaches `target0`.
fn grow_initial(g: &SymGraph, seed_vertex: usize, target0: f64) -> Vec<usize> {
    let n = g.len();
    let mut side = vec![1usize; n];
    let mut conn = vec![0.0f64; n];
    let mut w0 = 0.0;

    let mut current = seed_vertex;
    loop {
        side[current] = 0;
        w0 += g.vertex_weight(current);
        if w0 >= target0 {
            break;
        }
        for &(v, w) in g.neighbors(current) {
            if side[v] == 1 {
                conn[v] += w;
            }
        }
        // Next: strongest-connected unassigned vertex; fall back to the
        // lowest-index unassigned vertex for disconnected graphs.
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if side[v] == 1 {
                match best {
                    Some((_, bw)) if conn[v] <= bw => {}
                    _ => best = Some((v, conn[v])),
                }
            }
        }
        match best {
            Some((v, _)) => current = v,
            None => break,
        }
    }
    side
}

/// Bisects `g` into sides `{0, 1}` minimizing cut weight subject to the
/// weight targets in `cfg`.
///
/// Uses multilevel coarsening (heavy-edge matching) with FM refinement at
/// every level; at the coarsest level several greedy-growth initial solutions
/// are tried and the best kept. Deterministic for a fixed seed.
///
/// Returns the side assignment (`side[v] ∈ {0, 1}`). For graphs with fewer
/// than two vertices, everything is side 0.
pub fn bisect(g: &SymGraph, cfg: &BisectConfig) -> Vec<usize> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let total = g.total_vertex_weight();
    let target0 = if cfg.target0 > 0.0 {
        cfg.target0
    } else {
        total / 2.0
    };
    let target1 = total - target0;
    let slack = cfg.epsilon * total;
    let max_w = [target0 + slack, target1 + slack];
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    bisect_recursive(g, target0, max_w, cfg, &mut rng, 0)
}

fn bisect_recursive(
    g: &SymGraph,
    target0: f64,
    max_w: [f64; 2],
    cfg: &BisectConfig,
    rng: &mut StdRng,
    depth: usize,
) -> Vec<usize> {
    let n = g.len();
    // Coarsen while the graph is large and still shrinking.
    if n > cfg.coarsen_below && depth < 24 {
        let coarse = coarsen(g, rng);
        if coarse.graph.len() < n {
            let coarse_side = bisect_recursive(&coarse.graph, target0, max_w, cfg, rng, depth + 1);
            let mut side = coarse.project(&coarse_side);
            refine_bisection(g, &mut side, max_w, cfg.passes);
            return side;
        }
    }

    // Coarsest level: several greedy-growth starts + FM, keep the best.
    let mut best_side: Option<Vec<usize>> = None;
    let mut best_cut = f64::INFINITY;
    for r in 0..cfg.restarts.max(1) {
        let seed_vertex = if r == 0 {
            // Deterministic first try: highest-degree vertex.
            (0..n)
                .max_by(|&a, &b| g.degree_weight(a).total_cmp(&g.degree_weight(b)))
                .unwrap_or(0)
        } else {
            rng.random_range(0..n)
        };
        let mut side = grow_initial(g, seed_vertex, target0);
        // Guarantee both sides non-empty.
        if side.iter().all(|&s| s == 0) {
            side[n - 1] = 1;
        }
        if side.iter().all(|&s| s == 1) {
            side[0] = 0;
        }
        refine_bisection(g, &mut side, max_w, cfg.passes);
        let cut = cut_of(g, &side);
        if cut < best_cut {
            best_cut = cut;
            best_side = Some(side);
        }
    }
    best_side.expect("restarts >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(heavy: f64, bridge: f64) -> SymGraph {
        let mut g = SymGraph::new(10);
        for c in 0..2 {
            let base = c * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.add_edge(base + i, base + j, heavy);
                }
            }
        }
        g.add_edge(4, 5, bridge);
        g
    }

    #[test]
    fn finds_natural_cut() {
        let g = two_clusters(10.0, 1.0);
        let side = bisect(&g, &BisectConfig::default());
        assert_eq!(cut_of(&g, &side), 1.0);
        // Each cluster entirely on one side.
        assert!(side[..5].iter().all(|&s| s == side[0]));
        assert!(side[5..].iter().all(|&s| s == side[5]));
        assert_ne!(side[0], side[5]);
    }

    #[test]
    fn handles_tiny_graphs() {
        assert!(bisect(&SymGraph::new(0), &BisectConfig::default()).is_empty());
        assert_eq!(bisect(&SymGraph::new(1), &BisectConfig::default()), vec![0]);
        let g = SymGraph::new(2);
        let side = bisect(&g, &BisectConfig::default());
        assert_ne!(side[0], side[1]);
    }

    #[test]
    fn respects_asymmetric_targets() {
        // 12 unit vertices in a ring; ask for a 3/9 split.
        let mut g = SymGraph::new(12);
        for i in 0..12 {
            g.add_edge(i, (i + 1) % 12, 1.0);
        }
        let cfg = BisectConfig {
            target0: 3.0,
            epsilon: 0.05,
            ..BisectConfig::default()
        };
        let side = bisect(&g, &cfg);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(
            (2..=4).contains(&w0),
            "side 0 should hold ~3 vertices, got {w0}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_clusters(5.0, 2.0);
        let a = bisect(&g, &BisectConfig::default());
        let b = bisect(&g, &BisectConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_disconnected_graphs() {
        let mut g = SymGraph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        // 4, 5 isolated.
        let side = bisect(&g, &BisectConfig::default());
        assert_eq!(side.len(), 6);
        assert!(side.contains(&0) && side.contains(&1));
    }

    #[test]
    fn large_graph_goes_through_multilevel_path() {
        // A 64-vertex graph of 4 clusters of 16, chained lightly: the natural
        // bisection has cut 1.0 between cluster pairs {0,1} and {2,3}.
        let mut g = SymGraph::new(64);
        for c in 0..4 {
            let base = c * 16;
            for i in 0..16 {
                for j in (i + 1)..16 {
                    g.add_edge(base + i, base + j, 5.0);
                }
            }
        }
        g.add_edge(15, 16, 3.0);
        g.add_edge(31, 32, 1.0);
        g.add_edge(47, 48, 3.0);
        let side = bisect(&g, &BisectConfig::default());
        let cut = cut_of(&g, &side);
        assert!(
            cut <= 3.0,
            "multilevel bisection should find cut<=3, got {cut}"
        );
    }
}
