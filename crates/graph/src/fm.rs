//! Fiduccia–Mattheyses-style refinement passes.
//!
//! Two flavors are provided:
//!
//! * [`refine_bisection`] — the classic FM pass for two-way partitions with
//!   per-side weight caps and hill-climbing (moves are committed as the best
//!   prefix of a full tentative pass, so the pass can escape local minima).
//! * [`refine_kway`] — a simpler greedy k-way pass that relocates boundary
//!   vertices to their best-gain part, used to polish k-way partitions after
//!   recursive bisection or agglomeration.
//!
//! Both run in O(passes · n²) in the worst case, which is ample for the graph
//! sizes arising in NoC synthesis (tens to low hundreds of vertices).

use crate::sym::SymGraph;

/// Tolerance below which a gain is considered zero (avoids cycling on f64
/// noise).
const GAIN_EPS: f64 = 1e-9;

/// Connectivity of vertex `v` to each of the `k` parts under `assignment`.
fn connectivity(g: &SymGraph, assignment: &[usize], v: usize, k: usize) -> Vec<f64> {
    let mut conn = vec![0.0; k];
    for &(nbr, w) in g.neighbors(v) {
        conn[assignment[nbr]] += w;
    }
    conn
}

/// One FM hill-climbing refinement of a bisection.
///
/// `side[v] in {0, 1}`; `max_weight[s]` caps the total vertex weight of side
/// `s`. Runs up to `passes` full passes, each committing the best prefix of
/// tentative moves. Returns the total cut-weight improvement achieved.
///
/// Sides are never emptied. Moves that would overflow the destination cap are
/// skipped, which also guarantees termination.
pub(crate) fn refine_bisection(
    g: &SymGraph,
    side: &mut [usize],
    max_weight: [f64; 2],
    passes: usize,
) -> f64 {
    let n = g.len();
    if n < 2 {
        return 0.0;
    }
    let mut total_improvement = 0.0;

    for _ in 0..passes {
        // Per-pass state.
        let mut locked = vec![false; n];
        let mut gain: Vec<f64> = (0..n)
            .map(|v| {
                let conn = connectivity(g, side, v, 2);
                conn[1 - side[v]] - conn[side[v]]
            })
            .collect();
        let mut side_weight = [0.0f64; 2];
        for v in 0..n {
            side_weight[side[v]] += g.vertex_weight(v);
        }
        let mut side_count = [0usize; 2];
        for v in 0..n {
            side_count[side[v]] += 1;
        }

        let mut moves: Vec<usize> = Vec::new();
        let mut cum_gain = 0.0;
        let mut best_gain = 0.0;
        let mut best_prefix = 0;

        for _ in 0..n {
            // Pick the unlocked vertex with maximal gain whose move is legal.
            let mut best: Option<(usize, f64)> = None;
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                let from = side[v];
                let to = 1 - from;
                if side_count[from] == 1 {
                    continue; // never empty a side
                }
                if side_weight[to] + g.vertex_weight(v) > max_weight[to] {
                    continue;
                }
                match best {
                    Some((_, bg)) if gain[v] <= bg => {}
                    _ => best = Some((v, gain[v])),
                }
            }
            let Some((v, gv)) = best else { break };

            // Tentatively move v.
            let from = side[v];
            let to = 1 - from;
            side[v] = to;
            side_weight[from] -= g.vertex_weight(v);
            side_weight[to] += g.vertex_weight(v);
            side_count[from] -= 1;
            side_count[to] += 1;
            locked[v] = true;
            cum_gain += gv;
            moves.push(v);

            // Update neighbor gains: for a neighbor u, gain changes by
            // ±2·w(u,v) depending on whether v moved toward or away from u.
            for &(u, w) in g.neighbors(v) {
                if locked[u] {
                    continue;
                }
                if side[u] == to {
                    gain[u] -= 2.0 * w;
                } else {
                    gain[u] += 2.0 * w;
                }
            }
            // v's own gain flips sign (not used again this pass; kept tidy).
            gain[v] = -gv;

            if cum_gain > best_gain + GAIN_EPS {
                best_gain = cum_gain;
                best_prefix = moves.len();
            }
        }

        // Roll back to the best prefix.
        for &v in moves.iter().skip(best_prefix) {
            side[v] = 1 - side[v];
        }

        if best_gain <= GAIN_EPS {
            break;
        }
        total_improvement += best_gain;
    }
    total_improvement
}

/// Greedy k-way refinement: repeatedly relocates the vertex/part pair with
/// the highest positive gain, subject to `max_weight` caps per part and the
/// rule that no part may be emptied.
///
/// Returns the total cut improvement.
pub(crate) fn refine_kway(
    g: &SymGraph,
    assignment: &mut [usize],
    k: usize,
    max_weight: &[f64],
    passes: usize,
) -> f64 {
    let n = g.len();
    if n == 0 || k < 2 {
        return 0.0;
    }
    debug_assert_eq!(max_weight.len(), k);

    let mut part_weight = vec![0.0f64; k];
    let mut part_count = vec![0usize; k];
    for v in 0..n {
        part_weight[assignment[v]] += g.vertex_weight(v);
        part_count[assignment[v]] += 1;
    }

    let mut total = 0.0;
    for _ in 0..passes {
        let mut improved = false;
        for v in 0..n {
            let from = assignment[v];
            if part_count[from] == 1 {
                continue;
            }
            let conn = connectivity(g, assignment, v, k);
            // Best destination by gain.
            let mut best_to = from;
            let mut best_gain = 0.0;
            for to in 0..k {
                if to == from {
                    continue;
                }
                if part_weight[to] + g.vertex_weight(v) > max_weight[to] {
                    continue;
                }
                let gain = conn[to] - conn[from];
                if gain > best_gain + GAIN_EPS {
                    best_gain = gain;
                    best_to = to;
                }
            }
            if best_to != from {
                part_weight[from] -= g.vertex_weight(v);
                part_weight[best_to] += g.vertex_weight(v);
                part_count[from] -= 1;
                part_count[best_to] += 1;
                assignment[v] = best_to;
                total += best_gain;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    /// Two dense clusters of 4 joined by a single light edge.
    fn two_cliques() -> SymGraph {
        let mut g = SymGraph::new(8);
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(base + i, base + j, 10.0);
                }
            }
        }
        g.add_edge(3, 4, 1.0);
        g
    }

    #[test]
    fn fm_recovers_natural_bisection_from_bad_start() {
        let g = two_cliques();
        // Deliberately interleaved start: cut = lots.
        let mut side = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = Partition::new(2, side.clone()).cut_weight(&g);
        // One vertex of slack per side: FM swaps need transient imbalance.
        let improvement = refine_bisection(&g, &mut side, [5.0, 5.0], 8);
        let after = Partition::new(2, side.clone()).cut_weight(&g);
        assert!(improvement > 0.0);
        assert!((before - improvement - after).abs() < 1e-9);
        assert_eq!(after, 1.0, "optimal cut separates the cliques");
    }

    #[test]
    fn fm_respects_weight_caps() {
        let g = two_cliques();
        let mut side = vec![0, 0, 0, 0, 0, 0, 0, 1];
        // Cap side 1 at weight 1: nothing may move into it beyond vertex 7.
        refine_bisection(&g, &mut side, [8.0, 1.0], 4);
        let w1: f64 = side
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == 1)
            .map(|(v, _)| g.vertex_weight(v))
            .sum();
        assert!(w1 <= 1.0 + 1e-9);
    }

    #[test]
    fn fm_never_empties_a_side() {
        let g = two_cliques();
        let mut side = vec![0, 0, 0, 0, 0, 0, 0, 1];
        refine_bisection(&g, &mut side, [8.0, 8.0], 8);
        assert!(side.contains(&0));
        assert!(side.contains(&1));
    }

    #[test]
    fn kway_refinement_improves_scrambled_partition() {
        let g = two_cliques();
        let mut a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = Partition::new(2, a.clone()).cut_weight(&g);
        let gain = refine_kway(&g, &mut a, 2, &[5.0, 5.0], 8);
        let after = Partition::new(2, a.clone()).cut_weight(&g);
        assert!(gain > 0.0);
        assert!(after < before);
    }

    #[test]
    fn kway_noop_on_single_part() {
        let g = two_cliques();
        let mut a = vec![0; 8];
        assert_eq!(refine_kway(&g, &mut a, 1, &[8.0], 4), 0.0);
    }

    #[test]
    fn fm_noop_on_tiny_graphs() {
        let g = SymGraph::new(1);
        let mut side = vec![0];
        assert_eq!(refine_bisection(&g, &mut side, [1.0, 1.0], 4), 0.0);
    }
}
