//! Bellman–Ford shortest paths (reference implementation).
//!
//! Used as a cross-check oracle for [`crate::dijkstra`] in property tests and
//! anywhere a simple O(V·E) single-source computation is acceptable.

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, NodeId};

/// Computes shortest distances from `source` by Bellman–Ford relaxation.
///
/// Returns `dist` indexed by node index; unreachable nodes hold
/// `f64::INFINITY`.
///
/// # Errors
///
/// Returns `Err(())`-like `None` if a negative cycle reachable from `source`
/// exists (expressed as `None` since callers in this workspace only use
/// non-negative costs and treat it as a logic error).
pub fn bellman_ford<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    cost: impl Fn(EdgeId, &E) -> f64,
) -> Option<Vec<f64>> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;

    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            let du = dist[u.index()];
            if du.is_finite() {
                let nd = du + cost(e, g.edge(e));
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Negative-cycle detection pass.
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let du = dist[u.index()];
        if du.is_finite() && du + cost(e, g.edge(e)) < dist[v.index()] - 1e-12 {
            return None;
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    #[test]
    fn matches_dijkstra_on_simple_graph() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        let edges = [
            (0, 1, 2.0),
            (0, 2, 4.0),
            (1, 2, 1.0),
            (1, 3, 7.0),
            (2, 4, 3.0),
            (3, 4, 1.0),
            (4, 3, 2.0),
        ];
        for &(u, v, w) in &edges {
            g.add_edge(n[u], n[v], w);
        }
        let bf = bellman_ford(&g, n[0], |_, w| *w).unwrap();
        let dj = dijkstra(&g, n[0], None, |_, w| *w);
        for i in 0..5 {
            let d = dj.distance(n[i]).unwrap_or(f64::INFINITY);
            assert!((bf[i] - d).abs() < 1e-9, "node {i}: bf={} dj={}", bf[i], d);
        }
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, -2.0);
        assert!(bellman_ford(&g, a, |_, w| *w).is_none());
    }

    #[test]
    fn handles_unreachable_nodes() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let _b = g.add_node(());
        let dist = bellman_ford(&g, a, |_, w| *w).unwrap();
        assert_eq!(dist[0], 0.0);
        assert!(dist[1].is_infinite());
    }
}
