//! k-way min-cut partitioning.
//!
//! This is the routine behind step 11 of the paper's Algorithm 1: *"Perform k
//! min-cut partitions of VCG(V, E, j)"* — cores that communicate heavily (or
//! have tight latency constraints, via the VCG edge weights) end up in the
//! same part and therefore share a switch.
//!
//! Two strategies are combined:
//!
//! * **Greedy agglomerative clustering** for small graphs (the common case —
//!   a voltage island rarely holds more than a couple dozen cores): start
//!   from singletons, repeatedly merge the pair of clusters with the heaviest
//!   inter-cluster weight, then polish with greedy k-way refinement.
//! * **Multilevel recursive bisection** ([`crate::bisect`]) for larger
//!   graphs, with k-way refinement at the end.
//!
//! Both are deterministic for a fixed [`PartitionConfig::seed`].

use crate::bisect::{bisect, BisectConfig};
use crate::fm::refine_kway;
use crate::partition::Partition;
use crate::sym::SymGraph;

/// Parameters for [`partition_kway`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Allowed relative imbalance (0.15 = a part may exceed the average
    /// weight by 15 %).
    pub epsilon: f64,
    /// RNG seed for all randomized sub-steps.
    pub seed: u64,
    /// Refinement passes.
    pub passes: usize,
    /// Random restarts at the coarsest bisection level.
    pub restarts: usize,
    /// Optional hard-ish cap on part weight (e.g. the maximum switch size of
    /// the island). Best-effort: the cap is relaxed if it would make the
    /// requested part count infeasible — the synthesis flow re-checks switch
    /// size constraints downstream (paper §4).
    pub max_part_weight: Option<f64>,
    /// Graphs with at most this many vertices use agglomerative clustering
    /// instead of recursive bisection.
    pub agglomerative_below: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            epsilon: 0.2,
            seed: 0x5EED,
            passes: 8,
            restarts: 4,
            max_part_weight: None,
            agglomerative_below: 20,
        }
    }
}

impl PartitionConfig {
    /// Effective per-part weight cap for a `k`-way partition of `g`.
    fn cap(&self, g: &SymGraph, k: usize) -> f64 {
        let total = g.total_vertex_weight();
        let max_vw = (0..g.len()).map(|v| g.vertex_weight(v)).fold(0.0, f64::max);
        let balance_cap = (1.0 + self.epsilon) * total / k as f64;
        let requested = self
            .max_part_weight
            .unwrap_or(f64::INFINITY)
            .min(balance_cap);
        // Feasibility floor: a perfectly balanced partition may still need
        // one part of ceil-average weight.
        let floor = total / k as f64 + max_vw / 2.0;
        requested.max(floor).max(max_vw)
    }
}

/// Partitions `g` into `k` non-empty parts minimizing the cut weight.
///
/// `k` is clamped to `1..=n`; `k = 1` returns the trivial partition and
/// `k = n` the discrete one. The result always has exactly
/// `min(k, n)` non-empty parts.
///
/// # Example
///
/// ```
/// use vi_noc_graph::{SymGraph, PartitionConfig, partition_kway};
///
/// let mut g = SymGraph::new(4);
/// g.add_edge(0, 1, 9.0);
/// g.add_edge(2, 3, 9.0);
/// g.add_edge(1, 2, 1.0);
/// let p = partition_kway(&g, 2, &PartitionConfig::default());
/// assert_eq!(p.cut_weight(&g), 1.0);
/// assert_eq!(p.part_of(0), p.part_of(1));
/// assert_eq!(p.part_of(2), p.part_of(3));
/// ```
pub fn partition_kway(g: &SymGraph, k: usize, cfg: &PartitionConfig) -> Partition {
    let n = g.len();
    if n == 0 {
        return Partition::new(k.max(1), Vec::new());
    }
    let k = k.clamp(1, n);
    if k == 1 {
        return Partition::trivial(n);
    }
    if k == n {
        return Partition::discrete(n);
    }

    let cap = cfg.cap(g, k);
    let mut assignment = if n <= cfg.agglomerative_below {
        greedy_agglomerative(g, k, cfg).assignment().to_vec()
    } else {
        let mut assignment = vec![0usize; n];
        let all: Vec<usize> = (0..n).collect();
        recursive_bisect(g, &all, k, 0, cfg, &mut assignment, &mut 0);
        assignment
    };

    refine_kway(g, &mut assignment, k, &vec![cap; k], cfg.passes);
    enforce_cap(g, &mut assignment, k, cap);
    refine_kway(g, &mut assignment, k, &vec![cap; k], cfg.passes);
    fix_empty_parts(g, &mut assignment, k);
    Partition::new(k, assignment)
}

/// Repairs parts that exceed `cap` by relocating their least-attached
/// vertices into the lightest part that can accept them (even at negative
/// cut gain). Best-effort: stops when no receiving part has room, which can
/// only happen if `cap · k < total` (the caller's cap() floor prevents it
/// for unit weights).
fn enforce_cap(g: &SymGraph, assignment: &mut [usize], k: usize, cap: f64) {
    let mut weight = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        weight[p] += g.vertex_weight(v);
    }
    loop {
        let Some(over) = (0..k)
            .filter(|&p| weight[p] > cap + 1e-9)
            .max_by(|&a, &b| weight[a].total_cmp(&weight[b]))
        else {
            return;
        };
        // Least-attached vertex of the overweight part.
        let Some(v) = (0..assignment.len())
            .filter(|&v| assignment[v] == over)
            .min_by(|&a, &b| {
                let attach = |v: usize| {
                    g.neighbors(v)
                        .iter()
                        .filter(|(u, _)| assignment[*u] == over)
                        .map(|(_, w)| *w)
                        .sum::<f64>()
                };
                attach(a).total_cmp(&attach(b)).then(a.cmp(&b))
            })
        else {
            return;
        };
        // Receiving part: the one the vertex attaches to most among those
        // with room; fall back to the lightest part with room.
        let vw = g.vertex_weight(v);
        let mut conn = vec![0.0f64; k];
        for &(u, w) in g.neighbors(v) {
            conn[assignment[u]] += w;
        }
        let dest = (0..k)
            .filter(|&p| p != over && weight[p] + vw <= cap + 1e-9)
            .max_by(|&a, &b| {
                conn[a]
                    .total_cmp(&conn[b])
                    .then(weight[b].total_cmp(&weight[a]))
            });
        let Some(dest) = dest else {
            return; // nowhere to put it; leave as-is
        };
        assignment[v] = dest;
        weight[over] -= vw;
        weight[dest] += vw;
    }
}

/// Recursive bisection helper: partitions the sub-vertex-set `vertices` into
/// `k` parts labelled starting at `*next_label`.
fn recursive_bisect(
    g: &SymGraph,
    vertices: &[usize],
    k: usize,
    depth: usize,
    cfg: &PartitionConfig,
    assignment: &mut [usize],
    next_label: &mut usize,
) {
    if k == 1 || vertices.len() <= 1 {
        let label = *next_label;
        *next_label += 1;
        for &v in vertices {
            assignment[v] = label;
        }
        return;
    }
    let (sub, map) = g.induced(vertices);
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = sub.total_vertex_weight();
    let bcfg = BisectConfig {
        target0: total * k0 as f64 / k as f64,
        epsilon: cfg.epsilon / 2.0,
        seed: cfg
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(depth as u64 * 7919 + vertices.len() as u64),
        passes: cfg.passes,
        coarsen_below: 24,
        restarts: cfg.restarts,
    };
    let mut side = bisect(&sub, &bcfg);

    // Each side must be able to host its share of parts.
    rebalance_counts(&sub, &mut side, k0, k1);

    let side0: Vec<usize> = map
        .iter()
        .zip(&side)
        .filter(|(_, s)| **s == 0)
        .map(|(&v, _)| v)
        .collect();
    let side1: Vec<usize> = map
        .iter()
        .zip(&side)
        .filter(|(_, s)| **s == 1)
        .map(|(&v, _)| v)
        .collect();
    recursive_bisect(g, &side0, k0, depth + 1, cfg, assignment, next_label);
    recursive_bisect(g, &side1, k1, depth + 1, cfg, assignment, next_label);
}

/// Ensures side 0 holds at least `k0` vertices and side 1 at least `k1`,
/// moving the least-connected vertices across if necessary.
fn rebalance_counts(g: &SymGraph, side: &mut [usize], k0: usize, k1: usize) {
    let n = side.len();
    debug_assert!(k0 + k1 <= n);
    loop {
        let c0 = side.iter().filter(|&&s| s == 0).count();
        let c1 = n - c0;
        let (needy, donor) = if c0 < k0 {
            (0, 1)
        } else if c1 < k1 {
            (1, 0)
        } else {
            break;
        };
        // Move the donor vertex with the least attachment to its own side.
        let v = (0..n)
            .filter(|&v| side[v] == donor)
            .min_by(|&a, &b| {
                let attach = |v: usize| {
                    g.neighbors(v)
                        .iter()
                        .filter(|(u, _)| side[*u] == donor)
                        .map(|(_, w)| *w)
                        .sum::<f64>()
                };
                attach(a).total_cmp(&attach(b)).then(a.cmp(&b))
            })
            .expect("donor side non-empty");
        side[v] = needy;
    }
}

/// Moves one vertex into each empty part (from the currently largest part,
/// choosing the vertex with the least connectivity to its own part) so the
/// partition ends with exactly `k` non-empty parts.
fn fix_empty_parts(g: &SymGraph, assignment: &mut [usize], k: usize) {
    loop {
        let mut count = vec![0usize; k];
        for &p in assignment.iter() {
            count[p] += 1;
        }
        let Some(empty) = count.iter().position(|&c| c == 0) else {
            return;
        };
        let donor = count
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(p, _)| p)
            .expect("k >= 1");
        let v = (0..assignment.len())
            .filter(|&v| assignment[v] == donor)
            .min_by(|&a, &b| {
                let attach = |v: usize| {
                    g.neighbors(v)
                        .iter()
                        .filter(|(u, _)| assignment[*u] == donor)
                        .map(|(_, w)| *w)
                        .sum::<f64>()
                };
                attach(a).total_cmp(&attach(b)).then(a.cmp(&b))
            })
            .expect("donor part non-empty");
        assignment[v] = empty;
    }
}

/// Greedy agglomerative k-way clustering.
///
/// Starts from singletons and repeatedly merges the cluster pair with the
/// heaviest inter-cluster weight, preferring merges that respect the
/// effective part-weight cap; once only `k` clusters remain, returns the
/// (compacted) partition. Used directly for small graphs and as a fallback.
pub fn greedy_agglomerative(g: &SymGraph, k: usize, cfg: &PartitionConfig) -> Partition {
    let n = g.len();
    if n == 0 {
        return Partition::new(k.max(1), Vec::new());
    }
    let k = k.clamp(1, n);
    let cap = cfg.cap(g, k);

    // cluster_of[v]: current cluster id (cluster ids are vertex indices of
    // their lowest member).
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut weight: Vec<f64> = (0..n).map(|v| g.vertex_weight(v)).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut n_clusters = n;

    // Inter-cluster weights, dense (n is small on this path).
    let mut w = vec![vec![0.0f64; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric fill of w[u][v]/w[v][u]
    for u in 0..n {
        for &(v, ew) in g.neighbors(u) {
            if u < v {
                w[u][v] += ew;
                w[v][u] += ew;
            }
        }
    }

    while n_clusters > k {
        // Best pair respecting the cap; fall back to best pair overall; fall
        // back to merging the two lightest clusters (disconnected graphs).
        let mut best: Option<(usize, usize, f64, bool)> = None;
        for a in 0..n {
            if !alive[a] {
                continue;
            }
            for b in (a + 1)..n {
                if !alive[b] || w[a][b] <= 0.0 {
                    continue;
                }
                let fits = weight[a] + weight[b] <= cap;
                let cand = (a, b, w[a][b], fits);
                best = match best {
                    None => Some(cand),
                    Some((pa, pb, pw, pfits)) => {
                        // Prefer cap-respecting merges, then heavier weight,
                        // then lower indices for determinism.
                        let better = (fits, w[a][b]) > (pfits, pw);
                        if better {
                            Some(cand)
                        } else {
                            Some((pa, pb, pw, pfits))
                        }
                    }
                };
            }
        }
        let (a, b) = match best {
            Some((a, b, _, _)) => (a, b),
            None => {
                // No inter-cluster edges left: merge the two lightest.
                let mut ids: Vec<usize> = (0..n).filter(|&c| alive[c]).collect();
                ids.sort_by(|&x, &y| weight[x].total_cmp(&weight[y]).then(x.cmp(&y)));
                (ids[0].min(ids[1]), ids[0].max(ids[1]))
            }
        };

        // Merge b into a.
        alive[b] = false;
        weight[a] += weight[b];
        for c in 0..n {
            if alive[c] && c != a {
                w[a][c] += w[b][c];
                w[c][a] = w[a][c];
            }
            w[b][c] = 0.0;
            w[c][b] = 0.0;
        }
        for cv in cluster_of.iter_mut() {
            if *cv == b {
                *cv = a;
            }
        }
        n_clusters -= 1;
    }

    Partition::new(n, cluster_of).compacted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(sizes: &[usize], intra: f64, bridge: f64) -> SymGraph {
        let n: usize = sizes.iter().sum();
        let mut g = SymGraph::new(n);
        let mut base = 0;
        let mut firsts = Vec::new();
        for &s in sizes {
            firsts.push(base);
            for i in 0..s {
                for j in (i + 1)..s {
                    g.add_edge(base + i, base + j, intra);
                }
            }
            base += s;
        }
        for pair in firsts.windows(2) {
            g.add_edge(pair[0], pair[1], bridge);
        }
        g
    }

    #[test]
    fn three_way_partition_finds_clusters() {
        let g = clusters(&[5, 5, 5], 10.0, 1.0);
        let p = partition_kway(&g, 3, &PartitionConfig::default());
        assert_eq!(p.nonempty_part_count(), 3);
        assert_eq!(p.cut_weight(&g), 2.0);
        // Intra-cluster vertices share parts.
        for c in 0..3 {
            let base = c * 5;
            for i in 1..5 {
                assert_eq!(p.part_of(base), p.part_of(base + i));
            }
        }
    }

    #[test]
    fn k_equals_one_and_n_are_degenerate() {
        let g = clusters(&[3, 3], 5.0, 1.0);
        assert_eq!(partition_kway(&g, 1, &PartitionConfig::default()).k(), 1);
        let d = partition_kway(&g, 6, &PartitionConfig::default());
        assert_eq!(d.nonempty_part_count(), 6);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let g = SymGraph::new(3);
        let p = partition_kway(&g, 10, &PartitionConfig::default());
        assert_eq!(p.nonempty_part_count(), 3);
    }

    #[test]
    fn all_parts_nonempty_even_on_awkward_graphs() {
        // Star graph: hub 0 connected to 9 leaves; ask for 4 parts.
        let mut g = SymGraph::new(10);
        for i in 1..10 {
            g.add_edge(0, i, 1.0);
        }
        let p = partition_kway(&g, 4, &PartitionConfig::default());
        assert_eq!(p.nonempty_part_count(), 4);
    }

    #[test]
    fn respects_part_weight_cap_when_feasible() {
        let g = clusters(&[4, 4, 4], 10.0, 1.0);
        let cfg = PartitionConfig {
            max_part_weight: Some(4.0),
            ..PartitionConfig::default()
        };
        let p = partition_kway(&g, 3, &cfg);
        let weights = p.part_weights(&g);
        for w in weights {
            assert!(w <= 4.0 + 1e-9, "part over cap: {w}");
        }
    }

    #[test]
    fn agglomerative_matches_structure() {
        let g = clusters(&[4, 4], 8.0, 0.5);
        let p = greedy_agglomerative(&g, 2, &PartitionConfig::default());
        assert_eq!(p.nonempty_part_count(), 2);
        assert_eq!(p.cut_weight(&g), 0.5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = clusters(&[6, 6, 6, 6], 4.0, 1.5);
        let a = partition_kway(&g, 4, &PartitionConfig::default());
        let b = partition_kway(&g, 4, &PartitionConfig::default());
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn large_graph_uses_recursive_bisection() {
        let g = clusters(&[16, 16, 16, 16], 5.0, 1.0);
        let p = partition_kway(&g, 4, &PartitionConfig::default());
        assert_eq!(p.nonempty_part_count(), 4);
        // Natural cut = 3 bridges.
        assert!(
            p.cut_weight(&g) <= 5.0 * 4.0,
            "cut {} too large",
            p.cut_weight(&g)
        );
        let im = p.imbalance(&g);
        assert!(im <= 1.5, "imbalance too high: {im}");
    }

    #[test]
    fn empty_graph_partition() {
        let g = SymGraph::new(0);
        let p = partition_kway(&g, 3, &PartitionConfig::default());
        assert!(p.is_empty());
    }
}
