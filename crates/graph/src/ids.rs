//! Typed index newtypes for graph nodes and edges.

use std::fmt;

/// Identifier of a node in a [`crate::DiGraph`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful for the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge in a [`crate::DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// The id is validated lazily: using an out-of-range id with a graph
    /// panics at the point of use.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn edge_id_round_trips_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
