//! Undirected weighted graph with vertex weights — the partitioning substrate.

/// An undirected graph with `f64` edge weights and vertex weights, stored as
/// symmetric adjacency lists.
///
/// This is the input representation for min-cut partitioning. Directed
/// communication graphs are symmetrized into a `SymGraph` by accumulating the
/// weights of both directions onto a single undirected edge (the cut metric
/// of the paper's VCG does not distinguish direction).
///
/// Adding an edge that already exists accumulates its weight. Self-loops are
/// ignored (they can never contribute to a cut).
///
/// # Example
///
/// ```
/// use vi_noc_graph::SymGraph;
///
/// let mut g = SymGraph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 0, 3.0); // accumulates onto the same undirected edge
/// assert_eq!(g.edge_weight(0, 1), 5.0);
/// assert_eq!(g.edge_weight(1, 2), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SymGraph {
    adj: Vec<Vec<(usize, f64)>>,
    vwt: Vec<f64>,
}

impl SymGraph {
    /// Creates a graph with `n` vertices (unit vertex weights) and no edges.
    pub fn new(n: usize) -> Self {
        SymGraph {
            adj: vec![Vec::new(); n],
            vwt: vec![1.0; n],
        }
    }

    /// Creates a graph whose vertex weights are given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is not strictly positive.
    pub fn with_vertex_weights(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "vertex weights must be positive"
        );
        SymGraph {
            adj: vec![Vec::new(); weights.len()],
            vwt: weights,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds (or accumulates onto) the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self-loops (`u == v`) are silently ignored. Zero or negative weights
    /// are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, or `w <= 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        assert!(w > 0.0, "edge weight must be positive (got {w})");
        if u == v {
            return;
        }
        Self::bump(&mut self.adj, u, v, w);
        Self::bump(&mut self.adj, v, u, w);
    }

    fn bump(adj: &mut [Vec<(usize, f64)>], from: usize, to: usize, w: f64) {
        if let Some(entry) = adj[from].iter_mut().find(|(n, _)| *n == to) {
            entry.1 += w;
        } else {
            adj[from].push((to, w));
        }
    }

    /// Weight of edge `{u, v}`, `0.0` if absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        self.adj[u]
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Number of distinct undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Sum of all undirected edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|l| l.iter().map(|(_, w)| *w))
            .sum::<f64>()
            / 2.0
    }

    /// Sum of edge weights incident to `u`.
    pub fn degree_weight(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|(_, w)| *w).sum()
    }

    /// Vertex weight of `u`.
    pub fn vertex_weight(&self, u: usize) -> f64 {
        self.vwt[u]
    }

    /// Replaces the vertex weight of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not strictly positive.
    pub fn set_vertex_weight(&mut self, u: usize, w: f64) {
        assert!(w > 0.0, "vertex weight must be positive");
        self.vwt[u] = w;
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwt.iter().sum()
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the subgraph and the mapping `sub index -> original index`.
    pub fn induced(&self, vertices: &[usize]) -> (SymGraph, Vec<usize>) {
        let mut back = vec![usize::MAX; self.len()];
        for (si, &v) in vertices.iter().enumerate() {
            back[v] = si;
        }
        let mut sub = SymGraph::with_vertex_weights(
            vertices.iter().map(|&v| self.vwt[v]).collect::<Vec<_>>(),
        );
        for (si, &v) in vertices.iter().enumerate() {
            for &(nbr, w) in &self.adj[v] {
                let sj = back[nbr];
                if sj != usize::MAX && si < sj {
                    sub.add_edge(si, sj, w);
                }
            }
        }
        (sub, vertices.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate_and_are_symmetric() {
        let mut g = SymGraph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 0, 3.0);
        assert_eq!(g.edge_weight(0, 1), 5.0);
        assert_eq!(g.edge_weight(1, 0), 5.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_edge_weight(), 5.0);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = SymGraph::new(2);
        g.add_edge(0, 0, 4.0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree_weight(0), 0.0);
    }

    #[test]
    fn vertex_weights_default_to_one() {
        let g = SymGraph::new(4);
        assert_eq!(g.total_vertex_weight(), 4.0);
        assert_eq!(g.vertex_weight(2), 1.0);
    }

    #[test]
    fn custom_vertex_weights() {
        let mut g = SymGraph::with_vertex_weights(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.total_vertex_weight(), 6.0);
        g.set_vertex_weight(0, 5.0);
        assert_eq!(g.total_vertex_weight(), 10.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_edge_weight() {
        let mut g = SymGraph::new(2);
        g.add_edge(0, 1, 0.0);
    }

    #[test]
    fn degree_weight_sums_incident_edges() {
        let mut g = SymGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.5);
        assert_eq!(g.degree_weight(0), 3.5);
        assert_eq!(g.degree_weight(1), 1.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut g = SymGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        let (sub, map) = g.induced(&[1, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.edge_weight(0, 1), 2.0);
        assert_eq!(map, vec![1, 2]);
    }
}
