//! Heavy-edge matching coarsening for multilevel partitioning.

use crate::sym::SymGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A coarsened graph together with the fine→coarse vertex mapping.
#[derive(Debug, Clone)]
pub struct CoarseGraph {
    /// The coarse graph (vertex weights are sums of merged fine vertices).
    pub graph: SymGraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<usize>,
}

impl CoarseGraph {
    /// Projects a coarse-level assignment back onto the fine graph.
    pub fn project(&self, coarse_assignment: &[usize]) -> Vec<usize> {
        self.map.iter().map(|&c| coarse_assignment[c]).collect()
    }
}

/// One level of heavy-edge matching coarsening.
///
/// Vertices are visited in a seeded random order; each unmatched vertex is
/// merged with its unmatched neighbor of maximum edge weight (or left alone
/// if all neighbors are matched). Edge weights between coarse vertices
/// accumulate; internal edges disappear.
///
/// The coarse graph has at least `ceil(n/2)` vertices; if no merging is
/// possible (e.g. edgeless graph) it is an identity copy.
pub fn coarsen(g: &SymGraph, rng: &mut StdRng) -> CoarseGraph {
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut match_of = vec![usize::MAX; n];
    for &u in &order {
        if match_of[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(usize, f64)> = None;
        for &(v, w) in g.neighbors(u) {
            if match_of[v] != usize::MAX || v == u {
                continue;
            }
            match best {
                Some((_, bw)) if w <= bw => {}
                _ => best = Some((v, w)),
            }
        }
        match best {
            Some((v, _)) => {
                match_of[u] = v;
                match_of[v] = u;
            }
            None => match_of[u] = u, // stays single
        }
    }

    // Assign coarse indices: the lower-indexed endpoint of each match owns it.
    let mut map = vec![usize::MAX; n];
    let mut coarse_weights = Vec::new();
    for u in 0..n {
        if map[u] != usize::MAX {
            continue;
        }
        let partner = match_of[u];
        let c = coarse_weights.len();
        map[u] = c;
        let mut w = g.vertex_weight(u);
        if partner != u && partner != usize::MAX {
            map[partner] = c;
            w += g.vertex_weight(partner);
        }
        coarse_weights.push(w);
    }

    let mut coarse = SymGraph::with_vertex_weights(coarse_weights);
    for u in 0..n {
        for &(v, w) in g.neighbors(u) {
            if u < v && map[u] != map[v] {
                coarse.add_edge(map[u], map[v], w);
            }
        }
    }
    CoarseGraph { graph: coarse, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn path(n: usize) -> SymGraph {
        let mut g = SymGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0 + i as f64);
        }
        g
    }

    #[test]
    fn coarsening_shrinks_graph() {
        let g = path(10);
        let c = coarsen(&g, &mut rng());
        assert!(c.graph.len() < 10);
        assert!(c.graph.len() >= 5);
    }

    #[test]
    fn vertex_weight_is_conserved() {
        let g = path(9);
        let c = coarsen(&g, &mut rng());
        assert!((c.graph.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9);
    }

    #[test]
    fn cut_edges_survive_internal_edges_vanish() {
        // Triangle with one heavy edge: the heavy edge should be contracted
        // preferentially, leaving the two light edges merged into coarse ones.
        let mut g = SymGraph::new(3);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        let c = coarsen(&g, &mut rng());
        assert_eq!(c.graph.len(), 2);
        // {0,1} merged; edges (1,2) and (0,2) fold into a single weight-2 edge.
        assert!((c.graph.total_edge_weight() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn edgeless_graph_is_copied() {
        let g = SymGraph::new(4);
        let c = coarsen(&g, &mut rng());
        assert_eq!(c.graph.len(), 4);
    }

    #[test]
    fn projection_round_trips() {
        let g = path(8);
        let c = coarsen(&g, &mut rng());
        let coarse_assignment: Vec<usize> = (0..c.graph.len()).map(|i| i % 2).collect();
        let fine = c.project(&coarse_assignment);
        assert_eq!(fine.len(), 8);
        for v in 0..8 {
            assert_eq!(fine[v], coarse_assignment[c.map[v]]);
        }
    }

    #[test]
    fn coarsening_is_deterministic_for_fixed_seed() {
        let g = path(12);
        let a = coarsen(&g, &mut StdRng::seed_from_u64(3));
        let b = coarsen(&g, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.map, b.map);
    }
}
