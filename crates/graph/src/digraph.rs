//! Directed multigraph with typed node and edge payloads.

use crate::ids::{EdgeId, NodeId};

#[derive(Debug, Clone)]
struct NodeEntry<N> {
    payload: N,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeEntry<E> {
    src: NodeId,
    dst: NodeId,
    payload: E,
}

/// A directed multigraph with payloads of type `N` on nodes and `E` on edges.
///
/// Nodes and edges are stored in insertion order and addressed through the
/// dense [`NodeId`]/[`EdgeId`] newtypes. Removal is intentionally not
/// supported: the synthesis flow only ever grows graphs, and stable dense ids
/// keep side tables (distances, partitions, loads) trivially indexable.
///
/// # Example
///
/// ```
/// use vi_noc_graph::DiGraph;
///
/// let mut g: DiGraph<&str, f64> = DiGraph::new();
/// let a = g.add_node("producer");
/// let b = g.add_node("consumer");
/// let e = g.add_edge(a, b, 400.0);
/// assert_eq!(g.endpoints(e), (a, b));
/// assert_eq!(*g.edge(e), 400.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeEntry<N>>,
    edges: Vec<EdgeEntry<E>>,
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with capacity reserved for `nodes`/`edges`.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node carrying `payload` and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeEntry {
            payload,
            out: Vec::new(),
            inc: Vec::new(),
        });
        id
    }

    /// Adds a directed edge `src -> dst` carrying `payload` and returns its id.
    ///
    /// Parallel edges and self-loops are permitted (the synthesis flow never
    /// creates self-loops, but the data structure does not forbid them).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src node out of range");
        assert!(dst.index() < self.nodes.len(), "dst node out of range");
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeEntry { src, dst, payload });
        self.nodes[src.index()].out.push(id);
        self.nodes[dst.index()].inc.push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows the payload of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()].payload
    }

    /// Mutably borrows the payload of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()].payload
    }

    /// Borrows the payload of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge(&self, edge: EdgeId) -> &E {
        &self.edges[edge.index()].payload
    }

    /// Mutably borrows the payload of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.index()].payload
    }

    /// Returns the `(source, destination)` pair of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.src, e.dst)
    }

    /// Returns the source node of `edge`.
    pub fn source(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].src
    }

    /// Returns the destination node of `edge`.
    pub fn target(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].dst
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterates over the ids of edges leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.index()].out.iter().copied()
    }

    /// Iterates over the ids of edges entering `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.index()].inc.iter().copied()
    }

    /// Iterates over successor nodes of `node` (one entry per out-edge).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(move |e| self.target(e))
    }

    /// Iterates over predecessor nodes of `node` (one entry per in-edge).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(move |e| self.source(e))
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].out.len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].inc.len()
    }

    /// Returns the first edge `src -> dst` if one exists.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).find(|&e| self.target(e) == dst)
    }

    /// Returns `true` if an edge `src -> dst` exists.
    pub fn contains_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph<u32, f64>, [NodeId; 3]) {
        let mut g = DiGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(c, a, 3.0);
        (g, [a, b, c])
    }

    #[test]
    fn counts_track_insertions() {
        let (g, _) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert!(DiGraph::<u8, u8>::new().is_empty());
    }

    #[test]
    fn payloads_are_addressable_and_mutable() {
        let (mut g, [a, _, _]) = triangle();
        assert_eq!(*g.node(a), 0);
        *g.node_mut(a) = 99;
        assert_eq!(*g.node(a), 99);
        let e = g.find_edge(a, NodeId::from_index(1)).unwrap();
        *g.edge_mut(e) += 0.5;
        assert_eq!(*g.edge(e), 1.5);
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, [a, b, c]) = triangle();
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.predecessors(a).collect::<Vec<_>>(), vec![c]);
        let e = g.find_edge(b, c).unwrap();
        assert_eq!(g.endpoints(e), (b, c));
        assert_eq!(g.source(e), b);
        assert_eq!(g.target(e), c);
    }

    #[test]
    fn find_edge_distinguishes_direction() {
        let (g, [a, b, _]) = triangle();
        assert!(g.contains_edge(a, b));
        assert!(!g.contains_edge(b, a));
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "dst node out of range")]
    fn add_edge_validates_endpoints() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(5), ());
    }

    #[test]
    fn iterators_cover_all_ids() {
        let (g, _) = triangle();
        assert_eq!(g.node_ids().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
    }
}
