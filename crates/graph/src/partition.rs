//! Partition representation and quality metrics.

use crate::sym::SymGraph;

/// An assignment of graph vertices to `k` parts.
///
/// Produced by [`crate::partition_kway`] and friends. Part indices are dense
/// in `0..k`; parts are allowed to be empty only transiently inside the
/// algorithms — public constructors validate emptiness on request via
/// [`Partition::nonempty_part_count`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    k: usize,
    assignment: Vec<usize>,
}

impl Partition {
    /// Creates a partition from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= k` or `k == 0`.
    pub fn new(k: usize, assignment: Vec<usize>) -> Self {
        assert!(k > 0, "partition needs at least one part");
        assert!(
            assignment.iter().all(|&p| p < k),
            "assignment references part >= k"
        );
        Partition { k, assignment }
    }

    /// The trivial partition putting every vertex in part 0.
    pub fn trivial(n: usize) -> Self {
        Partition {
            k: 1,
            assignment: vec![0; n],
        }
    }

    /// The discrete partition putting vertex `i` in part `i`.
    pub fn discrete(n: usize) -> Self {
        Partition {
            k: n.max(1),
            assignment: (0..n).collect(),
        }
    }

    /// Number of parts (including possibly empty ones).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Part index of vertex `v`.
    pub fn part_of(&self, v: usize) -> usize {
        self.assignment[v]
    }

    /// The raw assignment slice (`assignment[v] = part`).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Vertices grouped per part.
    pub fn parts(&self) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            parts[p].push(v);
        }
        parts
    }

    /// Number of parts that contain at least one vertex.
    pub fn nonempty_part_count(&self) -> usize {
        let mut seen = vec![false; self.k];
        for &p in &self.assignment {
            seen[p] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, g: &SymGraph) -> Vec<f64> {
        let mut w = vec![0.0; self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            w[p] += g.vertex_weight(v);
        }
        w
    }

    /// Total weight of edges whose endpoints lie in different parts.
    pub fn cut_weight(&self, g: &SymGraph) -> f64 {
        let mut cut = 0.0;
        for u in 0..g.len() {
            for &(v, w) in g.neighbors(u) {
                if u < v && self.assignment[u] != self.assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Maximum part weight divided by average part weight (1.0 = perfectly
    /// balanced). Empty parts count as zero weight.
    pub fn imbalance(&self, g: &SymGraph) -> f64 {
        let w = self.part_weights(g);
        let total: f64 = w.iter().sum();
        if total == 0.0 || self.k == 0 {
            return 1.0;
        }
        let avg = total / self.k as f64;
        w.iter().cloned().fold(0.0, f64::max) / avg
    }

    /// Renumbers parts so that only non-empty parts remain, preserving order
    /// of first appearance. Returns the new partition.
    pub fn compacted(&self) -> Partition {
        let mut remap = vec![usize::MAX; self.k];
        let mut next = 0;
        let mut assignment = Vec::with_capacity(self.assignment.len());
        for &p in &self.assignment {
            if remap[p] == usize::MAX {
                remap[p] = next;
                next += 1;
            }
            assignment.push(remap[p]);
        }
        Partition {
            k: next.max(1),
            assignment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> SymGraph {
        let mut g = SymGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn cut_weight_counts_cross_edges_once() {
        let g = path4();
        let p = Partition::new(2, vec![0, 0, 1, 1]);
        assert_eq!(p.cut_weight(&g), 5.0);
    }

    #[test]
    fn trivial_partition_has_zero_cut() {
        let g = path4();
        let p = Partition::trivial(4);
        assert_eq!(p.cut_weight(&g), 0.0);
        assert_eq!(p.k(), 1);
        assert_eq!(p.nonempty_part_count(), 1);
    }

    #[test]
    fn discrete_partition_cuts_everything() {
        let g = path4();
        let p = Partition::discrete(4);
        assert_eq!(p.cut_weight(&g), 7.0);
        assert_eq!(p.k(), 4);
    }

    #[test]
    fn parts_group_vertices() {
        let p = Partition::new(3, vec![2, 0, 2, 1]);
        let parts = p.parts();
        assert_eq!(parts[0], vec![1]);
        assert_eq!(parts[1], vec![3]);
        assert_eq!(parts[2], vec![0, 2]);
    }

    #[test]
    fn part_weights_and_imbalance() {
        let g = path4();
        let p = Partition::new(2, vec![0, 0, 0, 1]);
        assert_eq!(p.part_weights(&g), vec![3.0, 1.0]);
        assert!((p.imbalance(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn compacted_removes_empty_parts() {
        let p = Partition::new(5, vec![4, 1, 4, 1]);
        let c = p.compacted();
        assert_eq!(c.k(), 2);
        assert_eq!(c.assignment(), &[0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "references part")]
    fn new_validates_assignment() {
        Partition::new(2, vec![0, 2]);
    }
}
