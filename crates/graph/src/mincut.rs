//! Stoer–Wagner global minimum cut.
//!
//! Used as an oracle in tests: the cut weight of any bisection found by the
//! heuristics is lower-bounded by the global min cut.

use crate::sym::SymGraph;

/// Computes the global minimum cut of `g` by the Stoer–Wagner algorithm.
///
/// Returns `(cut_weight, side)` where `side[v] = true` marks the vertices of
/// one shore of the minimum cut. Runs in O(n³); intended for small graphs.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 vertices.
pub fn stoer_wagner(g: &SymGraph) -> (f64, Vec<bool>) {
    let n = g.len();
    assert!(n >= 2, "min cut requires at least two vertices");

    // Dense symmetric weight matrix over super-vertices.
    let mut w = vec![vec![0.0f64; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric fill of w[u][v]/w[v][u]
    for u in 0..n {
        for &(v, ew) in g.neighbors(u) {
            if u < v {
                w[u][v] += ew;
                w[v][u] += ew;
            }
        }
    }
    // members[i]: original vertices merged into super-vertex i.
    let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_cut = f64::INFINITY;
    let mut best_side: Vec<bool> = vec![false; n];

    while active.len() > 1 {
        // Maximum adjacency (maximum weighted degree to A) search.
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut conn: Vec<f64> = vec![0.0; m];
        let mut prev = usize::MAX;
        let mut last = usize::MAX;
        for _ in 0..m {
            // Most strongly connected vertex not yet in A.
            let (ai, _) = conn
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_a[*i])
                .max_by(|(i, a), (j, b)| a.total_cmp(b).then(j.cmp(i)))
                .expect("active vertices remain");
            in_a[ai] = true;
            prev = last;
            last = ai;
            for i in 0..m {
                if !in_a[i] {
                    conn[i] += w[active[ai]][active[i]];
                }
            }
        }

        // Cut of the phase: `last` alone vs the rest.
        let t = active[last];
        let s = active[prev];
        let cut_of_phase: f64 = active.iter().filter(|&&v| v != t).map(|&v| w[t][v]).sum();
        if cut_of_phase < best_cut {
            best_cut = cut_of_phase;
            best_side = vec![false; n];
            for &orig in &members[t] {
                best_side[orig] = true;
            }
        }

        // Merge t into s.
        let t_members = std::mem::take(&mut members[t]);
        members[s].extend(t_members);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }

    (best_cut, best_side)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_bridge_cut() {
        // Two triangles joined by one edge of weight 0.5.
        let mut g = SymGraph::new(6);
        for base in [0, 3] {
            g.add_edge(base, base + 1, 3.0);
            g.add_edge(base + 1, base + 2, 3.0);
            g.add_edge(base, base + 2, 3.0);
        }
        g.add_edge(2, 3, 0.5);
        let (cut, side) = stoer_wagner(&g);
        assert!((cut - 0.5).abs() < 1e-9);
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_ne!(side[2], side[3]);
    }

    #[test]
    fn min_cut_of_path_is_lightest_edge() {
        let mut g = SymGraph::new(4);
        g.add_edge(0, 1, 4.0);
        g.add_edge(1, 2, 1.5);
        g.add_edge(2, 3, 4.0);
        let (cut, _) = stoer_wagner(&g);
        assert!((cut - 1.5).abs() < 1e-9);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut g = SymGraph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(2, 3, 2.0);
        let (cut, side) = stoer_wagner(&g);
        assert_eq!(cut, 0.0);
        assert!(side.iter().any(|&s| s));
        assert!(side.iter().any(|&s| !s));
    }

    #[test]
    fn k4_uniform_cut_is_three() {
        let mut g = SymGraph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j, 1.0);
            }
        }
        let (cut, side) = stoer_wagner(&g);
        assert!((cut - 3.0).abs() < 1e-9);
        // Minimum cut isolates a single vertex.
        assert_eq!(side.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn rejects_singleton() {
        let g = SymGraph::new(1);
        stoer_wagner(&g);
    }
}
