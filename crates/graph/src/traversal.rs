//! Breadth-first / depth-first traversal and connectivity queries.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Returns the nodes reachable from `start` following directed edges,
/// in breadth-first order (including `start` itself).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_order<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for s in g.successors(n) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    order
}

/// Returns the nodes reachable from `start` following directed edges,
/// in depth-first preorder (including `start` itself).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn dfs_order<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        order.push(n);
        // Push successors in reverse so the first successor is visited first.
        let succ: Vec<_> = g.successors(n).collect();
        for s in succ.into_iter().rev() {
            if !seen[s.index()] {
                stack.push(s);
            }
        }
    }
    order
}

/// Returns the set of nodes reachable from `start` as a boolean mask indexed
/// by node index.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<bool> {
    let mut mask = vec![false; g.node_count()];
    for n in bfs_order(g, start) {
        mask[n.index()] = true;
    }
    mask
}

/// Computes weakly connected components (edge direction ignored).
///
/// Returns `(component_of, n_components)` where `component_of[i]` is the
/// 0-based component index of node `i`.
pub fn connected_components<N, E>(g: &DiGraph<N, E>) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s] = next;
        queue.push_back(NodeId::from_index(s));
        while let Some(u) = queue.pop_front() {
            let mut visit = |v: NodeId| {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            };
            for v in g.successors(u) {
                visit(v);
            }
            for v in g.predecessors(u) {
                visit(v);
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Returns `true` if the graph is weakly connected (or empty).
pub fn is_connected<N, E>(g: &DiGraph<N, E>) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    connected_components(g).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> 2, 3 isolated.
    fn chain_plus_isolated() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g
    }

    #[test]
    fn bfs_visits_reachable_in_order() {
        let g = chain_plus_isolated();
        let order = bfs_order(&g, NodeId::from_index(0));
        assert_eq!(
            order,
            vec![
                NodeId::from_index(0),
                NodeId::from_index(1),
                NodeId::from_index(2)
            ]
        );
    }

    #[test]
    fn dfs_visits_reachable() {
        let g = chain_plus_isolated();
        let order = dfs_order(&g, NodeId::from_index(0));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId::from_index(0));
    }

    #[test]
    fn dfs_prefers_first_successor() {
        // 0 -> 1, 0 -> 2, 1 -> 3
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[0], n[2], ());
        g.add_edge(n[1], n[3], ());
        let order = dfs_order(&g, n[0]);
        assert_eq!(order, vec![n[0], n[1], n[3], n[2]]);
    }

    #[test]
    fn reachability_mask_excludes_isolated() {
        let g = chain_plus_isolated();
        let mask = reachable_from(&g, NodeId::from_index(0));
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn reachability_is_directional() {
        let g = chain_plus_isolated();
        let mask = reachable_from(&g, NodeId::from_index(2));
        assert_eq!(mask, vec![false, false, true, false]);
    }

    #[test]
    fn components_ignore_direction() {
        let g = chain_plus_isolated();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(is_connected(&g));
    }
}
