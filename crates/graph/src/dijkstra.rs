//! Dijkstra shortest paths with caller-supplied edge costs and filters.
//!
//! The path-allocation step of the synthesis algorithm (paper §4, step 15)
//! searches minimum-cost routes over a switch-level graph whose edge costs
//! depend on dynamic state (open-a-new-link vs. reuse, remaining capacity).
//! The functions here therefore take the cost as a closure evaluated per edge
//! and an optional edge-admissibility filter, rather than a static weight.

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry ordered so the smallest cost pops first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want minimum cost first.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable arenas for [`dijkstra_filtered_scratch`].
///
/// A single Dijkstra run needs distance/predecessor/settled arrays plus a
/// binary heap. Callers that run many searches over graphs of similar size
/// (the path allocator runs one per flow per candidate) can keep one
/// `SearchScratch` alive and [`reset`](SearchScratch::reset) it between
/// searches, so the hot loop performs no heap allocation once the arenas
/// have grown to the working size.
#[derive(Debug)]
pub struct SearchScratch {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchScratch {
    /// Creates empty arenas; they grow on first use.
    pub fn new() -> Self {
        SearchScratch {
            source: NodeId::from_index(0),
            dist: Vec::new(),
            prev: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Clears the arenas and sizes them for an `n`-node graph.
    ///
    /// Called by [`dijkstra_filtered_scratch`]; only needed directly when
    /// inspecting a scratch before any search has run.
    pub fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.prev.clear();
        self.prev.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
    }

    /// The source node of the last search.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest distance to `node` found by the last search, or `None` if
    /// unreachable — including when no search has run yet or `node` lies
    /// outside the last-searched graph (the arenas are sized per search,
    /// and one scratch may be reused across graphs of different sizes).
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = *self.dist.get(node.index())?;
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Writes the edge sequence of the last search's path `source -> node`
    /// into `out` (cleared first). Returns `false` (leaving `out` empty) if
    /// `node` is unreachable.
    pub fn path_edges_into(&self, node: NodeId, out: &mut Vec<EdgeId>) -> bool {
        out.clear();
        if self.distance(node).is_none() {
            return false;
        }
        let mut cur = node;
        while let Some((p, e)) = self.prev[cur.index()] {
            out.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        out.reverse();
        true
    }

    /// Converts the scratch into an owned [`ShortestPathTree`], leaving the
    /// arenas empty.
    fn into_tree(self) -> ShortestPathTree {
        ShortestPathTree {
            source: self.source,
            dist: self.dist,
            prev: self.prev,
        }
    }
}

/// Result of a single-source shortest-path computation.
///
/// Produced by [`dijkstra`] / [`dijkstra_filtered`].
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPathTree {
    /// The source node of the computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest distance to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Node sequence of the shortest path `source -> node` (inclusive),
    /// or `None` if unreachable.
    pub fn path_nodes(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.distance(node)?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some((p, _)) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }

    /// Edge sequence of the shortest path `source -> node`,
    /// or `None` if unreachable. Empty when `node == source`.
    pub fn path_edges(&self, node: NodeId) -> Option<Vec<EdgeId>> {
        self.distance(node)?;
        let mut edges = Vec::new();
        let mut cur = node;
        while let Some((p, e)) = self.prev[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Computes shortest paths from `source` with per-edge costs given by `cost`.
///
/// Costs must be non-negative; this is checked with a debug assertion.
/// Stops early once `goal` (if provided) is settled.
///
/// # Example
///
/// ```
/// use vi_noc_graph::{DiGraph, dijkstra};
///
/// let mut g: DiGraph<(), f64> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 1.0);
/// g.add_edge(a, c, 5.0);
/// let tree = dijkstra(&g, a, Some(c), |_, w| *w);
/// assert_eq!(tree.distance(c), Some(2.0));
/// assert_eq!(tree.path_nodes(c).unwrap(), vec![a, b, c]);
/// ```
pub fn dijkstra<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    goal: Option<NodeId>,
    cost: impl Fn(EdgeId, &E) -> f64,
) -> ShortestPathTree {
    dijkstra_filtered(g, source, goal, cost, |_, _| true)
}

/// Like [`dijkstra`], but only relaxes edges for which `admit` returns `true`.
///
/// The filter is how the synthesis flow enforces the shutdown-legality rule:
/// candidate links that would route a flow through a third voltage island are
/// simply not admitted into the search.
pub fn dijkstra_filtered<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    goal: Option<NodeId>,
    cost: impl Fn(EdgeId, &E) -> f64,
    admit: impl Fn(EdgeId, &E) -> bool,
) -> ShortestPathTree {
    let mut scratch = SearchScratch::new();
    dijkstra_filtered_scratch(g, source, goal, cost, admit, &mut scratch);
    scratch.into_tree()
}

/// Like [`dijkstra_filtered`], but runs inside caller-owned
/// [`SearchScratch`] arenas instead of allocating per call.
///
/// The scratch is [`reset`](SearchScratch::reset) at entry and holds the
/// search result afterwards (query it via [`SearchScratch::distance`] /
/// [`SearchScratch::path_edges_into`]). Repeated searches reuse the same
/// memory, which is what the per-flow path allocation hot loop needs.
pub fn dijkstra_filtered_scratch<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    goal: Option<NodeId>,
    cost: impl Fn(EdgeId, &E) -> f64,
    admit: impl Fn(EdgeId, &E) -> bool,
    scratch: &mut SearchScratch,
) {
    scratch.reset(g.node_count());
    scratch.source = source;
    scratch.dist[source.index()] = 0.0;
    scratch.heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost: d, node: u }) = scratch.heap.pop() {
        if scratch.settled[u.index()] {
            continue;
        }
        scratch.settled[u.index()] = true;
        if goal == Some(u) {
            break;
        }
        for e in g.out_edges(u) {
            let payload = g.edge(e);
            if !admit(e, payload) {
                continue;
            }
            let w = cost(e, payload);
            debug_assert!(w >= 0.0, "dijkstra requires non-negative edge costs");
            let v = g.target(e);
            let nd = d + w;
            if nd < scratch.dist[v.index()] {
                scratch.dist[v.index()] = nd;
                scratch.prev[v.index()] = Some((u, e));
                scratch.heap.push(HeapEntry { cost: nd, node: v });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<(), f64>, [NodeId; 4]) {
        // a -> b -> d (cost 1+1), a -> c -> d (cost 3+3)
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(a, c, 3.0);
        g.add_edge(c, d, 3.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn picks_cheapest_route() {
        let (g, [a, b, _, d]) = diamond();
        let t = dijkstra(&g, a, None, |_, w| *w);
        assert_eq!(t.distance(d), Some(2.0));
        assert_eq!(t.path_nodes(d).unwrap(), vec![a, b, d]);
        assert_eq!(t.path_edges(d).unwrap().len(), 2);
    }

    #[test]
    fn source_has_zero_distance_and_empty_path() {
        let (g, [a, ..]) = diamond();
        let t = dijkstra(&g, a, None, |_, w| *w);
        assert_eq!(t.distance(a), Some(0.0));
        assert_eq!(t.path_nodes(a).unwrap(), vec![a]);
        assert!(t.path_edges(a).unwrap().is_empty());
        assert_eq!(t.source(), a);
    }

    #[test]
    fn unreachable_is_none() {
        let (g, [a, ..]) = diamond();
        // d has no outgoing edges, so nothing is reachable from it but itself.
        let d = NodeId::from_index(3);
        let t = dijkstra(&g, d, None, |_, w| *w);
        assert_eq!(t.distance(a), None);
        assert!(t.path_nodes(a).is_none());
        assert!(t.path_edges(a).is_none());
    }

    #[test]
    fn filter_blocks_edges() {
        let (g, [a, _, c, d]) = diamond();
        // Forbid the cheap b-route; the path must go through c.
        let t = dijkstra_filtered(&g, a, Some(d), |_, w| *w, |_, w| *w >= 3.0);
        assert_eq!(t.distance(d), Some(6.0));
        assert_eq!(t.path_nodes(d).unwrap(), vec![a, c, d]);
    }

    #[test]
    fn early_exit_still_settles_goal() {
        let (g, [a, _, _, d]) = diamond();
        let t = dijkstra(&g, a, Some(d), |_, w| *w);
        assert_eq!(t.distance(d), Some(2.0));
    }

    #[test]
    fn dynamic_cost_closure_is_respected() {
        let (g, [a, _, _, d]) = diamond();
        // Invert preference: make the nominally cheap edges expensive.
        let t = dijkstra(&g, a, None, |_, w| if *w < 2.0 { 10.0 } else { *w });
        assert_eq!(t.distance(d), Some(6.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let (g, [a, b, c, d]) = diamond();
        let mut scratch = SearchScratch::new();
        let mut edges = Vec::new();
        for goal in [b, c, d] {
            dijkstra_filtered_scratch(&g, a, Some(goal), |_, w| *w, |_, _| true, &mut scratch);
            let fresh = dijkstra(&g, a, Some(goal), |_, w| *w);
            assert_eq!(scratch.distance(goal), fresh.distance(goal));
            assert!(scratch.path_edges_into(goal, &mut edges));
            assert_eq!(edges, fresh.path_edges(goal).unwrap());
        }
        assert_eq!(scratch.source(), a);
    }

    #[test]
    fn scratch_reports_unreachable() {
        let (g, [a, ..]) = diamond();
        let d = NodeId::from_index(3);
        let mut scratch = SearchScratch::new();
        // First a search where everything is reachable, then one where
        // nothing is: stale state must not leak through the reset.
        dijkstra_filtered_scratch(&g, a, None, |_, w| *w, |_, _| true, &mut scratch);
        dijkstra_filtered_scratch(&g, d, None, |_, w| *w, |_, _| true, &mut scratch);
        assert_eq!(scratch.distance(a), None);
        let mut edges = vec![EdgeId::from_index(0)];
        assert!(!scratch.path_edges_into(a, &mut edges));
        assert!(edges.is_empty(), "failed extraction must clear the buffer");
        assert_eq!(scratch.distance(d), Some(0.0));
    }

    #[test]
    fn scratch_accessors_are_total() {
        // A fresh scratch and out-of-range node ids answer "unreachable"
        // instead of panicking.
        let scratch = SearchScratch::new();
        assert_eq!(scratch.distance(NodeId::from_index(0)), None);
        let mut edges = Vec::new();
        assert!(!scratch.path_edges_into(NodeId::from_index(5), &mut edges));
        let (g, [a, ..]) = diamond();
        let mut scratch = SearchScratch::new();
        dijkstra_filtered_scratch(&g, a, None, |_, w| *w, |_, _| true, &mut scratch);
        assert_eq!(scratch.distance(NodeId::from_index(99)), None);
        assert!(!scratch.path_edges_into(NodeId::from_index(99), &mut edges));
    }

    #[test]
    fn wrapper_and_scratch_agree_with_filters() {
        let (g, [a, _, _, d]) = diamond();
        let mut scratch = SearchScratch::new();
        dijkstra_filtered_scratch(&g, a, Some(d), |_, w| *w, |_, w| *w >= 3.0, &mut scratch);
        let tree = dijkstra_filtered(&g, a, Some(d), |_, w| *w, |_, w| *w >= 3.0);
        assert_eq!(scratch.distance(d), tree.distance(d));
        let mut edges = Vec::new();
        scratch.path_edges_into(d, &mut edges);
        assert_eq!(edges, tree.path_edges(d).unwrap());
    }

    #[test]
    fn ties_are_deterministic() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(c, d, 1.0);
        let p1 = dijkstra(&g, a, None, |_, w| *w).path_nodes(d).unwrap();
        let p2 = dijkstra(&g, a, None, |_, w| *w).path_nodes(d).unwrap();
        assert_eq!(p1, p2);
    }
}
