//! The worker loop: request a lease, evaluate it as a stream of disjoint
//! deltas, wait for each ack before producing the next, repeat until the
//! coordinator says shutdown.
//!
//! The ack-per-delta lockstep is what makes SIGKILL safe: the worker
//! never runs ahead of what the coordinator has folded, so the
//! coordinator's acked watermark is always an exact resume point — a
//! killed worker's successor re-evaluates at most one unacked delta,
//! never re-folds an acked one.

use crate::lease::{JobResolver, ResolvedJob};
use crate::protocol::{
    grid_fingerprint, parse_message, write_message, Delta, Lease, Message, Role,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use vi_noc_sweep::{run_range_deltas, ChainRange};

/// Knobs of a worker process.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// Force sequential chain evaluation inside the worker, so that
    /// speed-up comes from the worker *count* (the fleet bench measures
    /// exactly that). The frontier is byte-identical either way.
    pub seq: bool,
    /// Sleep between a lease's acked deltas (but not after its final one,
    /// which would leave the worker sleeping lease-less) — a test knob
    /// that stretches leases out so kill-mid-lease tests have a wide
    /// window to aim at.
    pub throttle: Duration,
    /// Connection attempts before giving up (50 ms apart), letting
    /// workers start before the coordinator finishes binding.
    pub connect_attempts: u32,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            seq: true,
            throttle: Duration::ZERO,
            connect_attempts: 100,
        }
    }
}

/// What a worker did before shutting down, for CLI reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Leases evaluated to completion.
    pub leases: u64,
    /// Deltas acked by the coordinator.
    pub deltas: u64,
    /// Leases abandoned because the coordinator rejected a delta (e.g.
    /// the lease was re-issued to someone else after a timeout).
    pub abandoned: u64,
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: SocketAddr, attempts: u32) -> Result<Connection, String> {
        let mut last = String::new();
        for _ in 0..attempts.max(1) {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
                    return Ok(Connection {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last = e.to_string(),
            }
            thread::sleep(Duration::from_millis(50));
        }
        Err(format!("worker: cannot connect {addr}: {last}"))
    }

    fn send(&mut self, m: &Message) -> Result<(), String> {
        let mut line = write_message(m);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("worker write: {e}"))
    }

    fn recv(&mut self) -> Result<Message, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("worker read: {e}"))?;
        if n == 0 {
            return Err("worker: coordinator hung up".to_string());
        }
        parse_message(line.trim_end())
    }
}

/// Whether a worker-side error is the transport dying (coordinator gone)
/// rather than a protocol violation.
fn is_disconnect(e: &str) -> bool {
    e == "worker: coordinator hung up"
        || e.starts_with("worker read:")
        || e.starts_with("worker write:")
}

/// Runs the worker loop against the coordinator at `addr` until it sends
/// `shutdown` — or until the coordinator disappears while the worker is
/// idle, which is also a clean end: between leases the worker holds
/// nothing, and a finished coordinator tearing its sockets down is
/// indistinguishable from (and as harmless as) one politely saying
/// goodbye.
///
/// # Errors
///
/// Connection failures, protocol violations, and transport errors
/// mid-lease (an unacked delta may be lost). A rejected delta is *not* an
/// error — the lease is abandoned (counted in [`WorkerStats::abandoned`])
/// and the loop continues.
pub fn run_worker(
    addr: SocketAddr,
    resolver: &dyn JobResolver,
    opts: &WorkerOpts,
) -> Result<WorkerStats, String> {
    let mut conn = Connection::open(addr, opts.connect_attempts)?;
    conn.send(&Message::Hello(Role::Work))?;
    let mut jobs: HashMap<String, ResolvedJob> = HashMap::new();
    let mut stats = WorkerStats::default();
    loop {
        let request = conn.send(&Message::Request).and_then(|()| conn.recv());
        match request {
            Ok(Message::Lease(lease)) => {
                evaluate_lease(&mut conn, lease, resolver, opts, &mut jobs, &mut stats)?
            }
            Ok(Message::Wait { poll_ms }) => thread::sleep(Duration::from_millis(poll_ms)),
            Ok(Message::Shutdown) => return Ok(stats),
            Ok(Message::Reject { message }) => return Err(format!("worker rejected: {message}")),
            Ok(other) => return Err(format!("worker: unexpected message: {other:?}")),
            Err(e) if is_disconnect(&e) => {
                eprintln!("fleet work: coordinator gone while idle, shutting down");
                return Ok(stats);
            }
            Err(e) => return Err(e),
        }
    }
}

fn evaluate_lease(
    conn: &mut Connection,
    lease: Lease,
    resolver: &dyn JobResolver,
    opts: &WorkerOpts,
    jobs: &mut HashMap<String, ResolvedJob>,
    stats: &mut WorkerStats,
) -> Result<(), String> {
    // Resolve (and cache) the job, then prove we agree with the
    // coordinator about what grid this is. A mismatch is descriptor skew —
    // refusing fails the job fast instead of folding foreign entries.
    if !jobs.contains_key(&lease.grid_fp) {
        match resolver.resolve(&lease.job) {
            Ok(mut resolved) => {
                if opts.seq {
                    resolved.cfg.parallel = false;
                }
                let fp = grid_fingerprint(&resolved.desc.to_json());
                if fp != lease.grid_fp {
                    conn.send(&Message::Refuse {
                        lease_id: lease.lease_id,
                        message: format!(
                            "grid fingerprint mismatch: worker resolved '{fp}', lease says '{}'",
                            lease.grid_fp
                        ),
                    })?;
                    return Ok(());
                }
                jobs.insert(lease.grid_fp.clone(), resolved);
            }
            Err(e) => {
                conn.send(&Message::Refuse {
                    lease_id: lease.lease_id,
                    message: format!("job payload does not resolve: {e}"),
                })?;
                return Ok(());
            }
        }
    }
    let job = &jobs[&lease.grid_fp];
    let range = match ChainRange::new(lease.start, lease.end) {
        Ok(r) => r,
        Err(e) => {
            conn.send(&Message::Refuse {
                lease_id: lease.lease_id,
                message: e,
            })?;
            return Ok(());
        }
    };

    // Stream deltas in lockstep with acks. `fatal` distinguishes
    // transport failures (abort the worker) from coordinator rejections
    // (abandon the lease, keep working).
    let mut fatal: Option<String> = None;
    let mut acked_deltas = 0u64;
    let range_len = range.len();
    let outcome = {
        let fatal = &mut fatal;
        let acked_deltas = &mut acked_deltas;
        let mut emit = |d: vi_noc_sweep::RangeDelta| -> Result<(), String> {
            let entries = d
                .entries
                .iter()
                .map(|(_, e)| {
                    vi_noc_sweep::json::parse(e).map_err(|err| format!("entry re-parse: {err}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            conn.send(&Message::Delta(Delta {
                lease_id: lease.lease_id,
                grid_fp: lease.grid_fp.clone(),
                from: d.from,
                taken: d.taken,
                stats: d.stats,
                entries,
            }))
            .inspect_err(|e| *fatal = Some(e.clone()))?;
            match conn.recv() {
                Ok(Message::Ack { lease_id, done }) => {
                    if lease_id != lease.lease_id || done != d.from + d.taken {
                        let e = format!(
                            "worker: ack mismatch: lease {lease_id} done {done}, expected \
                             lease {} done {}",
                            lease.lease_id,
                            d.from + d.taken
                        );
                        *fatal = Some(e.clone());
                        return Err(e);
                    }
                    *acked_deltas += 1;
                    // Throttle only *between* a lease's deltas, never after
                    // its final ack: once the last delta is acked the lease
                    // is done and the worker holds nothing, so sleeping here
                    // would open a wide lease-less window in which a kill
                    // exercises no re-issue path — exactly what the
                    // throttle-using death tests are aiming for.
                    if !opts.throttle.is_zero() && d.from + d.taken < range_len {
                        thread::sleep(opts.throttle);
                    }
                    Ok(())
                }
                Ok(Message::Reject { message }) => Err(format!("lease rejected: {message}")),
                Ok(other) => {
                    let e = format!("worker: unexpected ack reply: {other:?}");
                    *fatal = Some(e.clone());
                    Err(e)
                }
                Err(e) => {
                    *fatal = Some(e.clone());
                    Err(e)
                }
            }
        };
        run_range_deltas(
            &job.spec,
            &job.vi,
            &job.grid,
            range,
            &job.cfg,
            lease.from,
            lease.checkpoint_every,
            job.prune,
            &mut emit,
        )
    };
    stats.deltas += acked_deltas;
    match outcome {
        Ok(()) => {
            stats.leases += 1;
            Ok(())
        }
        Err(_) if fatal.is_none() => {
            // The coordinator rejected a delta: someone else owns the
            // lease now. Abandon it and request fresh work.
            stats.abandoned += 1;
            Ok(())
        }
        Err(_) => Err(fatal.unwrap()),
    }
}

/// Spawns `n` in-process worker threads against `addr` — the local fleet
/// used by `vi-noc fleet run --workers N` and the benches.
pub fn spawn_local_workers(
    addr: SocketAddr,
    resolver: Arc<dyn JobResolver>,
    n: usize,
    opts: WorkerOpts,
) -> Vec<thread::JoinHandle<Result<WorkerStats, String>>> {
    (0..n.max(1))
        .map(|_| {
            let resolver = Arc::clone(&resolver);
            let opts = opts.clone();
            thread::spawn(move || run_worker(addr, resolver.as_ref(), &opts))
        })
        .collect()
}
