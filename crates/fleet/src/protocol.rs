//! The `vi-noc-fleet-v1` wire protocol: line-delimited JSON messages over a
//! local TCP stream.
//!
//! Every message is one compact JSON object on one line, with a `type`
//! member naming its variant. Multi-line payloads (job documents, frontier
//! files) cross the wire as JSON strings — `vi_noc_core::json_string`
//! escapes the newlines — so framing stays trivially line-based. Frontier
//! entries inside [`Message::Delta`] are embedded as raw JSON values: they
//! are compact single-line objects emitted by
//! `vi_noc_sweep::frontier_entry_json`, and re-serializing them with the
//! parse→write fixed-point writer ([`vi_noc_sweep::json::Value::to_json`])
//! preserves their bytes exactly, which is what the coordinator's
//! byte-identity guarantee rests on.
//!
//! Conversation shape (`W` = worker, `S` = submitter, `C` = coordinator):
//!
//! ```text
//! W→C  hello{role:"work"}              S→C  hello{role:"submit"}
//! W→C  request                         S→C  submit{job}
//! C→W  lease{..} | wait{..} | shutdown C→S  result{frontier} | reject{msg}
//! W→C  delta{..} | refuse{..}
//! C→W  ack{lease_id, done} | reject{msg}
//! ```
//!
//! Parse errors are pinned by `crates/fleet/tests/corpus.rs`: every
//! malformed message in the committed corpus must keep failing with its
//! exact recorded message.

use std::fmt::Write as _;
use vi_noc_core::json_string;
use vi_noc_sweep::json::{self, Value};
use vi_noc_sweep::{stats_from_value, stats_json, SweepStats};

/// Protocol identifier exchanged in `hello` messages. Bump on any wire
/// change; a coordinator refuses peers speaking anything else.
pub const PROTOCOL: &str = "vi-noc-fleet-v1";

/// Role a connecting peer declares in its `hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The peer requests leases and streams deltas.
    Work,
    /// The peer submits one job and waits for its frontier.
    Submit,
}

impl Role {
    fn as_str(self) -> &'static str {
        match self {
            Role::Work => "work",
            Role::Submit => "submit",
        }
    }
}

/// One streamed checkpoint delta: the evaluation of range positions
/// `[from, from + taken)` of a lease — counters plus the *local* Pareto
/// survivors of exactly that interval. Deltas of one lease are disjoint by
/// construction, so the coordinator folds each exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The lease this delta belongs to.
    pub lease_id: u64,
    /// Fingerprint of the grid the worker evaluated against
    /// ([`grid_fingerprint`]); a mismatch means descriptor skew.
    pub grid_fp: String,
    /// First range position the delta covers.
    pub from: u64,
    /// Number of range positions the delta covers.
    pub taken: u64,
    /// Evaluation counters of exactly this interval.
    pub stats: SweepStats,
    /// Serialized frontier entries surviving within this interval.
    pub entries: Vec<Value>,
}

/// A lease offer: evaluate chain ids `[start, end)` of the job's grid,
/// resuming at range position `from`, streaming a delta every
/// `checkpoint_every` positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// Coordinator-unique lease id; echoed in every delta.
    pub lease_id: u64,
    /// The job payload (a scenario document for the CLI fleet; resolvers
    /// decide what it means).
    pub job: String,
    /// Fingerprint the worker must reproduce from its resolved grid.
    pub grid_fp: String,
    /// First chain id of the leased range (inclusive).
    pub start: u64,
    /// One past the last chain id of the leased range.
    pub end: u64,
    /// Range position to resume from (0 for a fresh lease; the acked
    /// watermark for a re-issued one).
    pub from: u64,
    /// Delta granularity in range positions.
    pub checkpoint_every: u64,
}

/// Every message of the protocol. See the module docs for the conversation
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener: protocol version + declared role.
    Hello(Role),
    /// Submitter: run this job, send me the frontier.
    Submit {
        /// The job payload.
        job: String,
    },
    /// Coordinator → submitter: the job's final frontier file.
    Result {
        /// Complete frontier file text.
        frontier: String,
    },
    /// Coordinator → peer: the request failed; the connection is done.
    Reject {
        /// Human-readable reason.
        message: String,
    },
    /// Worker: give me a lease.
    Request,
    /// Coordinator → worker: a lease offer.
    Lease(Lease),
    /// Coordinator → worker: nothing to lease right now; poll again.
    Wait {
        /// Suggested sleep before the next `request`, in milliseconds.
        poll_ms: u64,
    },
    /// Coordinator → worker: no more work will ever arrive; disconnect.
    Shutdown,
    /// Worker: a checkpoint delta of its active lease.
    Delta(Delta),
    /// Coordinator → worker: delta folded; `done` is the new watermark.
    Ack {
        /// The lease the ack belongs to.
        lease_id: u64,
        /// Range positions folded so far (`from + taken` of the delta).
        done: u64,
    },
    /// Worker: it cannot evaluate the lease (e.g. the payload resolves to
    /// a different grid than the coordinator's). Fails the whole job —
    /// descriptor skew is never recoverable by retrying.
    Refuse {
        /// The refused lease.
        lease_id: u64,
        /// Why the worker refused.
        message: String,
    },
}

/// Serializes a message as one line (no trailing newline; the transport
/// appends it).
pub fn write_message(m: &Message) -> String {
    match m {
        Message::Hello(role) => format!(
            "{{\"type\":\"hello\",\"protocol\":{},\"role\":\"{}\"}}",
            json_string(PROTOCOL),
            role.as_str()
        ),
        Message::Submit { job } => {
            format!("{{\"type\":\"submit\",\"job\":{}}}", json_string(job))
        }
        Message::Result { frontier } => format!(
            "{{\"type\":\"result\",\"frontier\":{}}}",
            json_string(frontier)
        ),
        Message::Reject { message } => format!(
            "{{\"type\":\"reject\",\"message\":{}}}",
            json_string(message)
        ),
        Message::Request => "{\"type\":\"request\"}".to_string(),
        Message::Lease(l) => format!(
            "{{\"type\":\"lease\",\"lease_id\":{},\"job\":{},\"grid_fp\":{},\"start\":{},\
             \"end\":{},\"from\":{},\"checkpoint_every\":{}}}",
            l.lease_id,
            json_string(&l.job),
            json_string(&l.grid_fp),
            l.start,
            l.end,
            l.from,
            l.checkpoint_every
        ),
        Message::Wait { poll_ms } => {
            format!("{{\"type\":\"wait\",\"poll_ms\":{poll_ms}}}")
        }
        Message::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        Message::Delta(d) => {
            let mut s = format!(
                "{{\"type\":\"delta\",\"lease_id\":{},\"grid_fp\":{},\"from\":{},\"taken\":{},\
                 \"stats\":{},\"entries\":[",
                d.lease_id,
                json_string(&d.grid_fp),
                d.from,
                d.taken,
                stats_json(&d.stats)
            );
            for (i, e) in d.entries.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&e.to_json());
            }
            s.push_str("]}");
            s
        }
        Message::Ack { lease_id, done } => {
            format!("{{\"type\":\"ack\",\"lease_id\":{lease_id},\"done\":{done}}}")
        }
        Message::Refuse { lease_id, message } => format!(
            "{{\"type\":\"refuse\",\"lease_id\":{},\"message\":{}}}",
            lease_id,
            json_string(message)
        ),
    }
}

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing '{key}'"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an unsigned integer"))
}

fn str_field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a string"))
}

/// Parses one message line.
///
/// # Errors
///
/// Malformed JSON (`JSON error at byte N: ...`), a missing or unknown
/// `type`, and per-variant shape violations — each with the pinned message
/// the protocol corpus records.
pub fn parse_message(line: &str) -> Result<Message, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let ty = str_field(&v, "type", "message")?;
    match ty {
        "hello" => {
            let protocol = str_field(&v, "protocol", "hello")?;
            if protocol != PROTOCOL {
                return Err(format!("hello: protocol '{protocol}' is not '{PROTOCOL}'"));
            }
            match str_field(&v, "role", "hello")? {
                "work" => Ok(Message::Hello(Role::Work)),
                "submit" => Ok(Message::Hello(Role::Submit)),
                other => Err(format!("hello: role '{other}' is not 'work' or 'submit'")),
            }
        }
        "submit" => Ok(Message::Submit {
            job: str_field(&v, "job", "submit")?.to_string(),
        }),
        "result" => Ok(Message::Result {
            frontier: str_field(&v, "frontier", "result")?.to_string(),
        }),
        "reject" => Ok(Message::Reject {
            message: str_field(&v, "message", "reject")?.to_string(),
        }),
        "request" => Ok(Message::Request),
        "lease" => Ok(Message::Lease(Lease {
            lease_id: u64_field(&v, "lease_id", "lease")?,
            job: str_field(&v, "job", "lease")?.to_string(),
            grid_fp: str_field(&v, "grid_fp", "lease")?.to_string(),
            start: u64_field(&v, "start", "lease")?,
            end: u64_field(&v, "end", "lease")?,
            from: u64_field(&v, "from", "lease")?,
            checkpoint_every: u64_field(&v, "checkpoint_every", "lease")?,
        })),
        "wait" => Ok(Message::Wait {
            poll_ms: u64_field(&v, "poll_ms", "wait")?,
        }),
        "shutdown" => Ok(Message::Shutdown),
        "delta" => {
            let lease_id = u64_field(&v, "lease_id", "delta")?;
            let grid_fp = str_field(&v, "grid_fp", "delta")?.to_string();
            let from = u64_field(&v, "from", "delta")?;
            let taken = u64_field(&v, "taken", "delta")?;
            let stats = stats_from_value(field(&v, "stats", "delta")?)?;
            let entries = match field(&v, "entries", "delta")? {
                Value::Arr(es) => es.clone(),
                _ => return Err("delta: 'entries' is not an array".to_string()),
            };
            Ok(Message::Delta(Delta {
                lease_id,
                grid_fp,
                from,
                taken,
                stats,
                entries,
            }))
        }
        "ack" => Ok(Message::Ack {
            lease_id: u64_field(&v, "lease_id", "ack")?,
            done: u64_field(&v, "done", "ack")?,
        }),
        "refuse" => Ok(Message::Refuse {
            lease_id: u64_field(&v, "lease_id", "refuse")?,
            message: str_field(&v, "message", "refuse")?.to_string(),
        }),
        other => Err(format!("message: unknown type '{other}'")),
    }
}

/// 64-bit FNV-1a fingerprint of a serialized grid descriptor, as 16 lower
/// hex digits. Workers reproduce it from their own resolved grid; a
/// mismatch anywhere in the conversation means the coordinator and worker
/// disagree about what is being swept, and fails fast instead of folding
/// entries of the wrong grid.
pub fn grid_fingerprint(desc_json: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in desc_json.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = String::with_capacity(16);
    let _ = write!(s, "{hash:016x}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let line = write_message(&m);
        assert!(!line.contains('\n'), "one line: {line}");
        assert_eq!(parse_message(&line).unwrap(), m, "{line}");
    }

    #[test]
    fn every_variant_round_trips_through_the_wire() {
        round_trip(Message::Hello(Role::Work));
        round_trip(Message::Hello(Role::Submit));
        round_trip(Message::Submit {
            job: "{\"scenario\":{\n \"name\":\"x\"}}".to_string(),
        });
        round_trip(Message::Result {
            frontier: "{\"format\":\"f\",\n\"frontier\":[\n]}\n".to_string(),
        });
        round_trip(Message::Reject {
            message: "no \"such\" job".to_string(),
        });
        round_trip(Message::Request);
        round_trip(Message::Lease(Lease {
            lease_id: 7,
            job: "{}".to_string(),
            grid_fp: "00ff00ff00ff00ff".to_string(),
            start: 32,
            end: 48,
            from: 3,
            checkpoint_every: 8,
        }));
        round_trip(Message::Wait { poll_ms: 50 });
        round_trip(Message::Shutdown);
        round_trip(Message::Delta(Delta {
            lease_id: 7,
            grid_fp: "00ff00ff00ff00ff".to_string(),
            from: 3,
            taken: 8,
            stats: SweepStats {
                chains: 8,
                inactive_chains: 0,
                feasible: 21,
                duplicates: 2,
                infeasible: 1,
            },
            entries: vec![vi_noc_sweep::json::parse("{\"ordinal\":4,\"power_mw\":1.5}").unwrap()],
        }));
        round_trip(Message::Ack {
            lease_id: 7,
            done: 11,
        });
        round_trip(Message::Refuse {
            lease_id: 7,
            message: "grid fingerprint mismatch".to_string(),
        });
    }

    #[test]
    fn delta_entry_bytes_survive_the_round_trip() {
        let entry = "{\"ordinal\":12,\"power_mw\":88.25,\"latency_cycles\":5.5,\"chain_id\":4,\
                     \"scale\":1,\"boosts\":[0,1],\"point\":{\"x\":[1,2,3]}}";
        let m = Message::Delta(Delta {
            lease_id: 1,
            grid_fp: "0".repeat(16),
            from: 0,
            taken: 4,
            stats: SweepStats::default(),
            entries: vec![vi_noc_sweep::json::parse(entry).unwrap()],
        });
        let line = write_message(&m);
        match parse_message(&line).unwrap() {
            Message::Delta(d) => assert_eq!(d.entries[0].to_json(), entry),
            other => panic!("not a delta: {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        // Pinned: FNV-1a 64 of the empty string and a known vector. If
        // these move, every committed corpus fixture's grid_fp is stale.
        assert_eq!(grid_fingerprint(""), "cbf29ce484222325");
        assert_eq!(grid_fingerprint("a"), "af63dc4c8601ec8c");
        assert_ne!(
            grid_fingerprint("{\"num_chains\":8}"),
            grid_fingerprint("{\"num_chains\":9}")
        );
    }

    #[test]
    fn parse_rejects_shape_violations_with_contexted_messages() {
        for (line, want) in [
            ("{", "JSON error at byte"),
            (
                "{\"protocol\":\"vi-noc-fleet-v1\"}",
                "message: missing 'type'",
            ),
            ("{\"type\":7}", "message: 'type' is not a string"),
            ("{\"type\":\"gossip\"}", "message: unknown type 'gossip'"),
            (
                "{\"type\":\"hello\",\"protocol\":\"v0\",\"role\":\"work\"}",
                "hello: protocol 'v0' is not 'vi-noc-fleet-v1'",
            ),
            (
                "{\"type\":\"hello\",\"protocol\":\"vi-noc-fleet-v1\",\"role\":\"lurk\"}",
                "hello: role 'lurk' is not 'work' or 'submit'",
            ),
            ("{\"type\":\"wait\"}", "wait: missing 'poll_ms'"),
            (
                "{\"type\":\"ack\",\"lease_id\":1,\"done\":-2}",
                "ack: 'done' is not an unsigned integer",
            ),
        ] {
            let err = parse_message(line).unwrap_err();
            assert!(err.contains(want), "{line} -> {err}");
        }
    }
}
