//! Sweep-as-a-service: a coordinator + worker fleet with leased shards
//! and streaming frontier folds.
//!
//! PR 6's sharded sweep splits a grid by *static* modulo striping: the
//! process count is fixed up front, every shard writes a checkpoint file,
//! and a final `merge` folds them. This crate makes the same exact sweep
//! *elastic*: a [`coordinator`] owns the grid, cuts it into contiguous
//! [`vi_noc_sweep::ChainRange`] leases, and hands them to however many
//! worker processes happen to connect — over a line-delimited JSON
//! [`protocol`] on local TCP sockets, std-only. Workers evaluate leases
//! with the existing sweep machinery ([`vi_noc_sweep::run_range_deltas`])
//! and stream back disjoint checkpoint deltas; the coordinator folds each
//! delta the moment it arrives through the same
//! [`vi_noc_core::ParetoFold`] the unsharded run uses.
//!
//! **The headline invariant:** the fleet-produced frontier file — for any
//! worker count and any kill/re-lease schedule — is byte-identical to the
//! single-process `sweep run --frontier` emission. The argument stacks
//! three exactness properties:
//!
//! 1. Pareto survival is pairwise under a strict partial order, so folds
//!    compose in any order ([`vi_noc_core::pareto`]).
//! 2. Deltas are *disjoint* intervals of a lease, each folded exactly
//!    once: the [`lease::LeaseBook`] insists every delta starts at the
//!    range's acked watermark and rejects superseded lease ids, so a
//!    dead worker's replacement resumes `from` the watermark without
//!    double-folding or gapping (`crates/sweep/tests/range_delta.rs` and
//!    `crates/fleet/tests/fleet_exact.rs` pin this).
//! 3. Every writer on the path is a parse→write fixed point, so entry
//!    bytes survive the wire unchanged.
//!
//! Worker crashes are handled twice over: a dropped connection —
//! including SIGKILL, which closes the socket — releases its leases
//! immediately, and a lease deadline catches workers that hang without
//! dying. Multiple scenario submissions share one coordinator and one
//! worker pool concurrently.
//!
//! The fleet is driven from the CLI (`vi-noc fleet serve|work|run`, see
//! `vi-noc-api`); this crate stays ignorant of what a job payload means
//! via the [`lease::JobResolver`] trait.

#![warn(missing_docs)]

pub mod coordinator;
pub mod lease;
pub mod protocol;
pub mod worker;

pub use coordinator::{start_coordinator, submit_remote, FleetHandle};
pub use lease::{FleetConfig, FoldOutcome, JobResolver, LeaseBook, ResolvedJob};
pub use protocol::{grid_fingerprint, parse_message, write_message, Delta, Lease, Message, Role};
pub use worker::{run_worker, spawn_local_workers, WorkerOpts, WorkerStats};
