//! The coordinator's lease book: which worker owns which chain range of
//! which job, how far each range has been acked, and when a silent lease
//! expires and gets re-issued.
//!
//! ## State machine
//!
//! Each submitted job's grid is cut into contiguous [`ChainRange`]s
//! (`FleetConfig::lease_chunk` ids each). Every range moves through
//!
//! ```text
//! Pending ──next_lease──▶ Active{lease_id, deadline} ──acked to end──▶ Done
//!    ▲                        │
//!    └── release / expiry ────┘   (re-issued from the acked watermark,
//!                                  old lease_id superseded)
//! ```
//!
//! A range's `acked` watermark only advances when a delta is folded, and a
//! delta is folded **exactly once**: deltas are disjoint intervals, the
//! book insists each one starts exactly at the current watermark
//! (`duplicate ack` otherwise), and deltas carrying a superseded or
//! unknown lease id are rejected outright. So a worker that is SIGKILL'd,
//! hangs past its deadline, or keeps streaming after its lease was
//! re-issued can never double-fold an interval or leave a gap — which is
//! why the folded frontier is byte-identical to the unsharded run's for
//! *any* kill/re-lease schedule.

use crate::protocol::{grid_fingerprint, Delta, Lease};
use std::time::{Duration, Instant};
use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{SocSpec, ViAssignment};
use vi_noc_sweep::json::Value;
use vi_noc_sweep::{
    frontier_progress_json, validate_entries, ChainRange, GridDescriptor, ShardProgress, SweepGrid,
};

/// Knobs of a coordinator.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Chain ids per lease. Smaller chunks re-balance better when workers
    /// die; larger chunks amortize job-resolution and wire overhead.
    pub lease_chunk: u64,
    /// How long an active lease may go without an acked delta before it is
    /// considered dead and re-issued.
    pub lease_timeout: Duration,
    /// Range positions per streamed delta.
    pub checkpoint_every: u64,
    /// Poll interval suggested to idle workers.
    pub poll_ms: u64,
    /// Emit `fleet: metrics ...` lines on the coordinator's stderr after
    /// every lease grant and folded delta (the CLI's `--verbose`).
    pub verbose: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            lease_chunk: 16,
            lease_timeout: Duration::from_secs(10),
            checkpoint_every: 8,
            poll_ms: 25,
            verbose: false,
        }
    }
}

/// A job payload resolved into everything a sweep needs. Both the
/// coordinator (to cut and fingerprint the grid) and every worker (to
/// evaluate leases) resolve the same payload; [`grid_fingerprint`]
/// equality proves they agree.
pub struct ResolvedJob {
    /// The SoC under sweep.
    pub spec: SocSpec,
    /// Its voltage-island assignment.
    pub vi: ViAssignment,
    /// Synthesis configuration (seed, weights, parallelism).
    pub cfg: SynthesisConfig,
    /// The candidate grid.
    pub grid: SweepGrid,
    /// The grid's descriptor (identifies the sweep; fingerprinted).
    pub desc: GridDescriptor,
    /// Whether workers run slack-certified dominance pruning.
    pub prune: bool,
}

/// Turns a job payload into a [`ResolvedJob`]. The fleet crate is
/// deliberately ignorant of what payloads mean — the CLI layer resolves
/// scenario documents; tests resolve tiny benchmark grids.
pub trait JobResolver: Send + Sync {
    /// Resolves `payload`, or explains why it cannot be run.
    fn resolve(&self, payload: &str) -> Result<ResolvedJob, String>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeState {
    Pending,
    Active { lease_id: u64, deadline: Instant },
    Done,
}

#[derive(Debug)]
struct RangeSlot {
    range: ChainRange,
    /// Range positions folded so far — the resume point of a re-issue.
    acked: u64,
    state: RangeState,
}

/// One submitted job inside the book.
struct JobSlot {
    job_id: u64,
    payload: String,
    desc: GridDescriptor,
    /// The descriptor re-parsed as a JSON value, for entry validation.
    grid_value: Value,
    grid_fp: String,
    ranges: Vec<RangeSlot>,
    progress: ShardProgress,
    result: Option<Result<String, String>>,
}

impl JobSlot {
    fn finished(&self) -> bool {
        self.result.is_some()
    }
}

/// Where a folded delta left its lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOutcome {
    /// The lease has more positions to go; `done` is the new watermark.
    Advanced {
        /// Range positions folded so far.
        done: u64,
    },
    /// The delta completed its lease (and possibly its whole job).
    LeaseDone {
        /// Range positions folded — the range length.
        done: u64,
        /// `Some(job_id)` when this delta also completed the job.
        job_finished: Option<u64>,
    },
}

impl FoldOutcome {
    /// The acked watermark after the fold.
    pub fn done(&self) -> u64 {
        match *self {
            FoldOutcome::Advanced { done } => done,
            FoldOutcome::LeaseDone { done, .. } => done,
        }
    }
}

/// The coordinator's bookkeeping for all in-flight jobs. Purely
/// synchronous — the coordinator wraps it in a mutex and drives it from
/// connection threads.
pub struct LeaseBook {
    cfg: FleetConfig,
    next_job_id: u64,
    next_lease_id: u64,
    jobs: Vec<JobSlot>,
    deltas_folded: u64,
    last_fold: Option<Instant>,
}

impl LeaseBook {
    /// An empty book with the given knobs.
    pub fn new(cfg: FleetConfig) -> Self {
        LeaseBook {
            cfg,
            next_job_id: 1,
            next_lease_id: 1,
            jobs: Vec::new(),
            deltas_folded: 0,
            last_fold: None,
        }
    }

    /// The book's knobs.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Registers a job whose payload resolved to `desc`, cutting its grid
    /// into lease ranges. Returns the job id submitters poll with.
    ///
    /// # Errors
    ///
    /// A descriptor that does not re-parse (cannot happen for descriptors
    /// produced by [`GridDescriptor::to_json`]; guarded anyway).
    pub fn submit(&mut self, payload: &str, desc: &GridDescriptor) -> Result<u64, String> {
        let desc_json = desc.to_json();
        let grid_value = vi_noc_sweep::json::parse(&desc_json)
            .map_err(|e| format!("submit: grid descriptor does not re-parse: {e}"))?;
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let ranges: Vec<RangeSlot> = ChainRange::cut(desc.num_chains, self.cfg.lease_chunk)
            .into_iter()
            .map(|range| RangeSlot {
                range,
                acked: 0,
                state: RangeState::Pending,
            })
            .collect();
        let mut slot = JobSlot {
            job_id,
            payload: payload.to_string(),
            grid_fp: grid_fingerprint(&desc_json),
            desc: desc.clone(),
            grid_value,
            ranges,
            progress: ShardProgress::new(),
            result: None,
        };
        // A zero-chain grid has nothing to lease: it completes on arrival.
        if slot.ranges.is_empty() {
            slot.result = Some(Ok(frontier_progress_json(&slot.desc, &slot.progress)));
        }
        self.jobs.push(slot);
        Ok(job_id)
    }

    /// Offers the next lease: the first pending — or expired-active —
    /// range of the oldest unfinished job, resumed from its acked
    /// watermark. Expired leases are superseded by the re-issue: their old
    /// lease id will be rejected if the presumed-dead worker resurfaces.
    pub fn next_lease(&mut self, now: Instant) -> Option<Lease> {
        let deadline = now + self.cfg.lease_timeout;
        let (checkpoint_every, mut lease_id) = (self.cfg.checkpoint_every, self.next_lease_id);
        let mut offer = None;
        'jobs: for job in self.jobs.iter_mut().filter(|j| !j.finished()) {
            for slot in &mut job.ranges {
                let expired = matches!(
                    slot.state,
                    RangeState::Active { deadline, .. } if deadline <= now
                );
                if slot.state == RangeState::Pending || expired {
                    slot.state = RangeState::Active { lease_id, deadline };
                    offer = Some(Lease {
                        lease_id,
                        job: job.payload.clone(),
                        grid_fp: job.grid_fp.clone(),
                        start: slot.range.start,
                        end: slot.range.end,
                        from: slot.acked,
                        checkpoint_every,
                    });
                    lease_id += 1;
                    break 'jobs;
                }
            }
        }
        self.next_lease_id = lease_id;
        offer
    }

    fn slot_of_lease(&mut self, lease_id: u64) -> Result<(usize, usize), String> {
        if lease_id >= self.next_lease_id {
            return Err(format!("delta: unknown lease {lease_id}"));
        }
        for (ji, job) in self.jobs.iter().enumerate() {
            for (ri, slot) in job.ranges.iter().enumerate() {
                if let RangeState::Active { lease_id: id, .. } = slot.state {
                    if id == lease_id {
                        return Ok((ji, ri));
                    }
                }
            }
        }
        // The id was issued once but no range carries it any more: the
        // lease timed out (or its connection dropped) and was re-issued.
        Err(format!("delta: lease {lease_id} is superseded"))
    }

    /// Folds one streamed delta into its job, advancing the range's acked
    /// watermark and extending the lease deadline. Exactly-once folding is
    /// enforced here; see the module docs for the argument.
    ///
    /// # Errors
    ///
    /// Unknown or superseded lease ids, a grid-fingerprint mismatch
    /// (descriptor skew), a delta not starting at the watermark
    /// (`duplicate ack`), one overrunning its range, and entries failing
    /// [`validate_entries`] — all pinned by the corpus tests. Errors do
    /// not advance any state.
    pub fn fold_delta(&mut self, d: &Delta, now: Instant) -> Result<FoldOutcome, String> {
        let (ji, ri) = self.slot_of_lease(d.lease_id)?;
        let job = &mut self.jobs[ji];
        if d.grid_fp != job.grid_fp {
            return Err(format!(
                "delta: grid fingerprint '{}' does not match the job's '{}'",
                d.grid_fp, job.grid_fp
            ));
        }
        let slot = &mut job.ranges[ri];
        if d.from != slot.acked {
            return Err(format!(
                "delta: duplicate ack at {} (the watermark is {})",
                d.from, slot.acked
            ));
        }
        if d.taken == 0 || d.from + d.taken > slot.range.len() {
            return Err(format!(
                "delta: interval {}+{} overruns the {}-position lease",
                d.from,
                d.taken,
                slot.range.len()
            ));
        }
        let entries = validate_entries(d.entries.clone(), &job.grid_value)?;

        slot.acked += d.taken;
        job.progress.chains_done += d.taken;
        job.progress.stats.add(&d.stats);
        for (key, entry) in entries {
            job.progress.frontier.offer(key, entry.to_json());
        }
        let done = slot.acked;
        if done < slot.range.len() {
            let deadline = now + self.cfg.lease_timeout;
            slot.state = RangeState::Active {
                lease_id: d.lease_id,
                deadline,
            };
            self.deltas_folded += 1;
            self.last_fold = Some(now);
            return Ok(FoldOutcome::Advanced { done });
        }
        slot.state = RangeState::Done;
        let job_finished = if job.ranges.iter().all(|s| s.state == RangeState::Done) {
            job.result = Some(Ok(frontier_progress_json(&job.desc, &job.progress)));
            Some(job.job_id)
        } else {
            None
        };
        self.deltas_folded += 1;
        self.last_fold = Some(now);
        Ok(FoldOutcome::LeaseDone { done, job_finished })
    }

    /// Returns a dropped connection's active leases to `Pending`, keeping
    /// their acked watermarks. The lease ids are implicitly superseded —
    /// they no longer map to any active range.
    pub fn release_leases(&mut self, lease_ids: &[u64]) {
        for job in &mut self.jobs {
            for slot in &mut job.ranges {
                if let RangeState::Active { lease_id, .. } = slot.state {
                    if lease_ids.contains(&lease_id) {
                        slot.state = RangeState::Pending;
                    }
                }
            }
        }
    }

    /// Fails the job owning `lease_id` (a worker sent `refuse`): its
    /// submitter gets the message, its remaining ranges stop being leased.
    pub fn refuse(&mut self, lease_id: u64, message: &str) -> Result<u64, String> {
        let (ji, _) = self.slot_of_lease(lease_id)?;
        let job = &mut self.jobs[ji];
        for slot in &mut job.ranges {
            slot.state = RangeState::Done;
        }
        job.result = Some(Err(format!("lease {lease_id} refused: {message}")));
        Ok(job.job_id)
    }

    /// The finished result of a job: the frontier file text, or the
    /// failure message. `None` while the job is still running. The result
    /// stays readable (jobs are never evicted — a coordinator lives for
    /// one sweep session).
    pub fn result(&self, job_id: u64) -> Option<&Result<String, String>> {
        self.jobs
            .iter()
            .find(|j| j.job_id == job_id)
            .and_then(|j| j.result.as_ref())
    }

    /// `true` when no unfinished job remains.
    pub fn idle(&self) -> bool {
        self.jobs.iter().all(|j| j.finished())
    }

    /// Leases currently active (issued, neither acked to completion nor
    /// released) across all jobs.
    pub fn leases_outstanding(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| &j.ranges)
            .filter(|s| matches!(s.state, RangeState::Active { .. }))
            .count()
    }

    /// Total deltas folded since the book was created.
    pub fn deltas_folded(&self) -> u64 {
        self.deltas_folded
    }

    /// Milliseconds since the most recent folded delta (0 before the first
    /// fold — an idle coordinator reports no lag, not infinite lag).
    pub fn fold_lag_ms(&self, now: Instant) -> u64 {
        self.last_fold
            .map(|t| now.saturating_duration_since(t).as_millis() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_sweep::SweepStats;

    fn desc(num_chains: u64) -> GridDescriptor {
        GridDescriptor {
            spec_name: "toy".to_string(),
            island_count: 2,
            partition: "logical:2".to_string(),
            seed: 1,
            max_boost: 1,
            freq_scales: vec![1.0],
            max_intermediate: 1,
            num_chains,
            windows: Vec::new(),
        }
    }

    fn delta(lease: &Lease, from: u64, taken: u64) -> Delta {
        Delta {
            lease_id: lease.lease_id,
            grid_fp: lease.grid_fp.clone(),
            from,
            taken,
            stats: SweepStats {
                chains: taken,
                ..SweepStats::default()
            },
            entries: Vec::new(),
        }
    }

    #[test]
    fn ranges_move_pending_active_done_and_finish_the_job() {
        let mut book = LeaseBook::new(FleetConfig {
            lease_chunk: 4,
            checkpoint_every: 2,
            ..FleetConfig::default()
        });
        let t0 = Instant::now();
        let job = book.submit("payload", &desc(6)).unwrap();
        assert!(book.result(job).is_none());

        let l1 = book.next_lease(t0).unwrap();
        let l2 = book.next_lease(t0).unwrap();
        assert_eq!((l1.start, l1.end, l1.from), (0, 4, 0));
        assert_eq!((l2.start, l2.end), (4, 6));
        assert!(book.next_lease(t0).is_none(), "everything is leased");

        let out = book.fold_delta(&delta(&l1, 0, 2), t0).unwrap();
        assert_eq!(out, FoldOutcome::Advanced { done: 2 });
        let out = book.fold_delta(&delta(&l1, 2, 2), t0).unwrap();
        assert_eq!(
            out,
            FoldOutcome::LeaseDone {
                done: 4,
                job_finished: None
            }
        );
        let out = book.fold_delta(&delta(&l2, 0, 1), t0).unwrap();
        assert_eq!(out, FoldOutcome::Advanced { done: 1 });
        match book.fold_delta(&delta(&l2, 1, 1), t0).unwrap() {
            FoldOutcome::LeaseDone {
                job_finished: Some(id),
                ..
            } => assert_eq!(id, job),
            other => panic!("job should finish: {other:?}"),
        }
        let result = book.result(job).unwrap().as_ref().unwrap();
        assert!(result.contains("\"chains\":6"), "{result}");
        assert!(book.idle());
    }

    #[test]
    fn expired_leases_are_reissued_from_the_watermark_and_superseded() {
        let cfg = FleetConfig {
            lease_chunk: 8,
            checkpoint_every: 2,
            lease_timeout: Duration::from_millis(100),
            ..FleetConfig::default()
        };
        let mut book = LeaseBook::new(cfg);
        let t0 = Instant::now();
        book.submit("payload", &desc(8)).unwrap();

        let l1 = book.next_lease(t0).unwrap();
        book.fold_delta(&delta(&l1, 0, 2), t0).unwrap();
        // Before the deadline there is nothing to lease...
        assert!(book.next_lease(t0 + Duration::from_millis(50)).is_none());
        // ...after it, the same range is re-issued from the watermark.
        let late = t0 + Duration::from_millis(250);
        let l2 = book.next_lease(late).unwrap();
        assert_eq!((l2.start, l2.end, l2.from), (0, 8, 2));
        assert_ne!(l2.lease_id, l1.lease_id);
        // The zombie's next delta is rejected; the replacement's folds.
        let err = book.fold_delta(&delta(&l1, 2, 2), late).unwrap_err();
        assert_eq!(err, format!("delta: lease {} is superseded", l1.lease_id));
        book.fold_delta(&delta(&l2, 2, 2), late).unwrap();
        // Folding a delta extends the deadline: no re-issue right after.
        assert!(book.next_lease(late + Duration::from_millis(50)).is_none());
    }

    #[test]
    fn fold_rejects_unknown_duplicate_mismatched_and_overrunning_deltas() {
        let mut book = LeaseBook::new(FleetConfig {
            lease_chunk: 8,
            ..FleetConfig::default()
        });
        let t0 = Instant::now();
        book.submit("payload", &desc(8)).unwrap();
        let l = book.next_lease(t0).unwrap();

        let err = book.fold_delta(&delta(&l, 1, 2), t0).unwrap_err();
        assert_eq!(err, "delta: duplicate ack at 1 (the watermark is 0)");
        let mut skewed = delta(&l, 0, 2);
        skewed.grid_fp = "deadbeefdeadbeef".to_string();
        let err = book.fold_delta(&skewed, t0).unwrap_err();
        assert!(
            err.starts_with("delta: grid fingerprint 'deadbeefdeadbeef'"),
            "{err}"
        );
        let err = book.fold_delta(&delta(&l, 0, 9), t0).unwrap_err();
        assert_eq!(err, "delta: interval 0+9 overruns the 8-position lease");
        let mut unknown = delta(&l, 0, 2);
        unknown.lease_id = 99;
        let err = book.fold_delta(&unknown, t0).unwrap_err();
        assert_eq!(err, "delta: unknown lease 99");

        book.fold_delta(&delta(&l, 0, 2), t0).unwrap();
        let err = book.fold_delta(&delta(&l, 0, 2), t0).unwrap_err();
        assert_eq!(err, "delta: duplicate ack at 0 (the watermark is 2)");
    }

    #[test]
    fn released_leases_go_back_to_pending_and_refusal_fails_the_job() {
        let mut book = LeaseBook::new(FleetConfig {
            lease_chunk: 4,
            ..FleetConfig::default()
        });
        let t0 = Instant::now();
        let job = book.submit("payload", &desc(8)).unwrap();
        let l1 = book.next_lease(t0).unwrap();
        book.fold_delta(&delta(&l1, 0, 1), t0).unwrap();
        book.release_leases(&[l1.lease_id]);
        let l2 = book.next_lease(t0).unwrap();
        assert_eq!((l2.start, l2.from), (0, 1), "re-issued from the watermark");
        let err = book.fold_delta(&delta(&l1, 1, 1), t0).unwrap_err();
        assert!(err.contains("superseded"), "{err}");

        let finished = book
            .refuse(l2.lease_id, "grid fingerprint mismatch")
            .unwrap();
        assert_eq!(finished, job);
        let msg = book.result(job).unwrap().as_ref().unwrap_err();
        assert_eq!(
            msg,
            &format!("lease {} refused: grid fingerprint mismatch", l2.lease_id)
        );
        assert!(book.idle());
        assert!(book.next_lease(t0).is_none(), "failed jobs lease nothing");
    }

    #[test]
    fn metrics_track_outstanding_leases_and_fold_lag() {
        let mut book = LeaseBook::new(FleetConfig {
            lease_chunk: 4,
            ..FleetConfig::default()
        });
        let t0 = Instant::now();
        assert_eq!(book.leases_outstanding(), 0);
        assert_eq!(book.deltas_folded(), 0);
        assert_eq!(book.fold_lag_ms(t0), 0, "no fold yet means no lag");

        book.submit("payload", &desc(8)).unwrap();
        let l1 = book.next_lease(t0).unwrap();
        let l2 = book.next_lease(t0).unwrap();
        assert_eq!(book.leases_outstanding(), 2);

        book.fold_delta(&delta(&l1, 0, 2), t0).unwrap();
        assert_eq!(book.deltas_folded(), 1);
        assert_eq!(book.fold_lag_ms(t0 + Duration::from_millis(40)), 40);

        // Completing a lease takes it out of the outstanding count;
        // rejected deltas never count as folds.
        book.fold_delta(&delta(&l1, 2, 2), t0).unwrap();
        assert_eq!(book.leases_outstanding(), 1);
        assert_eq!(book.deltas_folded(), 2);
        assert!(book.fold_delta(&delta(&l2, 3, 1), t0).is_err());
        assert_eq!(book.deltas_folded(), 2);

        book.release_leases(&[l2.lease_id]);
        assert_eq!(book.leases_outstanding(), 0);
    }

    #[test]
    fn empty_grids_complete_on_submission() {
        let mut book = LeaseBook::new(FleetConfig::default());
        let job = book.submit("payload", &desc(0)).unwrap();
        assert!(book.result(job).unwrap().is_ok());
        assert!(book.next_lease(Instant::now()).is_none());
    }
}
