//! The coordinator: one listening socket, one lease book, any number of
//! workers and submitters.
//!
//! Std-only threading model: a non-blocking accept loop spawns one thread
//! per connection; every connection thread drives the shared
//! [`LeaseBook`] under a mutex and parks on a condvar when it waits for a
//! job to finish. Reads use short timeouts so every thread notices the
//! stop flag promptly — shutdown never hangs on a silent peer.
//!
//! Crash safety is the lease book's job (watermark re-issue, superseded
//! ids); the coordinator's part is mechanical: when a worker connection
//! drops — including SIGKILL, which closes the socket — its active leases
//! are released back to `Pending` with their watermarks intact, and the
//! next requesting worker picks them up. Lease deadlines cover the rarer
//! case of a worker that hangs without dying.

use crate::lease::{FleetConfig, JobResolver, LeaseBook};
use crate::protocol::{parse_message, write_message, Message, Role};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

struct Shared {
    book: Mutex<LeaseBook>,
    change: Condvar,
    resolver: Arc<dyn JobResolver>,
    stop: AtomicBool,
}

/// A running coordinator. Dropping the handle without calling
/// [`FleetHandle::shutdown`] leaves the accept thread running until the
/// process exits; tests and the CLI always shut down explicitly.
pub struct FleetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl FleetHandle {
    /// The address the coordinator listens on (resolved, so binding to
    /// port 0 reports the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Submits a job from inside the coordinator process and blocks until
    /// its frontier is folded (or the job fails).
    ///
    /// # Errors
    ///
    /// Payload resolution failures, job failures (a worker refused a
    /// lease), and shutdown before completion.
    pub fn submit(&self, payload: &str) -> Result<String, String> {
        let resolved = self.shared.resolver.resolve(payload)?;
        let job_id = {
            let mut book = self.shared.book.lock().unwrap();
            book.submit(payload, &resolved.desc)?
        };
        self.await_job(job_id)
    }

    fn await_job(&self, job_id: u64) -> Result<String, String> {
        let mut book = self.shared.book.lock().unwrap();
        loop {
            if let Some(result) = book.result(job_id) {
                return result.clone();
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                return Err("coordinator shut down before the job finished".to_string());
            }
            let (guard, _) = self
                .shared
                .change
                .wait_timeout(book, Duration::from_millis(100))
                .unwrap();
            book = guard;
        }
    }

    /// Stops accepting, tells every polling worker to shut down, and
    /// joins the accept thread. Connection threads exit on their next
    /// read-timeout tick.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.change.notify_all();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// Binds `bind` (e.g. `127.0.0.1:0`) and starts the accept loop.
///
/// # Errors
///
/// Bind failures.
pub fn start_coordinator(
    bind: &str,
    resolver: Arc<dyn JobResolver>,
    cfg: FleetConfig,
) -> Result<FleetHandle, String> {
    let listener =
        TcpListener::bind(bind).map_err(|e| format!("fleet: cannot bind {bind}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("fleet: cannot set nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("fleet: no local addr: {e}"))?;
    let shared = Arc::new(Shared {
        book: Mutex::new(LeaseBook::new(cfg)),
        change: Condvar::new(),
        resolver,
        stop: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::spawn(move || {
        while !accept_shared.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn_shared = Arc::clone(&accept_shared);
                    thread::spawn(move || handle_connection(stream, conn_shared));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    });
    Ok(FleetHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// Reads one protocol line, looping over read timeouts until the stop
/// flag is raised. `Ok(None)` means the peer is gone (EOF or stop).
fn read_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> Result<Option<String>, String> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(Some(line.trim_end().to_string()));
                }
                return Ok(None); // EOF mid-line: peer died while writing.
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

/// One `--verbose` metrics line: how many leases are in flight, how many
/// deltas the coordinator has folded, and how long ago the last fold was.
fn log_metrics(book: &LeaseBook, now: Instant) {
    eprintln!(
        "fleet: metrics leases_outstanding={} deltas_folded={} fold_lag_ms={}",
        book.leases_outstanding(),
        book.deltas_folded(),
        book.fold_lag_ms(now)
    );
}

fn send(stream: &mut TcpStream, m: &Message) -> Result<(), String> {
    let mut line = write_message(m);
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("write: {e}"))
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let hello = match read_line(&mut reader, &shared) {
        Ok(Some(line)) => parse_message(&line),
        _ => return,
    };
    let role = match hello {
        Ok(Message::Hello(role)) => role,
        Ok(_) => {
            let _ = send(
                &mut writer,
                &Message::Reject {
                    message: "expected a hello".to_string(),
                },
            );
            return;
        }
        Err(message) => {
            let _ = send(&mut writer, &Message::Reject { message });
            return;
        }
    };
    let outcome = match role {
        Role::Work => serve_worker(&mut reader, &mut writer, &shared),
        Role::Submit => serve_submitter(&mut reader, &mut writer, &shared),
    };
    if let Err(e) = outcome {
        // Transport failure: nothing to tell the peer; the book has
        // already been cleaned up by the serving loop.
        eprintln!("fleet: connection error: {e}");
    }
}

fn serve_worker(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared,
) -> Result<(), String> {
    // Every lease this connection currently holds; released if it drops.
    let mut held: Vec<u64> = Vec::new();
    let release = |held: &mut Vec<u64>, shared: &Shared| {
        if !held.is_empty() {
            let mut book = shared.book.lock().unwrap();
            book.release_leases(held);
            eprintln!(
                "fleet: worker connection lost, re-issued {} lease(s) from their watermarks",
                held.len()
            );
            held.clear();
            shared.change.notify_all();
        }
    };
    loop {
        let line = match read_line(reader, shared) {
            Ok(Some(line)) => line,
            Ok(None) => {
                release(&mut held, shared);
                return Ok(());
            }
            Err(e) => {
                release(&mut held, shared);
                return Err(e);
            }
        };
        let msg = match parse_message(&line) {
            Ok(m) => m,
            Err(message) => {
                // A malformed line means the stream can no longer be
                // trusted to be message-aligned: reject and hang up.
                release(&mut held, shared);
                return send(writer, &Message::Reject { message });
            }
        };
        match msg {
            Message::Request => {
                if shared.stop.load(Ordering::SeqCst) {
                    return send(writer, &Message::Shutdown);
                }
                let mut book = shared.book.lock().unwrap();
                let now = Instant::now();
                match book.next_lease(now) {
                    Some(lease) => {
                        held.push(lease.lease_id);
                        if book.config().verbose {
                            log_metrics(&book, now);
                        }
                        drop(book);
                        send(writer, &Message::Lease(lease))?;
                    }
                    None => {
                        let poll_ms = book.config().poll_ms;
                        drop(book);
                        send(writer, &Message::Wait { poll_ms })?;
                    }
                }
            }
            Message::Delta(d) => {
                let folded = {
                    let mut book = shared.book.lock().unwrap();
                    let now = Instant::now();
                    let folded = book.fold_delta(&d, now);
                    if folded.is_ok() && book.config().verbose {
                        log_metrics(&book, now);
                    }
                    folded
                };
                match folded {
                    Ok(outcome) => {
                        if let crate::lease::FoldOutcome::LeaseDone { job_finished, .. } = outcome {
                            held.retain(|&id| id != d.lease_id);
                            if job_finished.is_some() {
                                shared.change.notify_all();
                            }
                        }
                        send(
                            writer,
                            &Message::Ack {
                                lease_id: d.lease_id,
                                done: outcome.done(),
                            },
                        )?;
                    }
                    Err(message) => {
                        // Stale or skewed delta: the worker abandons this
                        // lease and asks for a fresh one; the connection
                        // stays usable.
                        held.retain(|&id| id != d.lease_id);
                        send(writer, &Message::Reject { message })?;
                    }
                }
            }
            Message::Refuse { lease_id, message } => {
                let mut book = shared.book.lock().unwrap();
                let refused = book.refuse(lease_id, &message);
                drop(book);
                held.retain(|&id| id != lease_id);
                if refused.is_ok() {
                    shared.change.notify_all();
                }
            }
            other => {
                release(&mut held, shared);
                return send(
                    writer,
                    &Message::Reject {
                        message: format!("unexpected message in the work role: {other:?}"),
                    },
                );
            }
        }
    }
}

fn serve_submitter(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared,
) -> Result<(), String> {
    let line = match read_line(reader, shared)? {
        Some(line) => line,
        None => return Ok(()),
    };
    let job = match parse_message(&line) {
        Ok(Message::Submit { job }) => job,
        Ok(_) => {
            return send(
                writer,
                &Message::Reject {
                    message: "expected a submit".to_string(),
                },
            )
        }
        Err(message) => return send(writer, &Message::Reject { message }),
    };
    let job_id = {
        let resolved = match shared.resolver.resolve(&job) {
            Ok(r) => r,
            Err(message) => return send(writer, &Message::Reject { message }),
        };
        let mut book = shared.book.lock().unwrap();
        match book.submit(&job, &resolved.desc) {
            Ok(id) => id,
            Err(message) => {
                drop(book);
                return send(writer, &Message::Reject { message });
            }
        }
    };
    // Park until the job finishes (or the coordinator stops).
    let result = {
        let mut book = shared.book.lock().unwrap();
        loop {
            if let Some(result) = book.result(job_id) {
                break result.clone();
            }
            if shared.stop.load(Ordering::SeqCst) {
                break Err("coordinator shut down before the job finished".to_string());
            }
            let (guard, _) = shared
                .change
                .wait_timeout(book, Duration::from_millis(100))
                .unwrap();
            book = guard;
        }
    };
    match result {
        Ok(frontier) => send(writer, &Message::Result { frontier }),
        Err(message) => send(writer, &Message::Reject { message }),
    }
}

/// Submits a job to a remote coordinator over TCP and blocks for the
/// frontier — the client side of the `submit` role.
///
/// # Errors
///
/// Connection failures, protocol violations, and job rejections.
pub fn submit_remote(addr: SocketAddr, payload: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("fleet: cannot connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    send(&mut stream, &Message::Hello(Role::Submit))?;
    send(
        &mut stream,
        &Message::Submit {
            job: payload.to_string(),
        },
    )?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    match parse_message(line.trim_end())? {
        Message::Result { frontier } => Ok(frontier),
        Message::Reject { message } => Err(message),
        other => Err(format!("fleet: unexpected reply: {other:?}")),
    }
}
