//! Malformed-message corpus for the fleet wire protocol, extending the
//! pattern of `crates/sweep/tests/corpus/`: every fixture under
//! `tests/corpus/` is one protocol line with one deliberate defect, and
//! the parser — or, for the stateful cases, the lease book — must reject
//! it with the exact pinned error. `valid_delta.json` pins that the
//! corpus base itself still parses; if the wire format evolves,
//! regenerate the corpus rather than letting the negative cases rot.

use std::time::Instant;
use vi_noc_fleet::{grid_fingerprint, parse_message, FleetConfig, LeaseBook, Message};
use vi_noc_sweep::GridDescriptor;

/// Parse-level fixtures: (name, line, exact error). These never reach the
/// lease book — the line itself is malformed.
const PARSE_CASES: &[(&str, &str, &str)] = &[
    (
        "truncated_delta",
        include_str!("corpus/truncated_delta.json"),
        "JSON error at byte 109: unterminated string",
    ),
    (
        "missing_type",
        include_str!("corpus/missing_type.json"),
        "message: missing 'type'",
    ),
    (
        "unknown_type",
        include_str!("corpus/unknown_type.json"),
        "message: unknown type 'gossip'",
    ),
    (
        "wrong_protocol",
        include_str!("corpus/wrong_protocol.json"),
        "hello: protocol 'vi-noc-fleet-v0' is not 'vi-noc-fleet-v1'",
    ),
    (
        "bad_role",
        include_str!("corpus/bad_role.json"),
        "hello: role 'lurk' is not 'work' or 'submit'",
    ),
    (
        "bad_lease_id",
        include_str!("corpus/bad_lease_id.json"),
        "delta: 'lease_id' is not an unsigned integer",
    ),
    (
        "delta_missing_stats",
        include_str!("corpus/delta_missing_stats.json"),
        "delta: missing 'stats'",
    ),
    (
        "entries_not_array",
        include_str!("corpus/entries_not_array.json"),
        "delta: 'entries' is not an array",
    ),
    (
        "negative_from",
        include_str!("corpus/negative_from.json"),
        "delta: 'from' is not an unsigned integer",
    ),
    (
        "submit_missing_job",
        include_str!("corpus/submit_missing_job.json"),
        "submit: missing 'job'",
    ),
    (
        "lease_bad_grid_fp",
        include_str!("corpus/lease_bad_grid_fp.json"),
        "lease: 'grid_fp' is not a string",
    ),
];

#[test]
fn every_malformed_message_is_rejected_with_its_pinned_error() {
    for &(name, line, want) in PARSE_CASES {
        let err = parse_message(line).unwrap_err();
        assert_eq!(err, want, "{name}");
    }
}

/// The grid the stateful fixtures were generated against. Its serialized
/// descriptor hashes to the `grid_fp` baked into the fixtures — asserted
/// below, so a descriptor-format change tells you to regenerate them.
fn corpus_desc() -> GridDescriptor {
    GridDescriptor {
        spec_name: "toy".to_string(),
        island_count: 2,
        partition: "logical:2".to_string(),
        seed: 1,
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 1,
        num_chains: 8,
        windows: Vec::new(),
    }
}

/// A book with one lease (id 1, range 0..8) issued — the state the
/// stateful fixtures assume.
fn corpus_book() -> LeaseBook {
    let mut book = LeaseBook::new(FleetConfig {
        lease_chunk: 8,
        checkpoint_every: 2,
        ..FleetConfig::default()
    });
    book.submit("toy-job", &corpus_desc()).unwrap();
    let lease = book.next_lease(Instant::now()).unwrap();
    assert_eq!(lease.lease_id, 1, "the corpus assumes the first lease id");
    assert_eq!(
        lease.grid_fp,
        grid_fingerprint(&corpus_desc().to_json()),
        "descriptor format drifted — regenerate the corpus grid_fp"
    );
    assert_eq!(lease.grid_fp, "c110e3979ccf6304", "fixtures bake this fp");
    book
}

fn as_delta(line: &str) -> vi_noc_fleet::Delta {
    match parse_message(line).unwrap() {
        Message::Delta(d) => d,
        other => panic!("fixture is not a delta: {other:?}"),
    }
}

#[test]
fn the_valid_base_fixture_parses_and_folds() {
    let mut book = corpus_book();
    let d = as_delta(include_str!("corpus/valid_delta.json"));
    let outcome = book.fold_delta(&d, Instant::now()).unwrap();
    assert_eq!(outcome.done(), 2);
}

#[test]
fn a_descriptor_mismatch_is_rejected_before_any_folding() {
    let mut book = corpus_book();
    let d = as_delta(include_str!("corpus/descriptor_mismatch.json"));
    let err = book.fold_delta(&d, Instant::now()).unwrap_err();
    assert_eq!(
        err,
        "delta: grid fingerprint 'deadbeefdeadbeef' does not match the job's 'c110e3979ccf6304'"
    );
    // Nothing advanced: the valid delta still folds from position 0.
    let d = as_delta(include_str!("corpus/valid_delta.json"));
    assert_eq!(book.fold_delta(&d, Instant::now()).unwrap().done(), 2);
}

#[test]
fn a_duplicate_ack_is_rejected_and_folds_nothing_twice() {
    let mut book = corpus_book();
    let valid = as_delta(include_str!("corpus/valid_delta.json"));
    book.fold_delta(&valid, Instant::now()).unwrap();
    // Replaying the same interval is a duplicate ack...
    let err = book.fold_delta(&valid, Instant::now()).unwrap_err();
    assert_eq!(err, "delta: duplicate ack at 0 (the watermark is 2)");
    // ...and so is a delta starting past the watermark (a gap).
    let ahead = as_delta(include_str!("corpus/stale_watermark.json"));
    book.fold_delta(&ahead, Instant::now()).unwrap();
    let err = book.fold_delta(&ahead, Instant::now()).unwrap_err();
    assert_eq!(err, "delta: duplicate ack at 2 (the watermark is 4)");
}

#[test]
fn an_unknown_lease_is_rejected() {
    let mut book = corpus_book();
    let mut d = as_delta(include_str!("corpus/valid_delta.json"));
    d.lease_id = 42;
    let err = book.fold_delta(&d, Instant::now()).unwrap_err();
    assert_eq!(err, "delta: unknown lease 42");
}
