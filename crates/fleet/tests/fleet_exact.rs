//! End-to-end proof of the fleet's headline invariant: the frontier a
//! coordinator folds from streamed worker deltas — any worker count, any
//! connection-drop or lease-timeout schedule — is byte-identical to the
//! unsharded `run_shard` emission of the same grid.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use vi_noc_core::SynthesisConfig;
use vi_noc_fleet::{
    grid_fingerprint, parse_message, spawn_local_workers, start_coordinator, submit_remote,
    write_message, Delta, FleetConfig, JobResolver, Message, ResolvedJob, Role, WorkerOpts,
};
use vi_noc_soc::{benchmarks, partition};
use vi_noc_sweep::{
    frontier_json, run_range_deltas, run_shard, run_shard_pruned, ChainRange, GridConfig,
    GridDescriptor, Shard, SweepGrid,
};

/// The test fleet's job language: `d12`, `d12:prune`, or `d12:boost0`.
/// Resolution is deterministic, so every worker and the coordinator
/// fingerprint the same grid.
struct BenchResolver;

impl JobResolver for BenchResolver {
    fn resolve(&self, payload: &str) -> Result<ResolvedJob, String> {
        let (grid_cfg, prune) = match payload {
            "d12" | "d12:prune" => (
                GridConfig {
                    max_boost: 1,
                    freq_scales: vec![1.0, 1.1],
                    max_intermediate: 2,
                },
                payload == "d12:prune",
            ),
            "d12:boost0" => (
                GridConfig {
                    max_boost: 0,
                    freq_scales: vec![1.0],
                    max_intermediate: 2,
                },
                false,
            ),
            other => return Err(format!("unknown test job '{other}'")),
        };
        let spec = benchmarks::d12_auto();
        let vi = partition::logical_partition(&spec, 4).unwrap();
        let cfg = SynthesisConfig {
            parallel: false,
            ..SynthesisConfig::default()
        };
        let grid = SweepGrid::build(&spec, &vi, &cfg, &grid_cfg);
        let desc = GridDescriptor::for_grid(&grid, spec.name(), "logical:4", cfg.seed);
        Ok(ResolvedJob {
            spec,
            vi,
            cfg,
            grid,
            desc,
            prune,
        })
    }
}

/// The unsharded reference bytes for a payload.
fn reference(payload: &str) -> String {
    let job = BenchResolver.resolve(payload).unwrap();
    let run = if job.prune {
        run_shard_pruned(&job.spec, &job.vi, &job.grid, Shard::full(), &job.cfg)
    } else {
        run_shard(&job.spec, &job.vi, &job.grid, Shard::full(), &job.cfg)
    };
    frontier_json(&job.desc, &run)
}

fn config() -> FleetConfig {
    FleetConfig {
        lease_chunk: 16,
        checkpoint_every: 4,
        poll_ms: 10,
        ..FleetConfig::default()
    }
}

#[test]
fn any_worker_count_reproduces_the_unsharded_frontier_bytes() {
    let want = reference("d12");
    for workers in [1usize, 2, 4] {
        let handle = start_coordinator("127.0.0.1:0", Arc::new(BenchResolver), config()).unwrap();
        let pool = spawn_local_workers(
            handle.addr(),
            Arc::new(BenchResolver),
            workers,
            WorkerOpts::default(),
        );
        let got = handle.submit("d12").unwrap();
        assert_eq!(got, want, "fleet with {workers} worker(s) must be exact");
        handle.shutdown();
        for w in pool {
            let stats = w.join().unwrap().unwrap();
            assert_eq!(stats.abandoned, 0, "no lease churn in a healthy fleet");
        }
    }
}

#[test]
fn concurrent_submissions_share_one_worker_pool() {
    let handle = start_coordinator("127.0.0.1:0", Arc::new(BenchResolver), config()).unwrap();
    let pool = spawn_local_workers(
        handle.addr(),
        Arc::new(BenchResolver),
        2,
        WorkerOpts::default(),
    );
    // Two different jobs, submitted over TCP from two threads at once.
    let addr = handle.addr();
    let submits: Vec<_> = ["d12:prune", "d12:boost0"]
        .into_iter()
        .map(|payload| thread::spawn(move || (payload, submit_remote(addr, payload).unwrap())))
        .collect();
    for s in submits {
        let (payload, got) = s.join().unwrap();
        assert_eq!(got, reference(payload), "job '{payload}' must be exact");
    }
    // A bad payload is rejected without disturbing the fleet.
    let err = submit_remote(addr, "d99").unwrap_err();
    assert_eq!(err, "unknown test job 'd99'");
    handle.shutdown();
    for w in pool {
        w.join().unwrap().unwrap();
    }
}

/// A hand-driven protocol peer for crash-schedule tests.
struct RawPeer {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawPeer {
    fn connect(addr: std::net::SocketAddr) -> RawPeer {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut peer = RawPeer {
            reader: BufReader::new(stream),
            writer,
        };
        peer.send(&Message::Hello(Role::Work));
        peer
    }

    fn send(&mut self, m: &Message) {
        let mut line = write_message(m);
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
    }

    fn recv(&mut self) -> Message {
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).unwrap() > 0, "hung up");
        parse_message(line.trim_end()).unwrap()
    }

    /// Requests until a lease arrives (the submission may still be
    /// resolving on the coordinator when we first ask).
    fn take_lease(&mut self) -> vi_noc_fleet::Lease {
        loop {
            self.send(&Message::Request);
            match self.recv() {
                Message::Lease(l) => return l,
                Message::Wait { poll_ms } => {
                    thread::sleep(Duration::from_millis(poll_ms));
                }
                other => panic!("expected a lease, got {other:?}"),
            }
        }
    }
}

/// Evaluates the first `deltas` deltas of `lease` for real, sending each
/// and reading its ack — a worker that does honest work and then dies.
fn stream_some_deltas(peer: &mut RawPeer, lease: &vi_noc_fleet::Lease, deltas: usize) {
    let job = BenchResolver.resolve(&lease.job).unwrap();
    let range = ChainRange::new(lease.start, lease.end).unwrap();
    let mut sent = 0usize;
    let mut emit = |d: vi_noc_sweep::RangeDelta| -> Result<(), String> {
        if sent == deltas {
            return Err("died".to_string());
        }
        let entries = d
            .entries
            .iter()
            .map(|(_, e)| vi_noc_sweep::json::parse(e).unwrap())
            .collect();
        peer.send(&Message::Delta(Delta {
            lease_id: lease.lease_id,
            grid_fp: lease.grid_fp.clone(),
            from: d.from,
            taken: d.taken,
            stats: d.stats,
            entries,
        }));
        match peer.recv() {
            Message::Ack { lease_id, done } => {
                assert_eq!(lease_id, lease.lease_id);
                assert_eq!(done, d.from + d.taken);
            }
            other => panic!("expected an ack, got {other:?}"),
        }
        sent += 1;
        Ok(())
    };
    let _ = run_range_deltas(
        &job.spec,
        &job.vi,
        &job.grid,
        range,
        &job.cfg,
        lease.from,
        lease.checkpoint_every,
        job.prune,
        &mut emit,
    );
}

#[test]
fn a_dropped_connection_mid_lease_is_reissued_from_the_watermark() {
    let want = reference("d12");
    let handle = start_coordinator("127.0.0.1:0", Arc::new(BenchResolver), config()).unwrap();
    let addr = handle.addr();

    // Submit from a side thread so leases exist before any worker runs.
    let submit = thread::spawn(move || submit_remote(addr, "d12").unwrap());

    // A doomed peer takes the first lease, streams two honest deltas, and
    // drops dead (socket close = SIGKILL's signature).
    let mut doomed = RawPeer::connect(addr);
    let lease = doomed.take_lease();
    assert_eq!(
        grid_fingerprint(&BenchResolver.resolve("d12").unwrap().desc.to_json()),
        lease.grid_fp
    );
    stream_some_deltas(&mut doomed, &lease, 2);
    drop(doomed);

    // A healthy pool finishes the job; the folded bytes must be exact.
    let pool = spawn_local_workers(addr, Arc::new(BenchResolver), 2, WorkerOpts::default());
    let got = submit.join().unwrap();
    assert_eq!(got, want, "kill + re-lease must be byte-exact");
    handle.shutdown();
    for w in pool {
        w.join().unwrap().unwrap();
    }
}

#[test]
fn a_hung_lease_expires_and_its_zombie_deltas_are_rejected() {
    let want = reference("d12");
    let cfg = FleetConfig {
        lease_timeout: Duration::from_millis(150),
        ..config()
    };
    let handle = start_coordinator("127.0.0.1:0", Arc::new(BenchResolver), cfg).unwrap();
    let addr = handle.addr();
    let submit = thread::spawn(move || submit_remote(addr, "d12").unwrap());

    // A zombie takes a lease, streams one delta, then hangs — connection
    // open, no progress — until the deadline passes.
    let mut zombie = RawPeer::connect(addr);
    let lease = zombie.take_lease();
    stream_some_deltas(&mut zombie, &lease, 1);
    thread::sleep(Duration::from_millis(300));

    // The pool picks the expired lease up from the acked watermark.
    let pool = spawn_local_workers(addr, Arc::new(BenchResolver), 2, WorkerOpts::default());
    let got = submit.join().unwrap();
    assert_eq!(got, want, "timeout + re-lease must be byte-exact");

    // The zombie wakes up and streams its next delta: rejected, folded
    // nowhere.
    zombie.send(&Message::Delta(Delta {
        lease_id: lease.lease_id,
        grid_fp: lease.grid_fp.clone(),
        from: lease.from,
        taken: 1,
        stats: Default::default(),
        entries: Vec::new(),
    }));
    match zombie.recv() {
        Message::Reject { message } => {
            assert_eq!(
                message,
                format!("delta: lease {} is superseded", lease.lease_id)
            );
        }
        other => panic!("expected a reject, got {other:?}"),
    }
    handle.shutdown();
    for w in pool {
        w.join().unwrap().unwrap();
    }
}
