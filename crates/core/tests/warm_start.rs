//! Warm-start equivalence: the sweep driver shares allocation contexts per
//! sweep index and warm-starts consecutive intermediate-count candidates
//! (see `crates/core/src/paths.rs`), which must be an *exact* optimization.
//! These tests pin the contract: the warm-started sweep — sequential and
//! parallel — produces the same `DesignSpace`, point for point and bit for
//! bit, as the cold per-candidate evaluation.

use proptest::prelude::*;
use vi_noc_core::{
    evaluate_candidate, synthesize, CandidateOutcome, DesignPoint, DesignSpace, SweepPlan,
    SynthesisConfig,
};
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};

/// Reference implementation: evaluate every candidate cold (fresh context,
/// no warm start, no Duplicate short-circuit) and fold the outcomes exactly
/// like `synthesize` does.
fn cold_space(spec: &SocSpec, vi: &ViAssignment, cfg: &SynthesisConfig) -> Option<DesignSpace> {
    let sweep = SweepPlan::build(spec, vi, cfg);
    let mut points = Vec::new();
    for candidate in sweep.candidates() {
        if let CandidateOutcome::Feasible(p) = evaluate_candidate(spec, vi, &sweep, candidate, cfg)
        {
            points.push(*p);
        }
    }
    if points.is_empty() {
        return None;
    }
    Some(DesignSpace {
        spec_name: spec.name().to_string(),
        island_count: vi.island_count(),
        points,
    })
}

fn assert_points_identical(label: &str, a: &[DesignPoint], b: &[DesignPoint]) {
    assert_eq!(a.len(), b.len(), "{label}: point count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.sweep_index, y.sweep_index, "{label}");
        assert_eq!(
            x.requested_intermediate, y.requested_intermediate,
            "{label}"
        );
        assert_eq!(x.switch_counts, y.switch_counts, "{label}");
        assert_eq!(x.topology, y.topology, "{label}");
        // Metrics are a pure function of the topology; bit-compare the
        // headline numbers anyway to catch any accidental state leak.
        assert_eq!(
            x.metrics.noc_dynamic_power().mw(),
            y.metrics.noc_dynamic_power().mw(),
            "{label}"
        );
        assert_eq!(
            x.metrics.avg_latency_cycles, y.metrics.avg_latency_cycles,
            "{label}"
        );
    }
}

fn check_equivalence(label: &str, spec: &SocSpec, vi: &ViAssignment) {
    let seq_cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let par_cfg = SynthesisConfig {
        parallel: true,
        ..SynthesisConfig::default()
    };
    let cold = cold_space(spec, vi, &seq_cfg);
    let warm_seq = synthesize(spec, vi, &seq_cfg).ok();
    let warm_par = synthesize(spec, vi, &par_cfg).ok();
    match (&cold, &warm_seq, &warm_par) {
        (Some(c), Some(s), Some(p)) => {
            assert_points_identical(&format!("{label} warm-seq vs cold"), &s.points, &c.points);
            assert_points_identical(&format!("{label} warm-par vs cold"), &p.points, &c.points);
        }
        (None, None, None) => {}
        _ => panic!(
            "{label}: feasibility disagrees (cold={}, seq={}, par={})",
            cold.is_some(),
            warm_seq.is_some(),
            warm_par.is_some()
        ),
    }
}

/// Golden: the full D26 sweep at every island count of the paper's x-axis.
#[test]
fn d26_full_sweep_is_warm_cold_identical() {
    let soc = benchmarks::d26_mobile();
    for k in [1usize, 2, 4, 6, 7, 26] {
        let vi = partition::logical_partition(&soc, k).unwrap();
        check_equivalence(&format!("d26@{k}"), &soc, &vi);
    }
}

/// Golden: the whole benchmark suite at its natural island counts.
#[test]
fn suite_at_natural_island_counts_is_warm_cold_identical() {
    for (soc, k) in benchmarks::suite() {
        let vi = partition::logical_partition(&soc, k).unwrap();
        check_equivalence(soc.name(), &soc, &vi);
    }
}

/// Golden: communication-based partitioning exercises different island
/// shapes (and more reserve retries) than the logical partition.
#[test]
fn communication_partitions_are_warm_cold_identical() {
    let soc = benchmarks::d26_mobile();
    for k in [2usize, 4, 6] {
        let vi = partition::communication_partition(&soc, k, 1).unwrap();
        check_equivalence(&format!("d26-comm@{k}"), &soc, &vi);
    }
}

/// Golden: the D36 communication partitions at 6–7 islands are the known
/// port-reserve-retry-heavy designs (sweep index 1 succeeds only via the
/// retry for every k_mid >= 1; see `paths::tests::
/// warm_started_retry_matches_cold_retry`), so this pins the warm-started
/// retry — seeded from the previous candidate's retry at a different
/// reserve — against the cold per-candidate evaluation, design space for
/// design space.
#[test]
fn retry_heavy_d36_partitions_are_warm_cold_identical() {
    let soc = benchmarks::d36_tablet();
    for k in [6usize, 7] {
        let vi = partition::communication_partition(&soc, k, 1).unwrap();
        check_equivalence(&format!("d36-comm@{k}"), &soc, &vi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: warm == cold == parallel on random synthetic SoCs and
    /// island counts (including infeasible-heavy corners).
    #[test]
    fn random_socs_are_warm_cold_identical(
        n_cores in 6usize..18,
        seed in 0u64..64,
        k in 1usize..6,
    ) {
        let spec = vi_noc_soc::generate_synthetic(&vi_noc_soc::SyntheticConfig {
            n_cores,
            seed,
            ..vi_noc_soc::SyntheticConfig::default()
        });
        let Ok(vi) = partition::communication_partition(&spec, k.min(spec.core_count()), seed)
        else {
            return Ok(());
        };
        check_equivalence(&format!("synthetic n={n_cores} seed={seed} k={k}"), &spec, &vi);
    }
}
