//! Property-based tests for the synthesis algorithm: every design point it
//! emits for random SoCs must satisfy every invariant the verifier knows.

use proptest::prelude::*;
use vi_noc_core::{synthesize, verify_design, SynthesisConfig};
use vi_noc_soc::{generate_synthetic, partition, SyntheticConfig};

proptest! {
    // Synthesis is comparatively expensive; keep the case count modest —
    // each case still exercises the full pipeline end to end.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every point of every design space verifies clean: shutdown-legal
    /// routes, capacities, switch sizes, latency constraints.
    #[test]
    fn all_points_verify_clean(
        n_cores in 8usize..28,
        seed in 0u64..64,
        k in 2usize..5,
    ) {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        });
        let k = k.min(spec.core_count());
        let Ok(vi) = partition::communication_partition(&spec, k, seed) else {
            return Ok(());
        };
        let cfg = SynthesisConfig::default();
        let Ok(space) = synthesize(&spec, &vi, &cfg) else {
            // Random instances may be genuinely infeasible; that is a
            // correct *result*, not a bug.
            return Ok(());
        };
        prop_assert!(!space.points.is_empty());
        for point in &space.points {
            let violations = verify_design(&spec, &vi, &point.topology, &cfg);
            prop_assert!(
                violations.is_empty(),
                "n={n_cores} seed={seed} k={k} sweep={}: {violations:?}",
                point.sweep_index
            );
            // Metrics sanity.
            prop_assert!(point.metrics.noc_dynamic_power().mw() > 0.0);
            prop_assert!(point.metrics.avg_latency_cycles >= 3.0);
            prop_assert!(point.metrics.area.mm2() > 0.0);
            prop_assert_eq!(
                point.topology.routes().count(),
                spec.flow_count()
            );
        }
    }

    /// Synthesis is deterministic: same inputs, same design space.
    #[test]
    fn synthesis_deterministic(seed in 0u64..32) {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores: 14,
            seed,
            ..SyntheticConfig::default()
        });
        let Ok(vi) = partition::communication_partition(&spec, 3, seed) else {
            return Ok(());
        };
        let cfg = SynthesisConfig::default();
        let a = synthesize(&spec, &vi, &cfg);
        let b = synthesize(&spec, &vi, &cfg);
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                prop_assert_eq!(sa.points.len(), sb.points.len());
                for (pa, pb) in sa.points.iter().zip(&sb.points) {
                    prop_assert_eq!(&pa.topology, &pb.topology);
                    prop_assert_eq!(
                        pa.metrics.noc_dynamic_power().mw(),
                        pb.metrics.noc_dynamic_power().mw()
                    );
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one run feasible, the other not"),
        }
    }

    /// The single-island design space always exists for generated SoCs (the
    /// conventional-NoC reference the paper compares against).
    #[test]
    fn single_island_always_feasible(n_cores in 8usize..32, seed in 0u64..64) {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        });
        let vi = partition::logical_partition(&spec, 1).unwrap();
        let space = synthesize(&spec, &vi, &SynthesisConfig::default());
        prop_assert!(space.is_ok(), "n={n_cores} seed={seed}: {:?}", space.err());
    }
}
