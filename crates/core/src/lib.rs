//! VI-aware NoC topology synthesis — the primary contribution of
//! *Seiculescu et al., "NoC Topology Synthesis for Supporting Shutdown of
//! Voltage Islands in SoCs", DAC 2009*.
//!
//! Given a [`vi_noc_soc::SocSpec`] and a core→voltage-island assignment
//! ([`vi_noc_soc::ViAssignment`]), [`synthesize`] explores custom NoC
//! topologies that
//!
//! 1. connect every core only to switches **in its own island** (via NIs),
//! 2. route every inter-island flow either **directly** from a switch in the
//!    source island to a switch in the destination island, or through a
//!    switch in an optional always-on **intermediate NoC island**,
//! 3. meet every flow's bandwidth and zero-load latency constraint,
//!
//! so that power-gating any shutdown-capable island can never sever traffic
//! between the remaining islands. The returned [`DesignSpace`] holds every
//! feasible design point (switch counts per island, core→switch assignment,
//! links, routes, power/area/latency metrics) plus the Pareto front that the
//! paper's designer would pick from.
//!
//! The algorithm follows the paper's Algorithm 1: per-island operating
//! frequency and maximum switch size (step 1), minimum switch counts
//! (step 2), a sweep over switch counts using min-cut partitioning of the
//! island's VI communication graph (steps 4–11), a sweep over
//! intermediate-island switch counts with bandwidth-ordered min-cost path
//! allocation (steps 14–17), and floorplan-based wire power/delay
//! realization ([`realize_on_floorplan`]).
//!
//! The driver is staged: [`SweepPlan`] enumerates every candidate design
//! (switch-count vector × intermediate-switch count) up front,
//! [`evaluate_candidate`] evaluates one candidate as a pure function, and
//! [`synthesize`] fans the candidates out over rayon when
//! [`SynthesisConfig::parallel`] is set. Parallel and sequential execution
//! return identical design spaces.
//!
//! # Example
//!
//! ```
//! use vi_noc_core::{synthesize, SynthesisConfig};
//! use vi_noc_soc::{benchmarks, partition};
//!
//! let soc = benchmarks::d12_auto();
//! let vi = partition::logical_partition(&soc, 4)?;
//! let space = synthesize(&soc, &vi, &SynthesisConfig::default())?;
//! let best = space.min_power_point().expect("feasible design exists");
//! assert!(best.metrics.noc_dynamic_power().mw() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod assign;
mod baseline;
mod config;
mod design_space;
mod error;
mod export;
mod features;
mod flows;
mod metrics;
pub mod pareto;
mod paths;
mod power_gating;
mod realize;
mod synthesis;
mod topology;
mod vcg;
mod verify;

pub use assign::{island_switch_assignment, switch_counts_for_sweep, SwitchAssignment};
pub use baseline::{central_island_baseline, synthesize_oblivious, ObliviousDesign};
pub use config::SynthesisConfig;
pub use design_space::{DesignPoint, DesignSpace};
pub use error::SynthesisError;
pub use export::{
    design_point_json, design_space_json, json_number, json_string, json_usize_array, metrics_json,
    routes_table, to_dot, topology_json, topology_summary,
};
pub use features::{flow_fingerprint, fnv1a64, island_signature};
pub use flows::{inter_switch_flows, InterSwitchFlow};
pub use metrics::{compute_metrics, DesignMetrics, PowerBreakdown};
pub use pareto::{ParetoFold, ParetoKey};
pub use power_gating::{scenario_power, standard_scenarios, ScenarioReport, UsageScenario};
pub use realize::{realize_on_floorplan, RealizedDesign};
pub use synthesis::{
    evaluate_candidate, evaluate_candidate_chain, evaluate_candidate_chain_with_certificate,
    synthesize, CandidateOutcome, SlackCertificate, SweepCandidate, SweepPlan,
};
pub use topology::{
    LinkId, LinkKind, Route, Switch, SwitchId, TopoLink, Topology, TopologyBuilder,
};
pub use vcg::{build_vcg, Vcg};
pub use verify::{verify_design, verify_shutdown_safety, Violation};

/// Per-island frequency plan (step 1 of Algorithm 1).
pub use config::FrequencyPlan;
