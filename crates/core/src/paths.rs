//! Min-cost path allocation with shutdown-legal link opening
//! (Algorithm 1, steps 14–17).
//!
//! Flows are routed in decreasing bandwidth order. For each flow a Dijkstra
//! search runs over the *candidate* switch graph; the edge filter enforces
//! the paper's shutdown rule — a flow from island `a` to island `b` may only
//! touch switches of `a`, `b` or the always-on intermediate island, moving
//! monotonically `a → (mid →)* b` — and the edge cost implements the paper's
//! "linear combination of the power consumption increase in opening a new
//! link or reusing an existing link and the latency constraint of the flow".
//!
//! # Incremental evaluation
//!
//! One sweep index `i` spawns `max_intermediate_switches + 1` candidates
//! `(i, k)` that share everything except the number of active intermediate
//! switches. The expensive shared prefix — the O(S²) candidate edge set, the
//! power models, the bandwidth-ordered flow list, the per-island idle-power
//! deltas — is computed once per sweep index in an [`AllocContext`] (built
//! with the *maximum* intermediate count; smaller candidates simply never
//! admit edges touching the extra switches, which provably cannot change any
//! search result). On top of that, [`allocate_paths_warm`] warm-starts
//! candidate `(i, k+1)` from `(i, k)`'s recorded allocation: while the two
//! runs' committed states are identical, flows whose legal edge set cannot
//! contain the new intermediate switches (intra-island flows) replay their
//! recorded path without searching, and every other flow re-runs exactly the
//! search a cold start would run — so the produced topology is bit-identical
//! to a cold start by construction.
//!
//! The port-reserve retry (see [`AllocState::reserve`]) is warm-started the
//! same way, from the *previous candidate's retry* record, with one extra
//! condition: consecutive retries run at different reserves (`k` and
//! `k + 1`), and the reserve enters the port-admissibility check of every
//! non-mid edge — including intra-island ones. A recorded intra-island path
//! is therefore only replayed when every switch of the flow's island
//! answers both admissibility questions (room for one more output port?
//! one more input port?) identically at the two reserves, given the — still
//! identical — committed state ([`reserve_invariant`]). The edge costs never
//! read the reserve, so equal admissibility means an identical search
//! result, and the replay stays exact.

use crate::assign::SwitchAssignment;
use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::flows::{inter_switch_flows, InterSwitchFlow};
use crate::topology::{LinkKind, Route, Switch, SwitchId, TopoLink, Topology};
use vi_noc_graph::{dijkstra_filtered_scratch, DiGraph, EdgeId, NodeId, SearchScratch};
use vi_noc_models::{Bandwidth, BisyncFifoModel, Frequency, LinkModel, Power, SwitchModel};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Candidate (potential) link between two switches.
#[derive(Debug, Clone)]
struct Cand {
    from: SwitchId,
    to: SwitchId,
    from_isl: usize,
    to_isl: usize,
    crossing: bool,
    length_mm: f64,
    capacity: Bandwidth,
}

/// Everything shared by every candidate `(i, k)` of one sweep index `i`:
/// the candidate switch graph (built once with `k_mid_max` intermediate
/// switches), the instantiated power models, the bandwidth-ordered flow
/// list, and the precomputed per-island port-growth idle-power deltas that
/// the hot search loop previously recomputed per edge relaxation.
pub(crate) struct AllocContext {
    cand_graph: DiGraph<SwitchId, Cand>,
    /// Topology skeleton holding the real-island switches (no intermediate
    /// switches, links or routes); cloned per candidate.
    base_topo: Topology,
    flows: Vec<InterSwitchFlow>,
    island_freq: Vec<Frequency>,
    link_model: LinkModel,
    fifo_model: BisyncFifoModel,
    nominal_switch: SwitchModel,
    /// Idle-power delta of growing the nominal 4×4 switch by one port, per
    /// extended island (i.e. at that island's frequency). Indexed by
    /// `island_ext`; the last entry is the intermediate island.
    port_growth: Vec<Power>,
    /// Number of real-island switches (intermediate switch `k` is graph
    /// node / switch id `n_real + k`).
    n_real: usize,
    /// Intermediate switches the candidate graph was built with.
    k_mid_max: usize,
    /// Extended island index of the intermediate island.
    mid: usize,
    min_lat_global: f64,
    /// Per-switch size budget, including all `k_mid_max` mid switches.
    max_size: Vec<usize>,
    /// Initial per-switch port usage (attached cores; both directions).
    core_ports: Vec<usize>,
    /// Switch indices of each real island (mid switches excluded), for the
    /// reserve-invariance replay check of intra-island flows.
    switches_of_island: Vec<Vec<usize>>,
}

impl AllocContext {
    /// Builds the shared context for one sweep index.
    ///
    /// Fails with the same human-readable reason a cold allocation would if
    /// a switch's attached cores alone exceed its size budget.
    pub(crate) fn build(
        spec: &SocSpec,
        vi: &ViAssignment,
        plan: &FrequencyPlan,
        assignment: &SwitchAssignment,
        k_mid_max: usize,
        cfg: &SynthesisConfig,
    ) -> Result<Self, String> {
        let n_islands = vi.island_count();
        let mid = n_islands;

        let mut island_freq: Vec<Frequency> = (0..n_islands).map(|j| plan.frequency(j)).collect();
        island_freq.push(plan.intermediate_frequency());

        let mut base_topo = Topology::new(spec, n_islands, island_freq.clone());
        for (j, groups) in assignment.groups.iter().enumerate() {
            for (g, cores) in groups.iter().enumerate() {
                base_topo.add_switch(Switch {
                    name: format!("sw{j}.{g}"),
                    island_ext: j,
                    cores: cores.clone(),
                });
            }
        }
        let n_real = base_topo.switches().len();
        let n_switches = n_real + k_mid_max;

        // Extended island of each graph node (mid switches come last).
        let island_of = |s: usize| -> usize {
            if s < n_real {
                base_topo.switch(SwitchId(s)).island_ext
            } else {
                mid
            }
        };

        // Pre-check: core counts alone must fit the switch size budgets
        // (intermediate switches carry no cores and can never fail this).
        for s in 0..n_real {
            let cores = base_topo.switch(SwitchId(s)).cores.len();
            let max = plan.max_switch_size_ext(island_of(s));
            if cores > max {
                return Err(format!(
                    "switch {} holds {cores} cores but max size is {max}",
                    base_topo.switch(SwitchId(s)).name,
                ));
            }
        }

        // --- Candidate graph over switches. ------------------------------
        // Node i of the candidate graph is switch i; edges are all potential
        // links permitted by the architecture (per-flow legality is filtered
        // during the search). Built once per sweep index with the largest
        // intermediate count; candidates with fewer active mid switches
        // filter the extra nodes out in the admissibility check.
        let link_model = LinkModel::new(&cfg.technology, cfg.link_width_bits);
        let fifo_model = BisyncFifoModel::new(&cfg.technology, cfg.link_width_bits);
        let nominal_switch = SwitchModel::new(&cfg.technology, 4, 4, cfg.link_width_bits);

        let mut cand_graph: DiGraph<SwitchId, Cand> =
            DiGraph::with_capacity(n_switches, n_switches * n_switches.saturating_sub(1));
        for s in 0..n_switches {
            cand_graph.add_node(SwitchId(s));
        }
        for u in 0..n_switches {
            for v in 0..n_switches {
                if u == v {
                    continue;
                }
                let iu = island_of(u);
                let iv = island_of(v);
                let crossing = iu != iv;
                let length_mm = if !crossing {
                    cfg.est_intra_link_mm
                } else if iu == mid || iv == mid {
                    cfg.est_mid_link_mm
                } else {
                    cfg.est_inter_link_mm
                };
                let f = Frequency::from_hz(island_freq[iu].hz().min(island_freq[iv].hz()));
                let capacity = link_model.capacity(f);
                cand_graph.add_edge(
                    NodeId::from_index(u),
                    NodeId::from_index(v),
                    Cand {
                        from: SwitchId(u),
                        to: SwitchId(v),
                        from_isl: iu,
                        to_isl: iv,
                        crossing,
                        length_mm,
                        capacity,
                    },
                );
            }
        }

        // The per-port idle-power delta the link-opening cost charges used
        // to instantiate two `SwitchModel`s per edge relaxation; precompute
        // it per island as nominal-grown-by-one-port minus nominal.
        let grown = SwitchModel::new(&cfg.technology, 4, 5, cfg.link_width_bits);
        let port_growth: Vec<Power> = island_freq
            .iter()
            .map(|&f| grown.idle_power(f) - nominal_switch.idle_power(f))
            .collect();

        let max_size: Vec<usize> = (0..n_switches)
            .map(|s| plan.max_switch_size_ext(island_of(s)))
            .collect();
        let core_ports: Vec<usize> = (0..n_switches)
            .map(|s| {
                if s < n_real {
                    base_topo.switch(SwitchId(s)).cores.len()
                } else {
                    0
                }
            })
            .collect();

        let min_lat_global = spec.min_latency_cycles().max(1) as f64;
        let flows = inter_switch_flows(spec, &base_topo);

        let mut switches_of_island: Vec<Vec<usize>> = vec![Vec::new(); n_islands];
        for s in 0..n_real {
            switches_of_island[island_of(s)].push(s);
        }

        Ok(AllocContext {
            cand_graph,
            base_topo,
            flows,
            island_freq,
            link_model,
            fifo_model,
            nominal_switch,
            port_growth,
            n_real,
            k_mid_max,
            mid,
            min_lat_global,
            max_size,
            core_ports,
            switches_of_island,
        })
    }
}

/// Mutable allocation state shared by the cost/filter closures.
struct AllocState {
    /// Open link id per candidate edge index (parallel to the cand graph).
    open: Vec<Option<crate::topology::LinkId>>,
    /// Load per candidate edge (mirrors the topology's link loads).
    load: Vec<Bandwidth>,
    in_ports: Vec<usize>,
    out_ports: Vec<usize>,
    max_size: Vec<usize>,
    /// Ports per switch held back for links to/from the intermediate
    /// island. Greedy bandwidth-ordered allocation can otherwise exhaust a
    /// hub switch with direct links, stranding later flows whose only legal
    /// route is indirect (they would need a mid link into the same switch).
    /// Zero on the first attempt; the synthesis driver retries failed design
    /// points with `reserve = k_mid`.
    reserve: usize,
}

impl AllocState {
    /// Can this candidate edge accept `bw` more bandwidth (opening it if
    /// necessary without blowing a switch size budget)?
    fn admits(&self, e: usize, cand: &Cand, bw: Bandwidth, mid: usize) -> bool {
        // Tiny relative slack so a flow that exactly fills the link is not
        // rejected by floating-point noise.
        if (self.load[e] + bw).bytes_per_s() > cand.capacity.bytes_per_s() * (1.0 + 1e-9) {
            return false;
        }
        if self.open[e].is_some() {
            return true;
        }
        let u = cand.from.index();
        let v = cand.to.index();
        // Links touching the intermediate island may use reserved ports.
        let is_mid_link = cand.from_isl == mid || cand.to_isl == mid;
        let reserve = if is_mid_link { 0 } else { self.reserve };
        let u_size = self.in_ports[u].max(self.out_ports[u] + 1);
        let v_size = (self.in_ports[v] + 1).max(self.out_ports[v]);
        u_size + reserve <= self.max_size[u] && v_size + reserve <= self.max_size[v]
    }
}

/// One flow's committed path, recorded for warm-starting the next
/// intermediate-count candidate of the same sweep index.
#[derive(Debug, Clone, PartialEq)]
enum FlowPath {
    /// Source and destination share a switch; no search ever runs.
    OwnSwitch,
    /// Path as candidate-graph edge ids (stable across the sweep index
    /// because the graph is shared).
    Edges(Vec<EdgeId>),
}

/// Committed paths of one allocation attempt, aligned with
/// [`AllocContext::flows`]. Holds the successful prefix even when the
/// attempt failed partway — the prefix is still a valid warm-start seed.
#[derive(Debug, Default)]
pub(crate) struct AllocRecord {
    paths: Vec<FlowPath>,
    /// Port reserve the recorded attempt ran at. Replaying a recorded path
    /// under a *different* reserve additionally requires
    /// [`reserve_invariant`] to hold for the flow's island.
    reserve: usize,
}

/// Both attempts' records of one candidate evaluation — the warm-start seed
/// for the next candidate of the chain. The reserve-0 attempt and the
/// port-reserve retry commit different paths, so each seeds only its own
/// successor.
#[derive(Debug, Default)]
pub(crate) struct CandidateRecord {
    /// The reserve-0 attempt (always runs).
    main: AllocRecord,
    /// The port-reserve retry; present only when the reserve-0 attempt
    /// failed and the retry ran (its failed prefix is kept too).
    retry: Option<AllocRecord>,
}

/// `true` when every switch in `switches` answers the two
/// port-admissibility questions of [`AllocState::admits`] — room to grow by
/// one output port, room to grow by one input port — identically at port
/// reserves `r_a` and `r_b`, given the current state. Under that condition
/// an intra-island search's admissible edge set (and the costs never read
/// the reserve) is the same at both reserves, so its result is too.
fn reserve_invariant(state: &AllocState, switches: &[usize], r_a: usize, r_b: usize) -> bool {
    switches.iter().all(|&u| {
        let grow_out = state.in_ports[u].max(state.out_ports[u] + 1);
        let grow_in = (state.in_ports[u] + 1).max(state.out_ports[u]);
        let max = state.max_size[u];
        (grow_out + r_a <= max) == (grow_out + r_b <= max)
            && (grow_in + r_a <= max) == (grow_in + r_b <= max)
    })
}

/// A successful allocation plus how it was obtained.
///
/// Beyond the Duplicate short-circuit, the chain evaluator also distills a
/// [`crate::SlackCertificate`] from each allocation: `via_retry` poisons
/// the certificate outright (retry admissibility is count-dependent, so
/// nothing about port slack is provable), and the topology's routes and
/// port counts supply the per-island slack conditions.
pub(crate) struct Allocation {
    pub(crate) topology: Topology,
    /// `true` when the reserve-0 attempt failed and the port-reserve retry
    /// produced the topology. The sweep driver's Duplicate short-circuit
    /// (see [`Allocation::has_spare_intermediate`]) must not fire then,
    /// because the retry's admissibility depends on the requested
    /// intermediate count.
    pub(crate) via_retry: bool,
}

impl Allocation {
    /// `true` when the reserve-0 allocation left at least one requested
    /// intermediate switch unused.
    ///
    /// An unused intermediate switch is an *interchangeable twin* of the
    /// extra switch the next candidate `(i, k+1)` would add: identical
    /// island, frequency, ports, loads and edge costs, with a lower node
    /// id. A Dijkstra relaxation through the new switch can therefore
    /// never strictly improve a distance the twin does not already
    /// provide, and the tie-breaking (smaller node id settles first,
    /// strict-`<` relaxation) always keeps the twin's paths — so every
    /// higher-count candidate of the sweep index reproduces this exact
    /// topology and is a [`crate::CandidateOutcome::Duplicate`] without
    /// running.
    pub(crate) fn has_spare_intermediate(&self, requested: usize) -> bool {
        !self.via_retry && self.topology.intermediate_switch_count() < requested
    }
}

/// Zero-load latency of a route given its switch count and crossings.
pub(crate) fn route_latency(switches: usize, crossings: u32, cfg: &SynthesisConfig) -> u32 {
    let links = switches as u32 + 1; // NI->s1, inter-switch links, sm->NI
    switches as u32 * cfg.switch_delay_cycles
        + links * cfg.link_delay_cycles
        + crossings * BisyncFifoModel::CROSSING_LATENCY_CYCLES
}

/// Allocates paths for all flows, opening links as needed.
///
/// Returns the finished topology (unused intermediate switches pruned), or a
/// human-readable reason why the design point is infeasible.
///
/// Cold-start convenience wrapper over [`AllocContext::build`] +
/// [`allocate_paths_warm`]; the sweep driver builds the context once per
/// sweep index and warm-starts consecutive candidates instead.
pub(crate) fn allocate_paths(
    spec: &SocSpec,
    vi: &ViAssignment,
    plan: &FrequencyPlan,
    assignment: &SwitchAssignment,
    k_mid: usize,
    cfg: &SynthesisConfig,
) -> Result<Topology, String> {
    let ctx = AllocContext::build(spec, vi, plan, assignment, k_mid, cfg)?;
    let mut scratch = SearchScratch::new();
    allocate_paths_warm(&ctx, k_mid, cfg, &mut scratch, None, None).map(|a| a.topology)
}

/// Allocates paths for the candidate with `k_mid` active intermediate
/// switches, optionally warm-started from the previous candidate's
/// [`CandidateRecord`] and recording this candidate's attempts into
/// `record`.
///
/// The result is bit-identical to a cold start: warm-starting only skips
/// searches whose outcome is provably unchanged (see the module docs). On
/// reserve-0 infeasibility the port-reserve retry runs, itself warm-started
/// from the previous candidate's retry record when one exists — the
/// differing reserves are handled by the [`reserve_invariant`] replay
/// guard.
pub(crate) fn allocate_paths_warm(
    ctx: &AllocContext,
    k_mid: usize,
    cfg: &SynthesisConfig,
    scratch: &mut SearchScratch,
    prev: Option<&CandidateRecord>,
    mut record: Option<&mut CandidateRecord>,
) -> Result<Allocation, String> {
    assert!(
        k_mid <= ctx.k_mid_max,
        "candidate requests {k_mid} intermediate switches but the context \
         was built with {}",
        ctx.k_mid_max
    );
    let main = try_allocate(
        ctx,
        k_mid,
        0,
        cfg,
        scratch,
        prev.map(|p| &p.main),
        record.as_deref_mut().map(|r| &mut r.main),
    );
    match main {
        Ok(topology) => {
            if let Some(r) = record {
                r.retry = None;
            }
            Ok(Allocation {
                topology,
                via_retry: false,
            })
        }
        // Greedy direct-link opening may have stranded later flows on a
        // port-exhausted hub switch; retry holding ports back for
        // intermediate-island links (see `AllocState::reserve`).
        Err(first) if k_mid > 0 => {
            let prev_retry = prev.and_then(|p| p.retry.as_ref());
            let retry_rec = record.map(|r| r.retry.insert(AllocRecord::default()));
            try_allocate(ctx, k_mid, k_mid, cfg, scratch, prev_retry, retry_rec)
                .map(|topology| Allocation {
                    topology,
                    via_retry: true,
                })
                .map_err(|_| first)
        }
        Err(e) => {
            if let Some(r) = record {
                r.retry = None;
            }
            Err(e)
        }
    }
}

/// One allocation attempt at a fixed port reserve.
fn try_allocate(
    ctx: &AllocContext,
    k_mid: usize,
    reserve: usize,
    cfg: &SynthesisConfig,
    scratch: &mut SearchScratch,
    prev: Option<&AllocRecord>,
    mut record: Option<&mut AllocRecord>,
) -> Result<Topology, String> {
    let mut topo = ctx.base_topo.clone();
    for k in 0..k_mid {
        topo.add_switch(Switch {
            name: format!("mid.{k}"),
            island_ext: ctx.mid,
            cores: Vec::new(),
        });
    }

    let mut state = AllocState {
        open: vec![None; ctx.cand_graph.edge_count()],
        load: vec![Bandwidth::ZERO; ctx.cand_graph.edge_count()],
        in_ports: ctx.core_ports.clone(),
        out_ports: ctx.core_ports.clone(),
        max_size: ctx.max_size.clone(),
        reserve,
    };
    if let Some(r) = record.as_deref_mut() {
        r.paths.clear();
        r.reserve = reserve;
    }

    // Warm-start bookkeeping: while `diverged` is false, every flow
    // committed so far committed exactly the path the recorded run did, so
    // the two runs' states are identical and recorded intra-island paths
    // can be replayed without searching. When the recorded run used a
    // different port reserve (consecutive retries), replay additionally
    // needs the per-island reserve-invariance guard below.
    let prev_reserve = prev.map_or(reserve, |r| r.reserve);
    let mut diverged = prev.is_none();
    let mut path_buf: Vec<EdgeId> = Vec::new();

    for (t, isf) in ctx.flows.iter().enumerate() {
        if isf.src_switch == isf.dst_switch {
            let latency = route_latency(1, 0, cfg);
            if latency > isf.max_latency_cycles {
                return Err(format!(
                    "flow {} latency {latency} exceeds constraint {} on its own switch",
                    isf.flow, isf.max_latency_cycles
                ));
            }
            topo.set_route(Route {
                flow: isf.flow,
                switches: vec![isf.src_switch],
                latency_cycles: latency,
                crossings: 0,
            });
            if let Some(r) = record.as_deref_mut() {
                r.paths.push(FlowPath::OwnSwitch);
            }
            continue;
        }

        let prev_path = if diverged {
            None
        } else {
            let p = prev.and_then(|r| r.paths.get(t));
            if p.is_none() {
                // The recorded run ended here (it failed at this flow);
                // beyond this point its state is unknown.
                diverged = true;
            }
            p
        };

        let replayable = matches!(prev_path, Some(FlowPath::Edges(_)))
            && isf.src_island == isf.dst_island
            && (prev_reserve == reserve
                || reserve_invariant(
                    &state,
                    &ctx.switches_of_island[isf.src_island],
                    prev_reserve,
                    reserve,
                ));
        if replayable {
            // Intra-island searches admit only edges inside the source
            // island, which the intermediate-count change cannot touch —
            // and any reserve difference is screened off by the invariance
            // guard above. With identical state the search would return
            // the recorded path verbatim, so skip it.
            let Some(FlowPath::Edges(edges)) = prev_path else {
                unreachable!()
            };
            path_buf.clear();
            path_buf.extend_from_slice(edges);
        } else {
            find_path(ctx, &state, isf, k_mid, cfg, scratch, &mut path_buf)?;
            if let Some(FlowPath::Edges(edges)) = prev_path {
                if path_buf != *edges {
                    diverged = true;
                }
            } else {
                debug_assert!(
                    prev_path.is_none(),
                    "same-switch classification is state-independent"
                );
            }
        }

        // Commit the path.
        let mut switches = vec![isf.src_switch];
        let mut crossings = 0u32;
        for &e in &path_buf {
            let cand = ctx.cand_graph.edge(e);
            if cand.crossing {
                crossings += 1;
            }
            let ei = e.index();
            if state.open[ei].is_none() {
                let kind = if !cand.crossing {
                    LinkKind::Intra
                } else if cand.from_isl == ctx.mid || cand.to_isl == ctx.mid {
                    LinkKind::Intermediate
                } else {
                    LinkKind::InterDirect
                };
                let lid = topo.open_link(TopoLink {
                    from: cand.from,
                    to: cand.to,
                    capacity: cand.capacity,
                    load: Bandwidth::ZERO,
                    kind,
                    length_mm: cand.length_mm,
                });
                state.open[ei] = Some(lid);
                state.out_ports[cand.from.index()] += 1;
                state.in_ports[cand.to.index()] += 1;
            }
            let lid = state.open[ei].expect("just opened");
            topo.add_load(lid, isf.bandwidth);
            state.load[ei] += isf.bandwidth;
            switches.push(cand.to);
        }
        let latency = route_latency(switches.len(), crossings, cfg);
        if latency > isf.max_latency_cycles {
            return Err(format!(
                "flow {} routed latency {latency} exceeds constraint {}",
                isf.flow, isf.max_latency_cycles
            ));
        }
        topo.set_route(Route {
            flow: isf.flow,
            switches,
            latency_cycles: latency,
            crossings,
        });
        if let Some(r) = record.as_deref_mut() {
            r.paths.push(FlowPath::Edges(path_buf.clone()));
        }
    }

    topo.prune_unused_intermediate();
    Ok(topo)
}

/// Finds the path for one flow: first min-cost, then (if the latency
/// constraint is violated) min-latency as a fallback. Writes the edge
/// sequence into `out`.
fn find_path(
    ctx: &AllocContext,
    state: &AllocState,
    isf: &InterSwitchFlow,
    k_mid: usize,
    cfg: &SynthesisConfig,
    scratch: &mut SearchScratch,
    out: &mut Vec<EdgeId>,
) -> Result<(), String> {
    let src = NodeId::from_index(isf.src_switch.index());
    let dst = NodeId::from_index(isf.dst_switch.index());
    let bw = isf.bandwidth;
    let (src_isl, dst_isl) = (isf.src_island, isf.dst_island);
    let mid = ctx.mid;
    let n_active = ctx.n_real + k_mid;

    let admit = |e: EdgeId, cand: &Cand| -> bool {
        // Intermediate switches beyond this candidate's count exist in the
        // shared graph but are inactive. The search only ever relaxes edges
        // out of reachable (hence active) nodes, so screening the target is
        // enough to keep it inside the active subgraph.
        if cand.to.index() >= n_active {
            return false;
        }
        let legal = if src_isl == dst_isl {
            // Intra-island flows never leave their island.
            cand.from_isl == src_isl && cand.to_isl == src_isl
        } else {
            let (a, b) = (cand.from_isl, cand.to_isl);
            (a == b && (a == src_isl || a == dst_isl))
                || (a == src_isl && b == dst_isl)
                || (a == src_isl && b == mid)
                || (a == mid && b == dst_isl)
                || (a == mid && b == mid)
        };
        legal && state.admits(e.index(), cand, bw, mid)
    };

    let urgency = ctx.min_lat_global / isf.max_latency_cycles.max(1) as f64;
    let power_cost = |e: EdgeId, cand: &Cand| -> f64 {
        // Marginal traffic power on this hop: wire + downstream switch
        // datapath + converter, all for this flow's bandwidth.
        let mut p =
            ctx.link_model.traffic_power(cand.length_mm, bw) + ctx.nominal_switch.traffic_power(bw);
        if cand.crossing {
            p += ctx.fifo_model.power(Frequency::ZERO, Frequency::ZERO, bw);
        }
        // Opening a new link pays its standing (idle/clock) power too.
        let mut scarcity = 0.0;
        if state.open[e.index()].is_none() {
            let fu = ctx.island_freq[cand.from_isl];
            let fv = ctx.island_freq[cand.to_isl];
            if cand.crossing {
                p += ctx.fifo_model.power(fu, fv, Bandwidth::ZERO);
            }
            // One extra output port at `from`, one extra input at `to`:
            // approximate with the nominal switch's per-port idle delta,
            // precomputed per island in the context.
            p += ctx.port_growth[cand.from_isl];
            p += ctx.port_growth[cand.to_isl];
            // Port scarcity: consuming one of the endpoints' last free
            // ports is exponentially discouraged so hub switches keep
            // ports for later flows (which may have no alternative).
            let u = cand.from.index();
            let v = cand.to.index();
            let rem_out = state.max_size[u].saturating_sub(state.out_ports[u]).max(1);
            let rem_in = state.max_size[v].saturating_sub(state.in_ports[v]).max(1);
            scarcity = cfg.cost_port_scarcity
                * (f64::powi(2.0, -(rem_out as i32 - 1)) + f64::powi(2.0, -(rem_in as i32 - 1)));
        }
        p.mw() + scarcity
    };
    let hop_latency = |cand: &Cand| -> f64 {
        (cfg.link_delay_cycles + cfg.switch_delay_cycles) as f64
            + if cand.crossing {
                BisyncFifoModel::CROSSING_LATENCY_CYCLES as f64
            } else {
                0.0
            }
    };

    // Pass 1: paper cost = linear combination of power increase and latency.
    dijkstra_filtered_scratch(
        &ctx.cand_graph,
        src,
        Some(dst),
        |e, cand| {
            cfg.cost_power_weight * power_cost(e, cand)
                + cfg.cost_latency_weight * hop_latency(cand) * urgency
        },
        admit,
        scratch,
    );
    if scratch.path_edges_into(dst, out) {
        let crossings = out
            .iter()
            .filter(|&&e| ctx.cand_graph.edge(e).crossing)
            .count() as u32;
        let latency = route_latency(out.len() + 1, crossings, cfg);
        if latency <= isf.max_latency_cycles {
            return Ok(());
        }
    }

    // Pass 2: pure latency (the cost-optimal path was too slow or absent).
    dijkstra_filtered_scratch(
        &ctx.cand_graph,
        src,
        Some(dst),
        |_, cand| hop_latency(cand),
        admit,
        scratch,
    );
    if scratch.path_edges_into(dst, out) {
        let crossings = out
            .iter()
            .filter(|&&e| ctx.cand_graph.edge(e).crossing)
            .count() as u32;
        let latency = route_latency(out.len() + 1, crossings, cfg);
        if latency <= isf.max_latency_cycles {
            Ok(())
        } else {
            Err(format!(
                "flow {} min latency {latency} exceeds constraint {}",
                isf.flow, isf.max_latency_cycles
            ))
        }
    } else {
        Err(format!(
            "flow {}: no shutdown-legal path with available capacity/ports",
            isf.flow
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{island_switch_assignment, switch_counts_for_sweep};
    use crate::vcg::build_vcg;
    use vi_noc_soc::{benchmarks, partition};

    fn alloc_d26(k_islands: usize, sweep: usize, k_mid: usize) -> Result<Topology, String> {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, k_islands).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let vcgs: Vec<_> = (0..k_islands)
            .map(|j| build_vcg(&soc, &vi, j, &cfg))
            .collect();
        let counts = switch_counts_for_sweep(&vcgs, &plan, sweep);
        let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
        allocate_paths(&soc, &vi, &plan, &asg, k_mid, &cfg)
    }

    /// The minimum-switch-count configuration can be legitimately
    /// port-starved (that is exactly why Algorithm 1 sweeps); tests that
    /// need *a* feasible topology search like the driver does.
    fn first_feasible_d26(k_islands: usize) -> Topology {
        for sweep in 1..=8 {
            for k_mid in 0..=4 {
                if let Ok(t) = alloc_d26(k_islands, sweep, k_mid) {
                    return t;
                }
            }
        }
        panic!("no feasible allocation for {k_islands} islands");
    }

    #[test]
    fn latency_formula() {
        let cfg = SynthesisConfig::default();
        // 1 switch: NI link + switch + NI link = 3 cycles.
        assert_eq!(route_latency(1, 0, &cfg), 3);
        // 2 switches same island: 2 sw + 3 links = 5.
        assert_eq!(route_latency(2, 0, &cfg), 5);
        // 2 switches across islands: + 4-cycle crossing = 9.
        assert_eq!(route_latency(2, 1, &cfg), 9);
        // via mid: 3 switches, 2 crossings = 3 + 4 + 8 = 15.
        assert_eq!(route_latency(3, 2, &cfg), 15);
    }

    #[test]
    fn single_island_routes_everything() {
        let topo = first_feasible_d26(1);
        assert_eq!(topo.routes().count(), benchmarks::d26_mobile().flow_count());
        // No crossings in a single island.
        for r in topo.routes() {
            assert_eq!(r.crossings, 0);
        }
        for l in topo.links() {
            assert_eq!(l.kind, LinkKind::Intra);
        }
    }

    #[test]
    fn six_islands_route_with_crossings() {
        let topo = first_feasible_d26(6);
        let soc = benchmarks::d26_mobile();
        assert_eq!(topo.routes().count(), soc.flow_count());
        assert!(
            topo.routes().any(|r| r.crossings > 0),
            "inter-island flows must cross"
        );
        // Link loads never exceed capacity.
        for l in topo.links() {
            assert!(l.load <= l.capacity, "{} overloaded", l.from);
        }
    }

    #[test]
    fn routes_respect_latency_constraints() {
        let topo = first_feasible_d26(6);
        let soc = benchmarks::d26_mobile();
        for r in topo.routes() {
            assert!(
                r.latency_cycles <= soc.flow(r.flow).max_latency_cycles,
                "flow {} latency {} > {}",
                r.flow,
                r.latency_cycles,
                soc.flow(r.flow).max_latency_cycles
            );
        }
    }

    #[test]
    fn shutdown_legality_of_all_routes() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let topo = first_feasible_d26(6);
        let mid = vi.island_count();
        for r in topo.routes() {
            let f = soc.flow(r.flow);
            let a = vi.island_of(f.src);
            let b = vi.island_of(f.dst);
            for &s in &r.switches {
                let isl = topo.switch(s).island_ext;
                assert!(
                    isl == a || isl == b || isl == mid,
                    "flow {} visits foreign island {isl}",
                    r.flow
                );
            }
        }
    }

    #[test]
    fn switch_sizes_stay_within_budget() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let topo = first_feasible_d26(6);
        for s in topo.switch_ids() {
            let (inp, outp) = topo.switch_ports(s);
            let max = plan.max_switch_size_ext(topo.switch(s).island_ext);
            assert!(
                inp.max(outp) <= max,
                "switch {} size {} exceeds {}",
                topo.switch(s).name,
                inp.max(outp),
                max
            );
        }
    }

    #[test]
    fn unused_intermediate_switches_are_pruned() {
        // With generous direct connectivity the mid island is unnecessary;
        // requesting 3 mid switches must not leave dead switches behind.
        let topo = alloc_d26(2, 1, 3).expect("feasible");
        for s in topo.switch_ids() {
            if topo.switch(s).island_ext == topo.island_count() {
                let (inp, outp) = topo.switch_ports(s);
                assert!(inp + outp > 0, "dead intermediate switch survived pruning");
            }
        }
    }

    #[test]
    fn discrete_islands_need_the_intermediate_island() {
        // At 26 islands the SDRAM hub would need ~20 direct links; the
        // switch size budget forces traffic through mid switches.
        let direct_only = alloc_d26(26, 1, 0);
        let with_mid = alloc_d26(26, 1, 4);
        assert!(
            with_mid.is_ok(),
            "26-island design should be feasible with an intermediate island: {:?}",
            with_mid.err()
        );
        if let Ok(t) = &with_mid {
            // Either direct-only fails, or mid genuinely reduces links.
            if direct_only.is_ok() {
                assert!(t.intermediate_switch_count() <= 4);
            } else {
                assert!(t.intermediate_switch_count() > 0);
            }
        }
    }

    /// A context built with spare (inactive) intermediate switches must
    /// produce exactly the topology of a context built with the candidate's
    /// own count — the inactive nodes are invisible to the searches.
    #[test]
    fn oversized_context_is_invisible() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let vcgs: Vec<_> = (0..6).map(|j| build_vcg(&soc, &vi, j, &cfg)).collect();
        let counts = switch_counts_for_sweep(&vcgs, &plan, 1);
        let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);

        let mut scratch = SearchScratch::new();
        for k_mid in 0..=3usize {
            let exact = AllocContext::build(&soc, &vi, &plan, &asg, k_mid, &cfg).unwrap();
            let oversized = AllocContext::build(&soc, &vi, &plan, &asg, 4, &cfg).unwrap();
            let a = allocate_paths_warm(&exact, k_mid, &cfg, &mut scratch, None, None)
                .map(|a| a.topology);
            let b = allocate_paths_warm(&oversized, k_mid, &cfg, &mut scratch, None, None)
                .map(|a| a.topology);
            match (a, b) {
                (Ok(ta), Ok(tb)) => assert_eq!(ta, tb, "k_mid={k_mid}"),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "k_mid={k_mid}"),
                (a, b) => panic!("k_mid={k_mid}: {a:?} vs {b:?}"),
            }
        }
    }

    /// The reserve-invariance guard itself: switches answer the
    /// port-growth admissibility questions identically at two reserves iff
    /// neither inequality flips between them.
    #[test]
    fn reserve_invariance_guard() {
        let state = AllocState {
            open: Vec::new(),
            load: Vec::new(),
            in_ports: vec![2, 2],
            out_ports: vec![2, 6],
            max_size: vec![8, 8],
            reserve: 0,
        };
        // Switch 0 grows to 3 ports either way: 3+1 and 3+2 both fit in 8.
        assert!(reserve_invariant(&state, &[0], 1, 2));
        // Switch 1's output growth needs 7 ports: 7+1 fits, 7+2 does not.
        assert!(!reserve_invariant(&state, &[1], 1, 2));
        assert!(!reserve_invariant(&state, &[0, 1], 1, 2));
        // Equal reserves are trivially invariant even on the tight switch.
        assert!(reserve_invariant(&state, &[0, 1], 2, 2));
    }

    /// The port-reserve retry must actually fire somewhere in the d26
    /// sweep chains, and a warm-started retry (seeded by the previous
    /// candidate's retry record, at a *different* reserve) must be
    /// bit-identical to a cold evaluation of the same candidate.
    #[test]
    fn warm_started_retry_matches_cold_retry() {
        // The communication partition of D36 port-starves its hub switches
        // at the minimum switch counts: every k_mid >= 1 candidate of sweep
        // index 1 succeeds only via the port-reserve retry, so consecutive
        // candidates exercise the retry-from-retry warm start at differing
        // reserves.
        let soc = benchmarks::d36_tablet();
        let cfg = SynthesisConfig::default();
        let mut retries = 0usize;
        let mut warm_seeded_retries = 0usize;
        for k_islands in [6usize, 7] {
            let vi = partition::communication_partition(&soc, k_islands, 1).unwrap();
            let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
            let vcgs: Vec<_> = (0..k_islands)
                .map(|j| build_vcg(&soc, &vi, j, &cfg))
                .collect();
            for sweep in 1..=2usize {
                let counts = switch_counts_for_sweep(&vcgs, &plan, sweep);
                let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
                let ctx = AllocContext::build(&soc, &vi, &plan, &asg, 4, &cfg).unwrap();
                let mut scratch = SearchScratch::new();
                let mut prev: Option<CandidateRecord> = None;
                for k_mid in 0..=4usize {
                    let mut rec = CandidateRecord::default();
                    let warm = allocate_paths_warm(
                        &ctx,
                        k_mid,
                        &cfg,
                        &mut scratch,
                        prev.as_ref(),
                        Some(&mut rec),
                    );
                    let cold = allocate_paths_warm(&ctx, k_mid, &cfg, &mut scratch, None, None);
                    let label = format!("islands={k_islands} sweep={sweep} k={k_mid}");
                    match (&warm, &cold) {
                        (Ok(aw), Ok(ac)) => {
                            assert_eq!(aw.via_retry, ac.via_retry, "{label}");
                            assert_eq!(aw.topology, ac.topology, "{label}");
                            if aw.via_retry {
                                retries += 1;
                                if prev.as_ref().is_some_and(|p| p.retry.is_some()) {
                                    warm_seeded_retries += 1;
                                }
                            }
                        }
                        (Err(ew), Err(ec)) => assert_eq!(ew, ec, "{label}"),
                        _ => panic!("{label}: {:?} vs {:?}", warm.is_ok(), cold.is_ok()),
                    }
                    prev = Some(rec);
                }
            }
        }
        assert!(
            retries > 0,
            "fixture never exercised the port-reserve retry"
        );
        assert!(
            warm_seeded_retries > 0,
            "no retry ever ran with a previous retry record to warm-start from"
        );
    }

    /// Warm-starting from the previous candidate's record must be
    /// bit-identical to a cold start, both when the warm path replays
    /// recorded flows and when it diverges.
    #[test]
    fn warm_start_matches_cold_start_across_the_mid_sweep() {
        let soc = benchmarks::d26_mobile();
        for k_islands in [2usize, 6, 26] {
            let vi = partition::logical_partition(&soc, k_islands).unwrap();
            let cfg = SynthesisConfig::default();
            let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
            let vcgs: Vec<_> = (0..k_islands)
                .map(|j| build_vcg(&soc, &vi, j, &cfg))
                .collect();
            for sweep in 1..=3usize {
                let counts = switch_counts_for_sweep(&vcgs, &plan, sweep);
                let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
                let ctx = AllocContext::build(&soc, &vi, &plan, &asg, 4, &cfg).unwrap();
                let mut scratch = SearchScratch::new();
                let mut prev: Option<CandidateRecord> = None;
                for k_mid in 0..=4usize {
                    let mut rec = CandidateRecord::default();
                    let warm = allocate_paths_warm(
                        &ctx,
                        k_mid,
                        &cfg,
                        &mut scratch,
                        prev.as_ref(),
                        Some(&mut rec),
                    )
                    .map(|a| a.topology);
                    let cold = allocate_paths_warm(&ctx, k_mid, &cfg, &mut scratch, None, None)
                        .map(|a| a.topology);
                    match (&warm, &cold) {
                        (Ok(tw), Ok(tc)) => {
                            assert_eq!(tw, tc, "islands={k_islands} sweep={sweep} k={k_mid}")
                        }
                        (Err(ew), Err(ec)) => {
                            assert_eq!(ew, ec, "islands={k_islands} sweep={sweep} k={k_mid}")
                        }
                        _ => panic!(
                            "islands={k_islands} sweep={sweep} k={k_mid}: {warm:?} vs {cold:?}"
                        ),
                    }
                    prev = Some(rec);
                }
            }
        }
    }
}
