//! Min-cost path allocation with shutdown-legal link opening
//! (Algorithm 1, steps 14–17).
//!
//! Flows are routed in decreasing bandwidth order. For each flow a Dijkstra
//! search runs over the *candidate* switch graph; the edge filter enforces
//! the paper's shutdown rule — a flow from island `a` to island `b` may only
//! touch switches of `a`, `b` or the always-on intermediate island, moving
//! monotonically `a → (mid →)* b` — and the edge cost implements the paper's
//! "linear combination of the power consumption increase in opening a new
//! link or reusing an existing link and the latency constraint of the flow".

use crate::assign::SwitchAssignment;
use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::flows::{inter_switch_flows, InterSwitchFlow};
use crate::topology::{LinkKind, Route, Switch, SwitchId, TopoLink, Topology};
use vi_noc_graph::{dijkstra_filtered, DiGraph, EdgeId, NodeId};
use vi_noc_models::{Bandwidth, BisyncFifoModel, Frequency, LinkModel, SwitchModel};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Candidate (potential) link between two switches.
#[derive(Debug, Clone)]
struct Cand {
    from: SwitchId,
    to: SwitchId,
    from_isl: usize,
    to_isl: usize,
    crossing: bool,
    length_mm: f64,
    capacity: Bandwidth,
}

/// Mutable allocation state shared by the cost/filter closures.
struct AllocState {
    /// Open link id per candidate edge index (parallel to the cand graph).
    open: Vec<Option<crate::topology::LinkId>>,
    /// Load per candidate edge (mirrors the topology's link loads).
    load: Vec<Bandwidth>,
    in_ports: Vec<usize>,
    out_ports: Vec<usize>,
    max_size: Vec<usize>,
    /// Ports per switch held back for links to/from the intermediate
    /// island. Greedy bandwidth-ordered allocation can otherwise exhaust a
    /// hub switch with direct links, stranding later flows whose only legal
    /// route is indirect (they would need a mid link into the same switch).
    /// Zero on the first attempt; the synthesis driver retries failed design
    /// points with `reserve = k_mid`.
    reserve: usize,
}

impl AllocState {
    /// Can this candidate edge accept `bw` more bandwidth (opening it if
    /// necessary without blowing a switch size budget)?
    fn admits(&self, e: usize, cand: &Cand, bw: Bandwidth, mid: usize) -> bool {
        // Tiny relative slack so a flow that exactly fills the link is not
        // rejected by floating-point noise.
        if (self.load[e] + bw).bytes_per_s() > cand.capacity.bytes_per_s() * (1.0 + 1e-9) {
            return false;
        }
        if self.open[e].is_some() {
            return true;
        }
        let u = cand.from.index();
        let v = cand.to.index();
        // Links touching the intermediate island may use reserved ports.
        let is_mid_link = cand.from_isl == mid || cand.to_isl == mid;
        let reserve = if is_mid_link { 0 } else { self.reserve };
        let u_size = self.in_ports[u].max(self.out_ports[u] + 1);
        let v_size = (self.in_ports[v] + 1).max(self.out_ports[v]);
        u_size + reserve <= self.max_size[u] && v_size + reserve <= self.max_size[v]
    }
}

/// Zero-load latency of a route given its switch count and crossings.
pub(crate) fn route_latency(switches: usize, crossings: u32, cfg: &SynthesisConfig) -> u32 {
    let links = switches as u32 + 1; // NI->s1, inter-switch links, sm->NI
    switches as u32 * cfg.switch_delay_cycles
        + links * cfg.link_delay_cycles
        + crossings * BisyncFifoModel::CROSSING_LATENCY_CYCLES
}

/// Allocates paths for all flows, opening links as needed.
///
/// Returns the finished topology (unused intermediate switches pruned), or a
/// human-readable reason why the design point is infeasible.
pub(crate) fn allocate_paths(
    spec: &SocSpec,
    vi: &ViAssignment,
    plan: &FrequencyPlan,
    assignment: &SwitchAssignment,
    k_mid: usize,
    cfg: &SynthesisConfig,
) -> Result<Topology, String> {
    match allocate_paths_with_reserve(spec, vi, plan, assignment, k_mid, 0, cfg) {
        Ok(topo) => Ok(topo),
        // Greedy direct-link opening may have stranded later flows on a
        // port-exhausted hub switch; retry holding ports back for
        // intermediate-island links (see `AllocState::reserve`).
        Err(first) if k_mid > 0 => {
            allocate_paths_with_reserve(spec, vi, plan, assignment, k_mid, k_mid, cfg)
                .map_err(|_| first)
        }
        Err(e) => Err(e),
    }
}

fn allocate_paths_with_reserve(
    spec: &SocSpec,
    vi: &ViAssignment,
    plan: &FrequencyPlan,
    assignment: &SwitchAssignment,
    k_mid: usize,
    reserve: usize,
    cfg: &SynthesisConfig,
) -> Result<Topology, String> {
    let n_islands = vi.island_count();
    let mid = n_islands; // extended island index of the intermediate island

    // --- Instantiate switches. -------------------------------------------
    let mut island_freq: Vec<Frequency> = (0..n_islands).map(|j| plan.frequency(j)).collect();
    island_freq.push(plan.intermediate_frequency());
    let mut topo = Topology::new(spec, n_islands, island_freq.clone());
    for (j, groups) in assignment.groups.iter().enumerate() {
        for (g, cores) in groups.iter().enumerate() {
            topo.add_switch(Switch {
                name: format!("sw{j}.{g}"),
                island_ext: j,
                cores: cores.clone(),
            });
        }
    }
    for k in 0..k_mid {
        topo.add_switch(Switch {
            name: format!("mid.{k}"),
            island_ext: mid,
            cores: Vec::new(),
        });
    }
    let n_switches = topo.switches().len();

    // --- Candidate graph over switches. ----------------------------------
    // Node i of the candidate graph is switch i; edges are all potential
    // links permitted by the architecture (per-flow legality is filtered
    // during the search).
    let link_model = LinkModel::new(&cfg.technology, cfg.link_width_bits);
    let fifo_model = BisyncFifoModel::new(&cfg.technology, cfg.link_width_bits);
    let nominal_switch = SwitchModel::new(&cfg.technology, 4, 4, cfg.link_width_bits);

    let mut cand_graph: DiGraph<SwitchId, Cand> = DiGraph::new();
    for s in topo.switch_ids() {
        cand_graph.add_node(s);
    }
    for u in topo.switch_ids() {
        for v in topo.switch_ids() {
            if u == v {
                continue;
            }
            let iu = topo.switch(u).island_ext;
            let iv = topo.switch(v).island_ext;
            // Every ordered switch pair is an architectural candidate
            // (intra-island, direct island-to-island, or via the
            // intermediate island); per-flow shutdown legality is enforced
            // by the search filter in `find_path`.
            let crossing = iu != iv;
            let length_mm = if !crossing {
                cfg.est_intra_link_mm
            } else if iu == mid || iv == mid {
                cfg.est_mid_link_mm
            } else {
                cfg.est_inter_link_mm
            };
            let f = Frequency::from_hz(island_freq[iu].hz().min(island_freq[iv].hz()));
            let capacity = link_model.capacity(f);
            cand_graph.add_edge(
                NodeId::from_index(u.index()),
                NodeId::from_index(v.index()),
                Cand {
                    from: u,
                    to: v,
                    from_isl: iu,
                    to_isl: iv,
                    crossing,
                    length_mm,
                    capacity,
                },
            );
        }
    }

    let mut state = AllocState {
        open: vec![None; cand_graph.edge_count()],
        load: vec![Bandwidth::ZERO; cand_graph.edge_count()],
        in_ports: (0..n_switches)
            .map(|s| topo.switch(SwitchId(s)).cores.len())
            .collect(),
        out_ports: (0..n_switches)
            .map(|s| topo.switch(SwitchId(s)).cores.len())
            .collect(),
        max_size: (0..n_switches)
            .map(|s| plan.max_switch_size_ext(topo.switch(SwitchId(s)).island_ext))
            .collect(),
        reserve,
    };

    // Pre-check: core counts alone must fit the switch size budgets.
    for s in topo.switch_ids() {
        let cores = topo.switch(s).cores.len();
        if cores > state.max_size[s.index()] {
            return Err(format!(
                "switch {} holds {cores} cores but max size is {}",
                topo.switch(s).name,
                state.max_size[s.index()]
            ));
        }
    }

    let min_lat_global = spec.min_latency_cycles().max(1) as f64;
    let flows = inter_switch_flows(spec, &topo);

    // --- Route each flow in bandwidth order. ------------------------------
    for isf in &flows {
        if isf.src_switch == isf.dst_switch {
            let latency = route_latency(1, 0, cfg);
            if latency > isf.max_latency_cycles {
                return Err(format!(
                    "flow {} latency {latency} exceeds constraint {} on its own switch",
                    isf.flow, isf.max_latency_cycles
                ));
            }
            topo.set_route(Route {
                flow: isf.flow,
                switches: vec![isf.src_switch],
                latency_cycles: latency,
                crossings: 0,
            });
            continue;
        }

        let path = find_path(
            &cand_graph,
            &state,
            isf,
            mid,
            cfg,
            &link_model,
            &fifo_model,
            &nominal_switch,
            &island_freq,
            min_lat_global,
        )?;

        // Commit the path.
        let mut switches = vec![isf.src_switch];
        let mut crossings = 0u32;
        for &e in &path {
            let cand = cand_graph.edge(e);
            if cand.crossing {
                crossings += 1;
            }
            let ei = e.index();
            if state.open[ei].is_none() {
                let kind = if !cand.crossing {
                    LinkKind::Intra
                } else if cand.from_isl == mid || cand.to_isl == mid {
                    LinkKind::Intermediate
                } else {
                    LinkKind::InterDirect
                };
                let lid = topo.open_link(TopoLink {
                    from: cand.from,
                    to: cand.to,
                    capacity: cand.capacity,
                    load: Bandwidth::ZERO,
                    kind,
                    length_mm: cand.length_mm,
                });
                state.open[ei] = Some(lid);
                state.out_ports[cand.from.index()] += 1;
                state.in_ports[cand.to.index()] += 1;
            }
            let lid = state.open[ei].expect("just opened");
            topo.add_load(lid, isf.bandwidth);
            state.load[ei] += isf.bandwidth;
            switches.push(cand.to);
        }
        let latency = route_latency(switches.len(), crossings, cfg);
        if latency > isf.max_latency_cycles {
            return Err(format!(
                "flow {} routed latency {latency} exceeds constraint {}",
                isf.flow, isf.max_latency_cycles
            ));
        }
        topo.set_route(Route {
            flow: isf.flow,
            switches,
            latency_cycles: latency,
            crossings,
        });
    }

    topo.prune_unused_intermediate();
    Ok(topo)
}

/// Finds the path for one flow: first min-cost, then (if the latency
/// constraint is violated) min-latency as a fallback.
#[allow(clippy::too_many_arguments)]
fn find_path(
    cand_graph: &DiGraph<SwitchId, Cand>,
    state: &AllocState,
    isf: &InterSwitchFlow,
    mid: usize,
    cfg: &SynthesisConfig,
    link_model: &LinkModel,
    fifo_model: &BisyncFifoModel,
    nominal_switch: &SwitchModel,
    island_freq: &[Frequency],
    min_lat_global: f64,
) -> Result<Vec<EdgeId>, String> {
    let src = NodeId::from_index(isf.src_switch.index());
    let dst = NodeId::from_index(isf.dst_switch.index());
    let bw = isf.bandwidth;
    let (src_isl, dst_isl) = (isf.src_island, isf.dst_island);

    let admit = |e: EdgeId, cand: &Cand| -> bool {
        let legal = if src_isl == dst_isl {
            // Intra-island flows never leave their island.
            cand.from_isl == src_isl && cand.to_isl == src_isl
        } else {
            let (a, b) = (cand.from_isl, cand.to_isl);
            (a == b && (a == src_isl || a == dst_isl))
                || (a == src_isl && b == dst_isl)
                || (a == src_isl && b == mid)
                || (a == mid && b == dst_isl)
                || (a == mid && b == mid)
        };
        legal && state.admits(e.index(), cand, bw, mid)
    };

    let urgency = min_lat_global / isf.max_latency_cycles.max(1) as f64;
    let power_cost = |e: EdgeId, cand: &Cand| -> f64 {
        // Marginal traffic power on this hop: wire + downstream switch
        // datapath + converter, all for this flow's bandwidth.
        let mut p = link_model.traffic_power(cand.length_mm, bw) + nominal_switch.traffic_power(bw);
        if cand.crossing {
            p += fifo_model.power(Frequency::ZERO, Frequency::ZERO, bw);
        }
        // Opening a new link pays its standing (idle/clock) power too.
        let mut scarcity = 0.0;
        if state.open[e.index()].is_none() {
            let fu = island_freq[cand.from_isl];
            let fv = island_freq[cand.to_isl];
            if cand.crossing {
                p += fifo_model.power(fu, fv, Bandwidth::ZERO);
            }
            // One extra output port at `from`, one extra input at `to`:
            // approximate with the nominal switch's per-port idle delta.
            let base = SwitchModel::new(&cfg.technology, 4, 4, cfg.link_width_bits);
            let grown = SwitchModel::new(&cfg.technology, 4, 5, cfg.link_width_bits);
            p += grown.idle_power(fu) - base.idle_power(fu);
            p += grown.idle_power(fv) - base.idle_power(fv);
            // Port scarcity: consuming one of the endpoints' last free
            // ports is exponentially discouraged so hub switches keep
            // ports for later flows (which may have no alternative).
            let u = cand.from.index();
            let v = cand.to.index();
            let rem_out = state.max_size[u].saturating_sub(state.out_ports[u]).max(1);
            let rem_in = state.max_size[v].saturating_sub(state.in_ports[v]).max(1);
            scarcity = cfg.cost_port_scarcity
                * (f64::powi(2.0, -(rem_out as i32 - 1)) + f64::powi(2.0, -(rem_in as i32 - 1)));
        }
        p.mw() + scarcity
    };
    let hop_latency = |cand: &Cand| -> f64 {
        (cfg.link_delay_cycles + cfg.switch_delay_cycles) as f64
            + if cand.crossing {
                BisyncFifoModel::CROSSING_LATENCY_CYCLES as f64
            } else {
                0.0
            }
    };

    // Pass 1: paper cost = linear combination of power increase and latency.
    let tree = dijkstra_filtered(
        cand_graph,
        src,
        Some(dst),
        |e, cand| {
            cfg.cost_power_weight * power_cost(e, cand)
                + cfg.cost_latency_weight * hop_latency(cand) * urgency
        },
        admit,
    );
    if let Some(edges) = tree.path_edges(dst) {
        let crossings = edges
            .iter()
            .filter(|&&e| cand_graph.edge(e).crossing)
            .count() as u32;
        let latency = route_latency(edges.len() + 1, crossings, cfg);
        if latency <= isf.max_latency_cycles {
            return Ok(edges);
        }
    }

    // Pass 2: pure latency (the cost-optimal path was too slow or absent).
    let tree = dijkstra_filtered(
        cand_graph,
        src,
        Some(dst),
        |_, cand| hop_latency(cand),
        admit,
    );
    match tree.path_edges(dst) {
        Some(edges) => {
            let crossings = edges
                .iter()
                .filter(|&&e| cand_graph.edge(e).crossing)
                .count() as u32;
            let latency = route_latency(edges.len() + 1, crossings, cfg);
            if latency <= isf.max_latency_cycles {
                Ok(edges)
            } else {
                Err(format!(
                    "flow {} min latency {latency} exceeds constraint {}",
                    isf.flow, isf.max_latency_cycles
                ))
            }
        }
        None => Err(format!(
            "flow {}: no shutdown-legal path with available capacity/ports",
            isf.flow
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{island_switch_assignment, switch_counts_for_sweep};
    use crate::vcg::build_vcg;
    use vi_noc_soc::{benchmarks, partition};

    fn alloc_d26(k_islands: usize, sweep: usize, k_mid: usize) -> Result<Topology, String> {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, k_islands).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let vcgs: Vec<_> = (0..k_islands)
            .map(|j| build_vcg(&soc, &vi, j, &cfg))
            .collect();
        let counts = switch_counts_for_sweep(&vcgs, &plan, sweep);
        let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
        allocate_paths(&soc, &vi, &plan, &asg, k_mid, &cfg)
    }

    /// The minimum-switch-count configuration can be legitimately
    /// port-starved (that is exactly why Algorithm 1 sweeps); tests that
    /// need *a* feasible topology search like the driver does.
    fn first_feasible_d26(k_islands: usize) -> Topology {
        for sweep in 1..=8 {
            for k_mid in 0..=4 {
                if let Ok(t) = alloc_d26(k_islands, sweep, k_mid) {
                    return t;
                }
            }
        }
        panic!("no feasible allocation for {k_islands} islands");
    }

    #[test]
    fn latency_formula() {
        let cfg = SynthesisConfig::default();
        // 1 switch: NI link + switch + NI link = 3 cycles.
        assert_eq!(route_latency(1, 0, &cfg), 3);
        // 2 switches same island: 2 sw + 3 links = 5.
        assert_eq!(route_latency(2, 0, &cfg), 5);
        // 2 switches across islands: + 4-cycle crossing = 9.
        assert_eq!(route_latency(2, 1, &cfg), 9);
        // via mid: 3 switches, 2 crossings = 3 + 4 + 8 = 15.
        assert_eq!(route_latency(3, 2, &cfg), 15);
    }

    #[test]
    fn single_island_routes_everything() {
        let topo = first_feasible_d26(1);
        assert_eq!(topo.routes().count(), benchmarks::d26_mobile().flow_count());
        // No crossings in a single island.
        for r in topo.routes() {
            assert_eq!(r.crossings, 0);
        }
        for l in topo.links() {
            assert_eq!(l.kind, LinkKind::Intra);
        }
    }

    #[test]
    fn six_islands_route_with_crossings() {
        let topo = first_feasible_d26(6);
        let soc = benchmarks::d26_mobile();
        assert_eq!(topo.routes().count(), soc.flow_count());
        assert!(
            topo.routes().any(|r| r.crossings > 0),
            "inter-island flows must cross"
        );
        // Link loads never exceed capacity.
        for l in topo.links() {
            assert!(l.load <= l.capacity, "{} overloaded", l.from);
        }
    }

    #[test]
    fn routes_respect_latency_constraints() {
        let topo = first_feasible_d26(6);
        let soc = benchmarks::d26_mobile();
        for r in topo.routes() {
            assert!(
                r.latency_cycles <= soc.flow(r.flow).max_latency_cycles,
                "flow {} latency {} > {}",
                r.flow,
                r.latency_cycles,
                soc.flow(r.flow).max_latency_cycles
            );
        }
    }

    #[test]
    fn shutdown_legality_of_all_routes() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let topo = first_feasible_d26(6);
        let mid = vi.island_count();
        for r in topo.routes() {
            let f = soc.flow(r.flow);
            let a = vi.island_of(f.src);
            let b = vi.island_of(f.dst);
            for &s in &r.switches {
                let isl = topo.switch(s).island_ext;
                assert!(
                    isl == a || isl == b || isl == mid,
                    "flow {} visits foreign island {isl}",
                    r.flow
                );
            }
        }
    }

    #[test]
    fn switch_sizes_stay_within_budget() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let topo = first_feasible_d26(6);
        for s in topo.switch_ids() {
            let (inp, outp) = topo.switch_ports(s);
            let max = plan.max_switch_size_ext(topo.switch(s).island_ext);
            assert!(
                inp.max(outp) <= max,
                "switch {} size {} exceeds {}",
                topo.switch(s).name,
                inp.max(outp),
                max
            );
        }
    }

    #[test]
    fn unused_intermediate_switches_are_pruned() {
        // With generous direct connectivity the mid island is unnecessary;
        // requesting 3 mid switches must not leave dead switches behind.
        let topo = alloc_d26(2, 1, 3).expect("feasible");
        for s in topo.switch_ids() {
            if topo.switch(s).island_ext == topo.island_count() {
                let (inp, outp) = topo.switch_ports(s);
                assert!(inp + outp > 0, "dead intermediate switch survived pruning");
            }
        }
    }

    #[test]
    fn discrete_islands_need_the_intermediate_island() {
        // At 26 islands the SDRAM hub would need ~20 direct links; the
        // switch size budget forces traffic through mid switches.
        let direct_only = alloc_d26(26, 1, 0);
        let with_mid = alloc_d26(26, 1, 4);
        assert!(
            with_mid.is_ok(),
            "26-island design should be feasible with an intermediate island: {:?}",
            with_mid.err()
        );
        if let Ok(t) = &with_mid {
            // Either direct-only fails, or mid genuinely reduces links.
            if direct_only.is_ok() {
                assert!(t.intermediate_switch_count() <= 4);
            } else {
                assert!(t.intermediate_switch_count() > 0);
            }
        }
    }
}
