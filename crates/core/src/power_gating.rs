//! Usage scenarios and island power-gating analysis (experiment T2).
//!
//! The motivation of the whole paper: once the NoC supports it, shutting
//! down the islands that a use case leaves idle removes their leakage —
//! "even 25% or more reduction in overall system power" (§5, citing [6]).

use crate::config::SynthesisConfig;
use crate::topology::Topology;
use vi_noc_models::{
    gated_island_leakage, island_leakage, Area, Bandwidth, BisyncFifoModel, LinkModel, NiModel,
    Power, SwitchModel,
};
use vi_noc_soc::{CoreKind, SocSpec, ViAssignment};

/// A use case: which cores are actively working.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageScenario {
    /// Scenario name.
    pub name: String,
    /// `active[core] = true` if the core computes in this scenario.
    pub active: Vec<bool>,
}

impl UsageScenario {
    /// Builds a scenario from a predicate over core kinds/names.
    pub fn from_predicate(
        spec: &SocSpec,
        name: impl Into<String>,
        mut pred: impl FnMut(&vi_noc_soc::CoreSpec) -> bool,
    ) -> Self {
        UsageScenario {
            name: name.into(),
            active: spec
                .cores()
                .iter()
                .map(|c| pred(c) || c.always_on)
                .collect(),
        }
    }
}

/// Power accounting of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Islands that are power-gated in this scenario.
    pub islands_off: Vec<usize>,
    /// Dynamic power of the active cores.
    pub core_dynamic: Power,
    /// Core + NoC leakage after gating.
    pub leakage: Power,
    /// NoC dynamic power for the scenario's live traffic.
    pub noc_dynamic: Power,
    /// Total power had nothing been gated (all islands leak, same activity).
    pub total_ungated: Power,
}

impl ScenarioReport {
    /// Total scenario power with gating.
    pub fn total(&self) -> Power {
        self.core_dynamic + self.leakage + self.noc_dynamic
    }

    /// Fraction of total power saved by gating (0..1).
    pub fn savings_fraction(&self) -> f64 {
        if self.total_ungated.watts() <= 0.0 {
            return 0.0;
        }
        (self.total_ungated - self.total()).watts() / self.total_ungated.watts()
    }
}

/// The scenario set used by the T2 experiment: product use cases that leave
/// different island subsets idle.
pub fn standard_scenarios(spec: &SocSpec) -> Vec<UsageScenario> {
    use CoreKind::*;
    vec![
        UsageScenario::from_predicate(spec, "standby", |_| false),
        UsageScenario::from_predicate(spec, "audio_playback", |c| {
            matches!(c.kind, Audio | Dma | Peripheral) || c.name.contains("sram")
        }),
        UsageScenario::from_predicate(spec, "video_playback", |c| {
            matches!(c.kind, VideoDecoder | Display | Audio | Dma | Memory)
        }),
        UsageScenario::from_predicate(spec, "camera_capture", |c| {
            matches!(c.kind, Imaging | VideoEncoder | Display | Memory | Dma)
        }),
        UsageScenario::from_predicate(spec, "voice_call", |c| {
            matches!(c.kind, Modem | Audio | Security | Memory | Dsp)
        }),
        UsageScenario::from_predicate(spec, "full_load", |_| true),
    ]
}

/// Evaluates a scenario on a synthesized design.
///
/// An island is gated iff it may be shut down and none of its cores are
/// active. Gated islands keep only the sleep-transistor residual leakage;
/// their NoC elements burn nothing. Live NoC elements pay idle power plus
/// datapath power for the flows whose two endpoints are both active.
pub fn scenario_power(
    spec: &SocSpec,
    vi: &ViAssignment,
    topo: &Topology,
    cfg: &SynthesisConfig,
    scenario: &UsageScenario,
) -> ScenarioReport {
    assert_eq!(scenario.active.len(), spec.core_count());
    let n_isl = vi.island_count();
    let mid = n_isl;

    // Which islands stay powered?
    let mut island_on = vec![false; n_isl + 1];
    island_on[mid] = true; // the intermediate island is never gated
    for id in spec.core_ids() {
        if scenario.active[id.index()] || !vi.can_shutdown(vi.island_of(id)) {
            island_on[vi.island_of(id)] = true;
        }
    }
    let islands_off: Vec<usize> = (0..n_isl).filter(|&j| !island_on[j]).collect();

    // Core dynamic power: active cores only.
    let core_dynamic: Power = spec
        .cores()
        .iter()
        .enumerate()
        .filter(|(i, _)| scenario.active[*i])
        .map(|(_, c)| c.dyn_power)
        .sum();

    // Live flows: both endpoints active.
    let live = |fid: vi_noc_soc::FlowId| {
        let f = spec.flow(fid);
        scenario.active[f.src.index()] && scenario.active[f.dst.index()]
    };

    // NoC dynamic power of live elements.
    let tech = &cfg.technology;
    let link_model = LinkModel::new(tech, cfg.link_width_bits);
    let ni_model = NiModel::new(tech, cfg.link_width_bits);
    let fifo_model = BisyncFifoModel::new(tech, cfg.link_width_bits);
    let mut noc_dynamic = Power::ZERO;

    // Per-switch live loads.
    let mut switch_load = vec![Bandwidth::ZERO; topo.switches().len()];
    let mut link_load = vec![Bandwidth::ZERO; topo.links().len()];
    for route in topo.routes() {
        if !live(route.flow) {
            continue;
        }
        let bw = spec.flow(route.flow).bandwidth;
        for &s in &route.switches {
            switch_load[s.index()] += bw;
        }
        for pair in route.switches.windows(2) {
            if let Some(l) = topo.find_link(pair[0], pair[1]) {
                link_load[l.index()] += bw;
            }
        }
    }
    for s in topo.switch_ids() {
        let isl = topo.switch(s).island_ext;
        if !island_on[isl] {
            continue;
        }
        let (inp, outp) = topo.switch_ports(s);
        let model = SwitchModel::new(tech, inp.max(1), outp.max(1), cfg.link_width_bits);
        noc_dynamic += model.idle_power(topo.island_frequency(isl))
            + model.traffic_power(switch_load[s.index()]);
    }
    for (i, l) in topo.links().iter().enumerate() {
        let from_on = island_on[topo.switch(l.from).island_ext];
        let to_on = island_on[topo.switch(l.to).island_ext];
        if !(from_on && to_on) {
            continue;
        }
        noc_dynamic += link_model.traffic_power(l.length_mm, link_load[i]);
        if l.crosses_domain() {
            let fu = topo.island_frequency(topo.switch(l.from).island_ext);
            let fv = topo.island_frequency(topo.switch(l.to).island_ext);
            noc_dynamic += fifo_model.power(fu, fv, link_load[i]);
        }
    }
    for id in spec.core_ids() {
        let isl = vi.island_of(id);
        if !island_on[isl] {
            continue;
        }
        let (inb, outb) = spec.core_io_bandwidth(id);
        let scale = if scenario.active[id.index()] {
            1.0
        } else {
            0.0
        };
        let bw = Bandwidth::from_bytes_per_s((inb.bytes_per_s() + outb.bytes_per_s()) * scale);
        noc_dynamic += ni_model.power(topo.island_frequency(isl), bw);
    }

    // Leakage: per-island core area + the island's share of NoC area.
    let mut island_area = vec![Area::ZERO; n_isl + 1];
    for id in spec.core_ids() {
        island_area[vi.island_of(id)] += spec.core(id).area;
    }
    for s in topo.switch_ids() {
        let (inp, outp) = topo.switch_ports(s);
        let model = SwitchModel::new(tech, inp.max(1), outp.max(1), cfg.link_width_bits);
        island_area[topo.switch(s).island_ext] += model.area();
    }
    for id in spec.core_ids() {
        island_area[vi.island_of(id)] += ni_model.area();
    }
    for l in topo.links() {
        if l.crosses_domain() {
            island_area[topo.switch(l.from).island_ext] += fifo_model.area();
        }
    }

    let mut leakage = Power::ZERO;
    let mut leakage_ungated = Power::ZERO;
    for (j, &a) in island_area.iter().enumerate() {
        leakage_ungated += island_leakage(tech, a);
        leakage += if island_on[j] {
            island_leakage(tech, a)
        } else {
            gated_island_leakage(tech, a)
        };
    }

    ScenarioReport {
        name: scenario.name.clone(),
        islands_off,
        core_dynamic,
        leakage,
        noc_dynamic,
        total_ungated: core_dynamic + leakage_ungated + noc_dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn design() -> (SocSpec, ViAssignment, Topology, SynthesisConfig) {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        (soc, vi, topo, cfg)
    }

    #[test]
    fn standby_gates_most_islands() {
        let (soc, vi, topo, cfg) = design();
        let scenarios = standard_scenarios(&soc);
        let standby = &scenarios[0];
        let r = scenario_power(&soc, &vi, &topo, &cfg, standby);
        assert!(
            !r.islands_off.is_empty(),
            "standby must gate at least one island"
        );
        // All gated islands are shutdown-capable.
        for &j in &r.islands_off {
            assert!(vi.can_shutdown(j));
        }
    }

    #[test]
    fn gating_saves_substantial_power_in_idle_scenarios() {
        let (soc, vi, topo, cfg) = design();
        for sc in standard_scenarios(&soc) {
            let r = scenario_power(&soc, &vi, &topo, &cfg, &sc);
            if sc.name == "standby" {
                assert!(
                    r.savings_fraction() > 0.15,
                    "standby saves {:.1}% — expected >15%",
                    r.savings_fraction() * 100.0
                );
            }
            if sc.name == "full_load" {
                assert!(r.islands_off.is_empty());
                assert!(r.savings_fraction().abs() < 1e-9);
            }
        }
    }

    #[test]
    fn savings_monotone_with_idleness() {
        let (soc, vi, topo, cfg) = design();
        let scenarios = standard_scenarios(&soc);
        let standby = scenario_power(&soc, &vi, &topo, &cfg, &scenarios[0]);
        let full = scenario_power(&soc, &vi, &topo, &cfg, &scenarios[5]);
        assert!(standby.total().mw() < full.total().mw());
        assert!(standby.islands_off.len() >= full.islands_off.len());
    }

    #[test]
    fn always_on_islands_never_gated() {
        let (soc, vi, topo, cfg) = design();
        for sc in standard_scenarios(&soc) {
            let r = scenario_power(&soc, &vi, &topo, &cfg, &sc);
            for &j in &r.islands_off {
                assert!(
                    vi.can_shutdown(j),
                    "{}: gated always-on island {j}",
                    sc.name
                );
            }
        }
    }

    #[test]
    fn report_totals_are_consistent() {
        let (soc, vi, topo, cfg) = design();
        let sc = &standard_scenarios(&soc)[2];
        let r = scenario_power(&soc, &vi, &topo, &cfg, sc);
        let total = r.core_dynamic + r.leakage + r.noc_dynamic;
        assert!((r.total().mw() - total.mw()).abs() < 1e-9);
        assert!(r.total() <= r.total_ungated + Power::from_mw(1e-9));
    }
}
