//! Synthesized NoC topology: switches, links, routes.

use std::collections::HashMap;
use std::fmt;
use vi_noc_models::{Bandwidth, Frequency};
use vi_noc_soc::{CoreId, FlowId, SocSpec};

/// Identifier of a switch within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub(crate) usize);

impl SwitchId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a directed link within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Classification of a switch-to-switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Both endpoints in the same voltage island.
    Intra,
    /// Directly across two different (real) islands — carries a
    /// bi-synchronous converter FIFO.
    InterDirect,
    /// One endpoint in the intermediate NoC island — also a converter
    /// crossing (unless both endpoints are intermediate).
    Intermediate,
}

/// A NoC switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Switch {
    /// Instance name (`swJ.G` for island J group G, `mid.K` for
    /// intermediate switches).
    pub name: String,
    /// Extended island index: `0..n_islands` for real islands,
    /// `n_islands` for the intermediate NoC island.
    pub island_ext: usize,
    /// Cores attached to this switch through NIs (empty for intermediate
    /// switches — they never connect cores directly).
    pub cores: Vec<CoreId>,
}

/// A directed switch-to-switch link.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLink {
    /// Source switch.
    pub from: SwitchId,
    /// Destination switch.
    pub to: SwitchId,
    /// Peak bandwidth (width × the slower endpoint's clock).
    pub capacity: Bandwidth,
    /// Allocated bandwidth.
    pub load: Bandwidth,
    /// Link classification.
    pub kind: LinkKind,
    /// Estimated (pre-floorplan) length in mm; replaced by the realized
    /// length after floorplanning.
    pub length_mm: f64,
}

impl TopoLink {
    /// `true` if the link crosses a clock/voltage boundary and therefore
    /// carries a bi-synchronous converter FIFO.
    pub fn crosses_domain(&self) -> bool {
        self.kind != LinkKind::Intra
    }
}

/// The switch path of one traffic flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The flow this route serves.
    pub flow: FlowId,
    /// Switches traversed, in order (at least one).
    pub switches: Vec<SwitchId>,
    /// Zero-load latency of the route in cycles (NI links + switches +
    /// links + converter crossings).
    pub latency_cycles: u32,
    /// Number of island-boundary crossings.
    pub crossings: u32,
}

/// Hand-constructs a [`Topology`] switch by switch, link by link.
///
/// The synthesis pipeline is the normal way to obtain a topology; this
/// builder exists for the cases that need *exact* structural control —
/// simulator edge-case fixtures (specific queue-sharing and clock-ratio
/// configurations that synthesized designs only reach probabilistically),
/// unit experiments, and importing externally designed topologies.
/// [`TopologyBuilder::build`] validates what the engine relies on: every
/// core attached to exactly one switch, every flow routed from its source
/// core's switch to its destination core's switch over opened links.
#[derive(Debug)]
pub struct TopologyBuilder {
    flows: Vec<(CoreId, CoreId)>,
    topo: Topology,
}

impl TopologyBuilder {
    /// Starts an empty topology for `spec` with `n_islands` real voltage
    /// islands clocked at `island_freq` (which must also carry the
    /// intermediate island's frequency as its last, `n_islands + 1`-th
    /// entry, even when no intermediate switches are added).
    ///
    /// # Panics
    ///
    /// Panics if `island_freq.len() != n_islands + 1`.
    pub fn new(spec: &SocSpec, n_islands: usize, island_freq: Vec<Frequency>) -> Self {
        TopologyBuilder {
            flows: spec.flows().iter().map(|f| (f.src, f.dst)).collect(),
            topo: Topology::new(spec, n_islands, island_freq),
        }
    }

    /// Adds a switch on extended island `island_ext` with `cores` attached
    /// through NIs.
    ///
    /// # Panics
    ///
    /// Panics if `island_ext` is out of range (the intermediate island is
    /// the largest valid index) or a listed core is already attached.
    pub fn add_switch(
        &mut self,
        name: impl Into<String>,
        island_ext: usize,
        cores: Vec<CoreId>,
    ) -> SwitchId {
        assert!(
            island_ext <= self.topo.n_islands,
            "island_ext {island_ext} out of range"
        );
        for &c in &cores {
            assert_eq!(
                self.topo.switch_of_core[c.index()],
                SwitchId(usize::MAX),
                "core {c} already attached"
            );
        }
        self.topo.add_switch(Switch {
            name: name.into(),
            island_ext,
            cores,
        })
    }

    /// Opens a directed link `from → to`, classifying it from the endpoint
    /// islands (which determines whether the simulator charges the
    /// bi-synchronous crossing dwell).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown, `from == to`, or the link is
    /// already open.
    pub fn open_link(&mut self, from: SwitchId, to: SwitchId, capacity: Bandwidth) -> LinkId {
        assert_ne!(from, to, "self-links are not representable");
        let (fi, ti) = (
            self.topo.switches[from.index()].island_ext,
            self.topo.switches[to.index()].island_ext,
        );
        let mid = self.topo.n_islands;
        let kind = if fi == ti {
            LinkKind::Intra
        } else if fi == mid || ti == mid {
            LinkKind::Intermediate
        } else {
            LinkKind::InterDirect
        };
        self.topo.open_link(TopoLink {
            from,
            to,
            capacity,
            load: Bandwidth::from_mbps(0.0),
            kind,
            length_mm: 1.0,
        })
    }

    /// Routes `flow` over `switches`, accumulating its bandwidth onto each
    /// traversed link and deriving the crossing count and zero-load latency
    /// the same way the synthesis allocator does.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty, does not start (end) at the source
    /// (destination) core's switch, traverses an unopened link, or the flow
    /// is already routed.
    pub fn set_route(&mut self, spec: &SocSpec, flow: FlowId, switches: Vec<SwitchId>) {
        let (src, dst) = self.flows[flow.index()];
        assert!(!switches.is_empty(), "empty route for {flow}");
        assert!(
            self.topo.routes[flow.index()].is_none(),
            "{flow} already routed"
        );
        assert_eq!(
            switches[0],
            self.topo.switch_of_core[src.index()],
            "{flow}: route must start at the source core's switch"
        );
        assert_eq!(
            *switches.last().unwrap(),
            self.topo.switch_of_core[dst.index()],
            "{flow}: route must end at the destination core's switch"
        );
        let bw = spec.flow(flow).bandwidth;
        let mut crossings = 0u32;
        for w in switches.windows(2) {
            let link = self
                .topo
                .find_link(w[0], w[1])
                .unwrap_or_else(|| panic!("{flow}: no link {} → {}", w[0], w[1]));
            self.topo.add_load(link, bw);
            if self.topo.links[link.index()].crosses_domain() {
                crossings += 1;
            }
        }
        // NI in + per-switch traversal + links + converter dwells + NI out,
        // matching `paths.rs`'s zero-load accounting.
        let latency_cycles = 2 * switches.len() as u32 + (switches.len() as u32 - 1) + crossings;
        self.topo.set_route(Route {
            flow,
            switches,
            latency_cycles,
            crossings,
        });
    }

    /// Finishes the topology.
    ///
    /// # Panics
    ///
    /// Panics if some core is unattached or some flow is unrouted — the
    /// structural invariants every consumer (metrics, realization, the
    /// simulator) assumes.
    pub fn build(self) -> Topology {
        for (c, &sw) in self.topo.switch_of_core.iter().enumerate() {
            assert_ne!(sw, SwitchId(usize::MAX), "core c{c} not attached");
        }
        for (f, r) in self.topo.routes.iter().enumerate() {
            assert!(r.is_some(), "flow f{f} not routed");
        }
        self.topo
    }
}

/// A complete synthesized topology for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n_islands: usize,
    switches: Vec<Switch>,
    links: Vec<TopoLink>,
    link_index: HashMap<(SwitchId, SwitchId), LinkId>,
    switch_of_core: Vec<SwitchId>,
    routes: Vec<Option<Route>>,
    island_freq: Vec<Frequency>,
}

impl Topology {
    /// Creates an empty topology skeleton.
    ///
    /// `island_freq` must hold `n_islands + 1` entries — the last one is the
    /// intermediate island's frequency.
    pub(crate) fn new(spec: &SocSpec, n_islands: usize, island_freq: Vec<Frequency>) -> Self {
        assert_eq!(island_freq.len(), n_islands + 1);
        Topology {
            n_islands,
            switches: Vec::new(),
            links: Vec::new(),
            link_index: HashMap::new(),
            switch_of_core: vec![SwitchId(usize::MAX); spec.core_count()],
            routes: vec![None; spec.flow_count()],
            island_freq,
        }
    }

    pub(crate) fn add_switch(&mut self, switch: Switch) -> SwitchId {
        let id = SwitchId(self.switches.len());
        for &c in &switch.cores {
            self.switch_of_core[c.index()] = id;
        }
        self.switches.push(switch);
        id
    }

    pub(crate) fn open_link(&mut self, link: TopoLink) -> LinkId {
        debug_assert!(
            !self.link_index.contains_key(&(link.from, link.to)),
            "link already open"
        );
        let id = LinkId(self.links.len());
        self.link_index.insert((link.from, link.to), id);
        self.links.push(link);
        id
    }

    pub(crate) fn add_load(&mut self, link: LinkId, bw: Bandwidth) {
        self.links[link.0].load += bw;
    }

    pub(crate) fn set_route(&mut self, route: Route) {
        let idx = route.flow.index();
        self.routes[idx] = Some(route);
    }

    pub(crate) fn set_link_length(&mut self, link: LinkId, mm: f64) {
        self.links[link.0].length_mm = mm;
    }

    /// Number of real voltage islands (the intermediate island, if any, has
    /// extended index `island_count()`).
    pub fn island_count(&self) -> usize {
        self.n_islands
    }

    /// NoC clock frequency of extended island `island_ext`.
    pub fn island_frequency(&self, island_ext: usize) -> Frequency {
        self.island_freq[island_ext]
    }

    /// All switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// A switch by id.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0]
    }

    /// Iterates over switch ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switches.len()).map(SwitchId)
    }

    /// All links.
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// A link by id.
    pub fn link(&self, id: LinkId) -> &TopoLink {
        &self.links[id.0]
    }

    /// Iterates over link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// The open link `from -> to`, if any.
    pub fn find_link(&self, from: SwitchId, to: SwitchId) -> Option<LinkId> {
        self.link_index.get(&(from, to)).copied()
    }

    /// The switch a core's NI attaches to.
    pub fn switch_of_core(&self, core: CoreId) -> SwitchId {
        let s = self.switch_of_core[core.index()];
        assert!(s.0 != usize::MAX, "core {core} not attached");
        s
    }

    /// The route of `flow`, if it was allocated.
    pub fn route(&self, flow: FlowId) -> Option<&Route> {
        self.routes[flow.index()].as_ref()
    }

    /// All allocated routes.
    pub fn routes(&self) -> impl Iterator<Item = &Route> + '_ {
        self.routes.iter().flatten()
    }

    /// Number of switches in the intermediate island.
    pub fn intermediate_switch_count(&self) -> usize {
        self.switches
            .iter()
            .filter(|s| s.island_ext == self.n_islands)
            .count()
    }

    /// `(inputs, outputs)` port usage of a switch: attached cores plus
    /// incident links.
    pub fn switch_ports(&self, id: SwitchId) -> (usize, usize) {
        let cores = self.switches[id.0].cores.len();
        let inputs = cores + self.links.iter().filter(|l| l.to == id).count();
        let outputs = cores + self.links.iter().filter(|l| l.from == id).count();
        (inputs, outputs)
    }

    /// Total bandwidth traversing each switch (indexed by switch id),
    /// derived from the allocated routes.
    pub fn switch_loads(&self, spec: &SocSpec) -> Vec<Bandwidth> {
        let mut loads = vec![Bandwidth::ZERO; self.switches.len()];
        for route in self.routes() {
            let bw = spec.flow(route.flow).bandwidth;
            for &s in &route.switches {
                loads[s.0] += bw;
            }
        }
        loads
    }

    /// Removes intermediate switches that ended up with no links, renumbering
    /// ids. Returns the number of switches removed.
    pub(crate) fn prune_unused_intermediate(&mut self) -> usize {
        let used: Vec<bool> = self
            .switch_ids()
            .map(|id| {
                let s = &self.switches[id.0];
                s.island_ext != self.n_islands
                    || self.links.iter().any(|l| l.from == id || l.to == id)
            })
            .collect();
        let removed = used.iter().filter(|&&u| !u).count();
        if removed == 0 {
            return 0;
        }
        let mut remap = vec![usize::MAX; self.switches.len()];
        let mut next = 0;
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = next;
                next += 1;
            }
        }
        self.switches = self
            .switches
            .drain(..)
            .enumerate()
            .filter(|(i, _)| used[*i])
            .map(|(_, s)| s)
            .collect();
        for l in &mut self.links {
            l.from = SwitchId(remap[l.from.0]);
            l.to = SwitchId(remap[l.to.0]);
        }
        self.link_index = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| ((l.from, l.to), LinkId(i)))
            .collect();
        for s in &mut self.switch_of_core {
            if s.0 != usize::MAX {
                *s = SwitchId(remap[s.0]);
            }
        }
        for route in self.routes.iter_mut().flatten() {
            for s in &mut route.switches {
                *s = SwitchId(remap[s.0]);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{CoreKind, CoreSpec, TrafficFlow};

    fn tiny_spec() -> SocSpec {
        let mut s = SocSpec::new("t");
        let a = s.add_core(CoreSpec::new("a", CoreKind::Cpu, 1.0, 1.0, 100.0));
        let b = s.add_core(CoreSpec::new("b", CoreKind::Memory, 1.0, 1.0, 100.0));
        s.add_flow(TrafficFlow::new(a, b, 100.0, 10));
        s
    }

    fn freqs(n: usize) -> Vec<Frequency> {
        vec![Frequency::from_mhz(100.0); n + 1]
    }

    #[test]
    fn switches_attach_cores() {
        let spec = tiny_spec();
        let mut t = Topology::new(&spec, 2, freqs(2));
        let s0 = t.add_switch(Switch {
            name: "sw0.0".into(),
            island_ext: 0,
            cores: vec![CoreId::from_index(0)],
        });
        let s1 = t.add_switch(Switch {
            name: "sw1.0".into(),
            island_ext: 1,
            cores: vec![CoreId::from_index(1)],
        });
        assert_eq!(t.switch_of_core(CoreId::from_index(0)), s0);
        assert_eq!(t.switch_of_core(CoreId::from_index(1)), s1);
        assert_eq!(t.switch_ports(s0), (1, 1));
    }

    #[test]
    fn links_and_ports_account() {
        let spec = tiny_spec();
        let mut t = Topology::new(&spec, 2, freqs(2));
        let s0 = t.add_switch(Switch {
            name: "a".into(),
            island_ext: 0,
            cores: vec![CoreId::from_index(0)],
        });
        let s1 = t.add_switch(Switch {
            name: "b".into(),
            island_ext: 1,
            cores: vec![CoreId::from_index(1)],
        });
        let l = t.open_link(TopoLink {
            from: s0,
            to: s1,
            capacity: Bandwidth::from_mbps(400.0),
            load: Bandwidth::ZERO,
            kind: LinkKind::InterDirect,
            length_mm: 3.0,
        });
        t.add_load(l, Bandwidth::from_mbps(100.0));
        assert_eq!(t.find_link(s0, s1), Some(l));
        assert_eq!(t.find_link(s1, s0), None);
        assert_eq!(t.switch_ports(s0), (1, 2));
        assert_eq!(t.switch_ports(s1), (2, 1));
        assert!((t.link(l).load.mbps() - 100.0).abs() < 1e-9);
        assert!(t.link(l).crosses_domain());
    }

    #[test]
    fn routes_drive_switch_loads() {
        let spec = tiny_spec();
        let mut t = Topology::new(&spec, 1, freqs(1));
        let s0 = t.add_switch(Switch {
            name: "a".into(),
            island_ext: 0,
            cores: vec![CoreId::from_index(0), CoreId::from_index(1)],
        });
        t.set_route(Route {
            flow: FlowId::from_index(0),
            switches: vec![s0],
            latency_cycles: 3,
            crossings: 0,
        });
        let loads = t.switch_loads(&spec);
        assert!((loads[0].mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_removes_linkless_intermediate_switches() {
        let spec = tiny_spec();
        let mut t = Topology::new(&spec, 1, freqs(1));
        let s0 = t.add_switch(Switch {
            name: "sw".into(),
            island_ext: 0,
            cores: vec![CoreId::from_index(0), CoreId::from_index(1)],
        });
        t.add_switch(Switch {
            name: "mid.0".into(),
            island_ext: 1,
            cores: vec![],
        });
        t.set_route(Route {
            flow: FlowId::from_index(0),
            switches: vec![s0],
            latency_cycles: 3,
            crossings: 0,
        });
        assert_eq!(t.intermediate_switch_count(), 1);
        assert_eq!(t.prune_unused_intermediate(), 1);
        assert_eq!(t.intermediate_switch_count(), 0);
        assert_eq!(t.switches().len(), 1);
        // Core mapping survived the renumbering.
        assert_eq!(t.switch_of_core(CoreId::from_index(0)), SwitchId(0));
    }
}
