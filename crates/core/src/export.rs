//! Human-readable and Graphviz exports of synthesized topologies
//! (backs the Figure 4 reproduction).

use crate::topology::Topology;
use std::fmt::Write as _;
use vi_noc_soc::{SocSpec, ViAssignment};

/// Renders the topology as a Graphviz `digraph`, clustered by voltage
/// island (cores as boxes, switches as circles, converter links dashed).
pub fn to_dot(spec: &SocSpec, vi: &ViAssignment, topo: &Topology) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph noc {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [fontsize=10];");
    let mid = vi.island_count();

    for isl in 0..=mid {
        let members: Vec<String> = topo
            .switch_ids()
            .filter(|&sw| topo.switch(sw).island_ext == isl)
            .map(|sw| format!("    \"{}\" [shape=circle];", topo.switch(sw).name))
            .collect();
        let cores: Vec<String> = if isl < mid {
            spec.core_ids()
                .filter(|&c| vi.island_of(c) == isl)
                .map(|c| format!("    \"{}\" [shape=box];", spec.core(c).name))
                .collect()
        } else {
            Vec::new()
        };
        if members.is_empty() && cores.is_empty() {
            continue;
        }
        let label = if isl == mid {
            "intermediate NoC VI (always on)".to_string()
        } else {
            format!(
                "VI {isl}{}",
                if vi.always_on_islands()[isl] {
                    " (always on)"
                } else {
                    ""
                }
            )
        };
        let _ = writeln!(s, "  subgraph cluster_{isl} {{");
        let _ = writeln!(s, "    label=\"{label}\";");
        for line in cores.iter().chain(members.iter()) {
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "  }}");
    }

    // NI links.
    for c in spec.core_ids() {
        let sw = topo.switch_of_core(c);
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [dir=both, color=gray];",
            spec.core(c).name,
            topo.switch(sw).name
        );
    }
    // Switch links.
    for l in topo.links() {
        let style = if l.crosses_domain() {
            "style=dashed, label=\"bisync\""
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [{}];",
            topo.switch(l.from).name,
            topo.switch(l.to).name,
            style
        );
    }
    let _ = writeln!(s, "}}");
    s
}

/// One-line-per-switch / per-link summary table of a topology.
pub fn topology_summary(spec: &SocSpec, vi: &ViAssignment, topo: &Topology) -> String {
    let mut s = String::new();
    let mid = vi.island_count();
    let _ = writeln!(
        s,
        "topology: {} switches ({} intermediate), {} links ({} crossings)",
        topo.switches().len(),
        topo.intermediate_switch_count(),
        topo.links().len(),
        topo.links().iter().filter(|l| l.crosses_domain()).count()
    );
    for sw in topo.switch_ids() {
        let info = topo.switch(sw);
        let (inp, outp) = topo.switch_ports(sw);
        let island = if info.island_ext == mid {
            "mid".to_string()
        } else {
            format!("VI{}", info.island_ext)
        };
        let cores: Vec<&str> = info
            .cores
            .iter()
            .map(|&c| spec.core(c).name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "  {:8} [{island:>4}] {}x{} @ {:.0} MHz  cores: {}",
            info.name,
            inp,
            outp,
            topo.island_frequency(info.island_ext).mhz(),
            if cores.is_empty() {
                "-".to_string()
            } else {
                cores.join(", ")
            }
        );
    }
    for l in topo.links() {
        let _ = writeln!(
            s,
            "  link {} -> {}  load {:.0}/{:.0} MB/s{}",
            topo.switch(l.from).name,
            topo.switch(l.to).name,
            l.load.mbps(),
            l.capacity.mbps(),
            if l.crosses_domain() { "  [bisync]" } else { "" }
        );
    }
    s
}

/// Per-flow routing table (flow, path of switches, latency, crossings).
pub fn routes_table(spec: &SocSpec, topo: &Topology) -> String {
    let mut s = String::new();
    for route in topo.routes() {
        let f = spec.flow(route.flow);
        let path: Vec<&str> = route
            .switches
            .iter()
            .map(|&sw| topo.switch(sw).name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "  {:>6} {:>10} -> {:<10} {:>6.0} MB/s  lat {:>2}/{:<3}  via {}",
            route.flow.to_string(),
            spec.core(f.src).name,
            spec.core(f.dst).name,
            f.bandwidth.mbps(),
            route.latency_cycles,
            f.max_latency_cycles,
            path.join(" -> ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn design() -> (SocSpec, ViAssignment, Topology) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        (soc, vi, topo)
    }

    #[test]
    fn dot_export_is_wellformed() {
        let (soc, vi, topo) = design();
        let dot = to_dot(&soc, &vi, &topo);
        assert!(dot.starts_with("digraph noc {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every switch and core appears.
        for sw in topo.switches() {
            assert!(dot.contains(&sw.name), "missing switch {}", sw.name);
        }
        for c in soc.cores() {
            assert!(dot.contains(&c.name), "missing core {}", c.name);
        }
        assert!(dot.matches("subgraph cluster_").count() >= 4);
    }

    #[test]
    fn summary_counts_match_topology() {
        let (soc, vi, topo) = design();
        let sum = topology_summary(&soc, &vi, &topo);
        assert!(sum.contains(&format!("{} switches", topo.switches().len())));
        assert!(sum.contains(&format!("{} links", topo.links().len())));
    }

    #[test]
    fn routes_table_lists_every_flow() {
        let (soc, _, topo) = design();
        let table = routes_table(&soc, &topo);
        assert_eq!(table.lines().count(), soc.flow_count());
    }
}
