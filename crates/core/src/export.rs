//! Human-readable, Graphviz and machine-readable JSON exports of
//! synthesized topologies and design spaces (the DOT export backs the
//! Figure 4 reproduction; the JSON export backs the sharded-sweep
//! checkpoint format of the `vi-noc-sweep` crate).

use crate::design_space::{DesignPoint, DesignSpace};
use crate::metrics::DesignMetrics;
use crate::topology::{LinkKind, Topology};
use std::fmt::Write as _;
use vi_noc_soc::{SocSpec, ViAssignment};

/// Renders the topology as a Graphviz `digraph`, clustered by voltage
/// island (cores as boxes, switches as circles, converter links dashed).
pub fn to_dot(spec: &SocSpec, vi: &ViAssignment, topo: &Topology) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph noc {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [fontsize=10];");
    let mid = vi.island_count();

    for isl in 0..=mid {
        let members: Vec<String> = topo
            .switch_ids()
            .filter(|&sw| topo.switch(sw).island_ext == isl)
            .map(|sw| format!("    \"{}\" [shape=circle];", topo.switch(sw).name))
            .collect();
        let cores: Vec<String> = if isl < mid {
            spec.core_ids()
                .filter(|&c| vi.island_of(c) == isl)
                .map(|c| format!("    \"{}\" [shape=box];", spec.core(c).name))
                .collect()
        } else {
            Vec::new()
        };
        if members.is_empty() && cores.is_empty() {
            continue;
        }
        let label = if isl == mid {
            "intermediate NoC VI (always on)".to_string()
        } else {
            format!(
                "VI {isl}{}",
                if vi.always_on_islands()[isl] {
                    " (always on)"
                } else {
                    ""
                }
            )
        };
        let _ = writeln!(s, "  subgraph cluster_{isl} {{");
        let _ = writeln!(s, "    label=\"{label}\";");
        for line in cores.iter().chain(members.iter()) {
            let _ = writeln!(s, "{line}");
        }
        let _ = writeln!(s, "  }}");
    }

    // NI links.
    for c in spec.core_ids() {
        let sw = topo.switch_of_core(c);
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [dir=both, color=gray];",
            spec.core(c).name,
            topo.switch(sw).name
        );
    }
    // Switch links.
    for l in topo.links() {
        let style = if l.crosses_domain() {
            "style=dashed, label=\"bisync\""
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [{}];",
            topo.switch(l.from).name,
            topo.switch(l.to).name,
            style
        );
    }
    let _ = writeln!(s, "}}");
    s
}

/// One-line-per-switch / per-link summary table of a topology.
pub fn topology_summary(spec: &SocSpec, vi: &ViAssignment, topo: &Topology) -> String {
    let mut s = String::new();
    let mid = vi.island_count();
    let _ = writeln!(
        s,
        "topology: {} switches ({} intermediate), {} links ({} crossings)",
        topo.switches().len(),
        topo.intermediate_switch_count(),
        topo.links().len(),
        topo.links().iter().filter(|l| l.crosses_domain()).count()
    );
    for sw in topo.switch_ids() {
        let info = topo.switch(sw);
        let (inp, outp) = topo.switch_ports(sw);
        let island = if info.island_ext == mid {
            "mid".to_string()
        } else {
            format!("VI{}", info.island_ext)
        };
        let cores: Vec<&str> = info
            .cores
            .iter()
            .map(|&c| spec.core(c).name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "  {:8} [{island:>4}] {}x{} @ {:.0} MHz  cores: {}",
            info.name,
            inp,
            outp,
            topo.island_frequency(info.island_ext).mhz(),
            if cores.is_empty() {
                "-".to_string()
            } else {
                cores.join(", ")
            }
        );
    }
    for l in topo.links() {
        let _ = writeln!(
            s,
            "  link {} -> {}  load {:.0}/{:.0} MB/s{}",
            topo.switch(l.from).name,
            topo.switch(l.to).name,
            l.load.mbps(),
            l.capacity.mbps(),
            if l.crosses_domain() { "  [bisync]" } else { "" }
        );
    }
    s
}

/// Per-flow routing table (flow, path of switches, latency, crossings).
pub fn routes_table(spec: &SocSpec, topo: &Topology) -> String {
    let mut s = String::new();
    for route in topo.routes() {
        let f = spec.flow(route.flow);
        let path: Vec<&str> = route
            .switches
            .iter()
            .map(|&sw| topo.switch(sw).name.as_str())
            .collect();
        let _ = writeln!(
            s,
            "  {:>6} {:>10} -> {:<10} {:>6.0} MB/s  lat {:>2}/{:<3}  via {}",
            route.flow.to_string(),
            spec.core(f.src).name,
            spec.core(f.dst).name,
            f.bandwidth.mbps(),
            route.latency_cycles,
            f.max_latency_cycles,
            path.join(" -> ")
        );
    }
    s
}

// --- Machine-readable JSON -----------------------------------------------
//
// Serde-free by necessity (no registry access) and by design: the writers
// below are *byte-deterministic* — fixed key order, compact layout, and
// numbers in Rust's shortest round-trip `Display` form — so two serializations
// of bit-identical values are bit-identical strings. The sharded sweep's
// "merge == unsharded run" guarantee rests on that.

/// Formats a finite `f64` as a JSON number.
///
/// Uses Rust's shortest round-trip formatting (no exponents, `1` for `1.0`),
/// so `s.parse::<f64>()` returns the exact input value and re-formatting the
/// parsed value reproduces the exact string.
///
/// # Panics
///
/// Debug builds assert that `x` is finite; synthesized metrics never
/// produce NaNs or infinities.
pub fn json_number(x: f64) -> String {
    debug_assert!(x.is_finite(), "JSON cannot represent {x}");
    format!("{x}")
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a sequence of machine-size integers as a compact JSON array
/// (`[1,2,3]`) — shared by the topology/metrics emitters here and the sweep
/// crate's checkpoint descriptors (refinement windows).
pub fn json_usize_array(values: impl IntoIterator<Item = usize>) -> String {
    let items: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn link_kind_str(kind: LinkKind) -> &'static str {
    match kind {
        LinkKind::Intra => "intra",
        LinkKind::InterDirect => "inter_direct",
        LinkKind::Intermediate => "intermediate",
    }
}

/// Renders a topology as one compact JSON object: extended-island clocks,
/// switches (with attached core indices), links and routes.
pub fn topology_json(topo: &Topology) -> String {
    let mut s = String::new();
    let n = topo.island_count();
    let freqs: Vec<String> = (0..=n)
        .map(|i| json_number(topo.island_frequency(i).hz()))
        .collect();
    let _ = write!(
        s,
        "{{\"island_count\":{n},\"island_freq_hz\":[{}],\"switches\":[",
        freqs.join(",")
    );
    for (i, sw) in topo.switches().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":{},\"island\":{},\"cores\":{}}}",
            json_string(&sw.name),
            sw.island_ext,
            json_usize_array(sw.cores.iter().map(|c| c.index()))
        );
    }
    s.push_str("],\"links\":[");
    for (i, l) in topo.links().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"from\":{},\"to\":{},\"kind\":{},\"capacity_bytes_per_s\":{},\
             \"load_bytes_per_s\":{},\"length_mm\":{}}}",
            l.from.index(),
            l.to.index(),
            json_string(link_kind_str(l.kind)),
            json_number(l.capacity.bytes_per_s()),
            json_number(l.load.bytes_per_s()),
            json_number(l.length_mm)
        );
    }
    s.push_str("],\"routes\":[");
    for (i, r) in topo.routes().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"flow\":{},\"switches\":{},\"latency_cycles\":{},\"crossings\":{}}}",
            r.flow.index(),
            json_usize_array(r.switches.iter().map(|sw| sw.index())),
            r.latency_cycles,
            r.crossings
        );
    }
    s.push_str("]}");
    s
}

/// Renders design metrics as one compact JSON object (powers in mW, area
/// in mm²) — the `"metrics"` member of [`design_point_json`], exposed so
/// the scenario report can serialize floorplan-realized metrics with the
/// identical layout.
pub fn metrics_json(m: &DesignMetrics) -> String {
    format!(
        "{{\"power_mw\":{{\"switches\":{},\"links\":{},\"synchronizers\":{},\"nis\":{},\
         \"fig2\":{},\"total\":{}}},\"leakage_mw\":{},\"area_mm2\":{},\
         \"avg_latency_cycles\":{},\"max_latency_cycles\":{},\"switch_count\":{},\
         \"link_count\":{},\"crossing_count\":{}}}",
        json_number(m.power.switches.mw()),
        json_number(m.power.links.mw()),
        json_number(m.power.synchronizers.mw()),
        json_number(m.power.nis.mw()),
        json_number(m.power.fig2_power().mw()),
        json_number(m.noc_dynamic_power().mw()),
        json_number(m.leakage.mw()),
        json_number(m.area.mm2()),
        json_number(m.avg_latency_cycles),
        m.max_latency_cycles,
        m.switch_count,
        m.link_count,
        m.crossing_count
    )
}

/// Renders one design point as a compact JSON object: sweep provenance,
/// metrics (powers in mW, area in mm²) and the full topology.
pub fn design_point_json(p: &DesignPoint) -> String {
    format!(
        "{{\"sweep_index\":{},\"requested_intermediate\":{},\"switch_counts\":{},\
         \"metrics\":{},\"topology\":{}}}",
        p.sweep_index,
        p.requested_intermediate,
        json_usize_array(p.switch_counts.iter().copied()),
        metrics_json(&p.metrics),
        topology_json(&p.topology)
    )
}

/// Renders a whole design space as JSON, one point per line.
pub fn design_space_json(space: &DesignSpace) -> String {
    let mut s = format!(
        "{{\"spec_name\":{},\"island_count\":{},\"points\":[",
        json_string(&space.spec_name),
        space.island_count
    );
    for (i, p) in space.points.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&design_point_json(p));
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn design() -> (SocSpec, ViAssignment, Topology) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = space.min_power_point().unwrap().topology.clone();
        (soc, vi, topo)
    }

    #[test]
    fn dot_export_is_wellformed() {
        let (soc, vi, topo) = design();
        let dot = to_dot(&soc, &vi, &topo);
        assert!(dot.starts_with("digraph noc {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every switch and core appears.
        for sw in topo.switches() {
            assert!(dot.contains(&sw.name), "missing switch {}", sw.name);
        }
        for c in soc.cores() {
            assert!(dot.contains(&c.name), "missing core {}", c.name);
        }
        assert!(dot.matches("subgraph cluster_").count() >= 4);
    }

    #[test]
    fn summary_counts_match_topology() {
        let (soc, vi, topo) = design();
        let sum = topology_summary(&soc, &vi, &topo);
        assert!(sum.contains(&format!("{} switches", topo.switches().len())));
        assert!(sum.contains(&format!("{} links", topo.links().len())));
    }

    #[test]
    fn routes_table_lists_every_flow() {
        let (soc, _, topo) = design();
        let table = routes_table(&soc, &topo);
        assert_eq!(table.lines().count(), soc.flow_count());
    }

    #[test]
    fn json_numbers_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            0.1,
            1.0 / 3.0,
            6.02e4,
            123456789.123456,
            f64::MIN_POSITIVE,
        ] {
            let s = json_number(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
            assert_eq!(json_number(back), s, "re-serialization of {s}");
        }
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn design_space_json_covers_every_point_and_flow() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let json = design_space_json(&space);
        assert!(json.starts_with("{\"spec_name\":\"d12_auto\""));
        assert_eq!(json.matches("\"sweep_index\":").count(), space.points.len());
        // Every point serializes all of its routes.
        let p = &space.points[0];
        let pj = design_point_json(p);
        assert_eq!(pj.matches("\"flow\":").count(), soc.flow_count());
        assert_eq!(pj.matches("\"name\":").count(), p.topology.switches().len());
        // Serialization is deterministic.
        assert_eq!(pj, design_point_json(p));
    }
}
