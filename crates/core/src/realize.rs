//! Floorplan realization: placing the NoC and recomputing wire-accurate
//! metrics (the last step of the paper's flow).

use crate::config::SynthesisConfig;
use crate::design_space::DesignPoint;
use crate::metrics::{compute_metrics, DesignMetrics};
use crate::topology::{LinkId, Topology};
use vi_noc_floorplan::{
    floorplan, manhattan, place_attachments, Attachment, FloorplanConfig, Module, Net, Placement,
};
use vi_noc_models::LinkModel;
use vi_noc_soc::{SocSpec, ViAssignment};

/// A design point realized on a floorplan.
#[derive(Debug, Clone)]
pub struct RealizedDesign {
    /// Core placement (module index = core index).
    pub placement: Placement,
    /// Switch positions (indexed by switch id), mm.
    pub switch_positions: Vec<(f64, f64)>,
    /// The topology with realized link lengths.
    pub topology: Topology,
    /// Metrics recomputed with Manhattan wire lengths.
    pub metrics: DesignMetrics,
    /// Links whose realized length misses timing at their clock —
    /// a real flow would pipeline them; reported for inspection.
    pub infeasible_links: Vec<LinkId>,
}

/// Places the cores with the island-cohesive annealing floorplanner, drops
/// switches at traffic-weighted centroids, measures every wire, and
/// recomputes the design metrics with real lengths.
pub fn realize_on_floorplan(
    spec: &SocSpec,
    vi: &ViAssignment,
    point: &DesignPoint,
    fp_cfg: &FloorplanConfig,
    cfg: &SynthesisConfig,
) -> RealizedDesign {
    // --- Core placement. ---------------------------------------------------
    let modules: Vec<Module> = spec
        .cores()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            Module::new(
                c.name.clone(),
                c.area.mm2(),
                vi.island_of(vi_noc_soc::CoreId::from_index(i)),
            )
        })
        .collect();
    let nets: Vec<Net> = spec
        .flows()
        .iter()
        .map(|f| Net::two_pin(f.src.index(), f.dst.index(), f.bandwidth.mbps()))
        .collect();
    let placement = floorplan(&modules, &nets, fp_cfg);

    // --- Switch insertion. ---------------------------------------------------
    let mut topology = point.topology.clone();
    // Pass 1: switches with attached cores sit at the bandwidth-weighted
    // centroid of their cores.
    let attachments: Vec<Attachment> = topology
        .switches()
        .iter()
        .map(|sw| {
            Attachment::new(
                sw.cores
                    .iter()
                    .map(|&c| {
                        let (inb, outb) = spec.core_io_bandwidth(c);
                        (c.index(), inb.mbps() + outb.mbps())
                    })
                    .collect(),
            )
        })
        .collect();
    let mut switch_positions = place_attachments(&placement, &attachments);
    // Pass 2: intermediate switches (no cores) move to the load-weighted
    // centroid of the switches they link to.
    for s in topology.switch_ids() {
        if !topology.switch(s).cores.is_empty() {
            continue;
        }
        let mut x = 0.0;
        let mut y = 0.0;
        let mut w = 0.0;
        for l in topology.links() {
            let (peer, load) = if l.from == s {
                (l.to, l.load.mbps())
            } else if l.to == s {
                (l.from, l.load.mbps())
            } else {
                continue;
            };
            let weight = load.max(1.0);
            x += switch_positions[peer.index()].0 * weight;
            y += switch_positions[peer.index()].1 * weight;
            w += weight;
        }
        if w > 0.0 {
            switch_positions[s.index()] = (x / w, y / w);
        }
    }

    // --- Wire lengths. -------------------------------------------------------
    let link_model = LinkModel::new(&cfg.technology, cfg.link_width_bits);
    let mut infeasible_links = Vec::new();
    let link_ids: Vec<LinkId> = topology.link_ids().collect();
    for lid in link_ids {
        let l = topology.link(lid);
        let len = manhattan(
            switch_positions[l.from.index()],
            switch_positions[l.to.index()],
        );
        // The link is clocked by the slower of its two domains.
        let f_from = topology.island_frequency(topology.switch(l.from).island_ext);
        let f_to = topology.island_frequency(topology.switch(l.to).island_ext);
        let f = if f_from < f_to { f_from } else { f_to };
        if !link_model.is_feasible(len, f) {
            infeasible_links.push(lid);
        }
        topology.set_link_length(lid, len);
    }
    let ni_lengths: Vec<f64> = spec
        .core_ids()
        .map(|c| {
            let s = topology.switch_of_core(c);
            manhattan(placement.center(c.index()), switch_positions[s.index()])
        })
        .collect();

    let metrics = compute_metrics(spec, &topology, cfg, Some(&ni_lengths));
    RealizedDesign {
        placement,
        switch_positions,
        topology,
        metrics,
        infeasible_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn quick_fp() -> FloorplanConfig {
        FloorplanConfig {
            iterations: 4_000,
            ..FloorplanConfig::default()
        }
    }

    fn realized() -> (SocSpec, RealizedDesign) {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        let point = space.min_power_point().unwrap();
        let r = realize_on_floorplan(&soc, &vi, point, &quick_fp(), &cfg);
        (soc, r)
    }

    #[test]
    fn all_components_are_placed() {
        let (soc, r) = realized();
        assert_eq!(r.placement.rect_count(), soc.core_count());
        assert_eq!(r.switch_positions.len(), r.topology.switches().len());
        assert!(r.placement.is_overlap_free());
        // Switches sit inside (or at the edge of) the die.
        let (dw, dh) = r.placement.die();
        for &(x, y) in &r.switch_positions {
            assert!(x >= -1e-9 && x <= dw + 1e-9);
            assert!(y >= -1e-9 && y <= dh + 1e-9);
        }
    }

    #[test]
    fn realized_lengths_replace_estimates() {
        let (_, r) = realized();
        // At least one link should have a length different from the three
        // estimation constants.
        let est = [1.5, 2.5, 3.5];
        assert!(r
            .topology
            .links()
            .iter()
            .any(|l| est.iter().all(|e| (l.length_mm - e).abs() > 1e-9)));
    }

    #[test]
    fn wire_accurate_metrics_are_computed() {
        let (_, r) = realized();
        assert!(r.metrics.power.links.mw() > 0.0);
        assert!(r.metrics.noc_dynamic_power().mw() > 0.0);
    }

    #[test]
    fn few_or_no_infeasible_links() {
        let (_, r) = realized();
        // Mobile-SoC dies are small; unpipelined links at a few hundred MHz
        // should essentially always meet timing.
        assert!(
            r.infeasible_links.len() <= r.topology.links().len() / 4,
            "{} of {} links infeasible",
            r.infeasible_links.len(),
            r.topology.links().len()
        );
    }
}
