//! Power/latency Pareto dominance, shared by [`crate::DesignSpace`] and the
//! streaming sweep fold of the `vi-noc-sweep` crate.
//!
//! # Dominance semantics
//!
//! Every point is keyed by `(power, latency, ordinal)` where `ordinal` is a
//! stable exploration index. Point `q` *dominates* point `p` iff `q` sorts
//! strictly before `p` lexicographically **and** `q.latency <= p.latency` —
//! i.e. `q` is no worse on both axes and strictly better on power, latency,
//! or (for bit-equal metrics) exploration order. The front is the set of
//! undominated points, ordered by increasing power.
//!
//! The relation is deliberately epsilon-free: it is a strict partial order
//! (irreflexive, transitive, antisymmetric), which buys the property the
//! sharded sweep depends on — *survival is pairwise and order-independent*.
//! A point is on the front iff no other point of the whole set dominates it,
//! so folding points one at a time ([`ParetoFold`]), folding shard-local
//! fronts, or scanning the full sorted set ([`front_of`]) all produce the
//! identical front, bit for bit. (An epsilon tolerance would break
//! transitivity: `a` within epsilon of `b` and `b` within epsilon of `c`
//! does not put `a` within epsilon of `c`, and shard merges could then
//! disagree with the unsharded scan.)

/// Sort/dominance key of one design point: total power in mW, mean zero-load
/// latency in cycles, and a stable exploration ordinal for tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoKey {
    /// Total NoC dynamic power, mW (lower is better).
    pub power_mw: f64,
    /// Mean zero-load latency, cycles (lower is better).
    pub latency_cycles: f64,
    /// Stable exploration index; among bit-equal metrics the earliest
    /// explored point wins, so results never depend on evaluation order.
    pub ordinal: u64,
}

impl ParetoKey {
    /// Strict lexicographic `(power, latency, ordinal)` order.
    ///
    /// Both metrics must be finite (guaranteed for synthesized designs);
    /// ordinals are assumed unique, so two distinct keys always order.
    pub fn sorts_before(&self, other: &ParetoKey) -> bool {
        debug_assert!(self.power_mw.is_finite() && self.latency_cycles.is_finite());
        if self.power_mw != other.power_mw {
            return self.power_mw < other.power_mw;
        }
        if self.latency_cycles != other.latency_cycles {
            return self.latency_cycles < other.latency_cycles;
        }
        self.ordinal < other.ordinal
    }

    /// `true` iff `self` dominates `other`: no worse on either axis and
    /// strictly better on power, latency, or exploration order.
    pub fn dominates(&self, other: &ParetoKey) -> bool {
        self.sorts_before(other) && self.latency_cycles <= other.latency_cycles
    }
}

/// Index of the minimum of `key` over `items` (first of equal minima,
/// matching `Iterator::min_by` with a `partial_cmp` fallback), or `None` for
/// an empty slice. Backs [`crate::DesignSpace::min_power_point`] and
/// [`crate::DesignSpace::min_latency_point`].
pub fn argmin<T>(items: &[T], key: impl Fn(&T) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        match best {
            Some((_, kb)) if k < kb => best = Some((i, k)),
            None => best = Some((i, k)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the Pareto front of `keys`, ordered by increasing
/// `(power, latency, ordinal)`.
///
/// Equivalent to offering every key to a [`ParetoFold`] and sorting the
/// survivors — the scan over the sorted set is just cheaper when all points
/// are already materialized.
pub fn front_of(keys: &[ParetoKey]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| {
        if keys[a].sorts_before(&keys[b]) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    let mut front = Vec::new();
    let mut best_latency = f64::INFINITY;
    for i in order {
        // Every earlier key sorts before this one, so it is dominated iff
        // any of them has latency <= this latency — i.e. iff this latency
        // does not strictly improve on the best so far.
        if keys[i].latency_cycles < best_latency {
            best_latency = keys[i].latency_cycles;
            front.push(i);
        }
    }
    front
}

/// A bounded-memory streaming Pareto fold: feed it `(key, value)` outcomes
/// one at a time and it retains exactly the undominated ones.
///
/// Because dominance is a strict partial order, the retained set after any
/// sequence of [`ParetoFold::offer`]s equals the front of the full multiset
/// offered so far, regardless of order — a dominated point is always killed
/// either by a current survivor or by a chain of removals ending in one.
/// [`ParetoFold::absorb`] merges two folds with the same guarantee, which is
/// what makes sharded sweeps exact: merging shard-local fronts reproduces
/// the unsharded front bit for bit.
///
/// Memory is bounded by the front size (points with pairwise incomparable
/// power/latency), not by the number of candidates offered.
#[derive(Debug, Clone, Default)]
pub struct ParetoFold<T> {
    entries: Vec<(ParetoKey, T)>,
}

impl<T> ParetoFold<T> {
    /// An empty fold.
    pub fn new() -> Self {
        ParetoFold {
            entries: Vec::new(),
        }
    }

    /// Offers one point. Returns `true` if it joined the front (possibly
    /// evicting dominated survivors), `false` if it was dominated.
    pub fn offer(&mut self, key: ParetoKey, value: T) -> bool {
        if self.entries.iter().any(|(k, _)| k.dominates(&key)) {
            return false;
        }
        self.entries.retain(|(k, _)| !key.dominates(k));
        self.entries.push((key, value));
        true
    }

    /// Merges another fold into this one (exact, order-independent).
    pub fn absorb(&mut self, other: ParetoFold<T>) {
        for (key, value) in other.entries {
            self.offer(key, value);
        }
    }

    /// `true` iff `key` is dominated by a current survivor — offering it
    /// now would leave the front unchanged.
    ///
    /// Because dominance is transitive and the survivors are exactly the
    /// front of everything offered so far, checking against survivors alone
    /// is exact: any key dominated by *some* offered point is dominated by
    /// a current survivor. This is what the sweep pruning proofs check —
    /// every skipped chain's force-evaluated points must satisfy it.
    pub fn is_dominated(&self, key: &ParetoKey) -> bool {
        self.entries.iter().any(|(k, _)| k.dominates(key))
    }

    /// Number of current survivors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing offered so far survived (or nothing was offered).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the current survivors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(ParetoKey, T)> {
        self.entries.iter()
    }

    /// Consumes the fold, returning the front ordered by increasing
    /// `(power, latency, ordinal)`.
    pub fn into_sorted(self) -> Vec<(ParetoKey, T)> {
        let mut entries = self.entries;
        entries.sort_by(|(a, _), (b, _)| {
            if a.sorts_before(b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: f64, l: f64, o: u64) -> ParetoKey {
        ParetoKey {
            power_mw: p,
            latency_cycles: l,
            ordinal: o,
        }
    }

    #[test]
    fn dominance_is_strict_and_antisymmetric() {
        let a = key(1.0, 5.0, 0);
        let b = key(2.0, 4.0, 1);
        let c = key(2.0, 6.0, 2);
        assert!(!a.dominates(&b) && !b.dominates(&a), "trade-off points");
        assert!(a.dominates(&c), "better on both axes");
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "irreflexive");
        // Bit-equal metrics: the earlier ordinal wins.
        let d = key(1.0, 5.0, 7);
        assert!(a.dominates(&d) && !d.dominates(&a));
    }

    #[test]
    fn fold_matches_front_of_in_any_order() {
        let keys = vec![
            key(3.0, 2.0, 0),
            key(1.0, 6.0, 1),
            key(2.0, 4.0, 2),
            key(2.5, 4.0, 3), // dominated by ordinal 2
            key(2.0, 4.0, 4), // bit-equal to ordinal 2, loses the tie
            key(0.5, 9.0, 5),
            key(4.0, 1.0, 6),
        ];
        let want: Vec<ParetoKey> = front_of(&keys).into_iter().map(|i| keys[i]).collect();
        assert_eq!(want.len(), 5);

        // Offer in several permutations; the surviving front never changes.
        let orders: Vec<Vec<usize>> = vec![
            (0..keys.len()).collect(),
            (0..keys.len()).rev().collect(),
            vec![3, 1, 4, 0, 6, 2, 5],
        ];
        for order in orders {
            let mut fold = ParetoFold::new();
            for &i in &order {
                fold.offer(keys[i], i);
            }
            let got: Vec<ParetoKey> = fold.into_sorted().into_iter().map(|(k, _)| k).collect();
            assert_eq!(got, want, "order {order:?}");
        }
    }

    #[test]
    fn absorbing_shard_folds_is_exact() {
        // Split a point set into stripes, fold each, merge: identical to the
        // unsharded fold.
        let keys: Vec<ParetoKey> = (0..40)
            .map(|i| {
                let p = (i as f64 * 7.3) % 11.0;
                let l = (i as f64 * 3.7) % 13.0;
                key(p, l, i)
            })
            .collect();
        let mut full = ParetoFold::new();
        for &k in &keys {
            full.offer(k, ());
        }
        let want: Vec<ParetoKey> = full.into_sorted().into_iter().map(|(k, _)| k).collect();
        for n in [1usize, 2, 3, 7] {
            let mut merged = ParetoFold::new();
            for s in 0..n {
                let mut shard = ParetoFold::new();
                for (i, &k) in keys.iter().enumerate() {
                    if i % n == s {
                        shard.offer(k, ());
                    }
                }
                merged.absorb(shard);
            }
            let got: Vec<ParetoKey> = merged.into_sorted().into_iter().map(|(k, _)| k).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn is_dominated_agrees_with_offer() {
        let keys = vec![
            key(3.0, 2.0, 0),
            key(1.0, 6.0, 1),
            key(2.0, 4.0, 2),
            key(2.5, 4.0, 3),
            key(2.0, 4.0, 4),
        ];
        let mut fold = ParetoFold::new();
        for &k in &keys {
            fold.offer(k, ());
        }
        for &k in &keys {
            // A key the fold would reject is exactly a dominated key; the
            // survivors themselves are never dominated (irreflexivity).
            let mut probe = fold.clone();
            assert_eq!(fold.is_dominated(&k), !probe.offer(k, ()));
        }
        assert!(fold.is_dominated(&key(9.0, 9.0, 100)));
        assert!(!fold.is_dominated(&key(0.1, 0.1, 100)));
    }

    #[test]
    fn argmin_returns_first_of_equal_minima() {
        let v = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(argmin(&v, |&x| x), Some(1));
        assert_eq!(argmin::<f64>(&[], |&x| x), None);
    }
}
