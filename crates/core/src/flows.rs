//! Inter-switch flow derivation and ordering (Algorithm 1, step 15 prep).

use crate::topology::{SwitchId, Topology};
use vi_noc_models::Bandwidth;
use vi_noc_soc::{FlowId, SocSpec};

/// A traffic flow lifted to the switch level.
#[derive(Debug, Clone, PartialEq)]
pub struct InterSwitchFlow {
    /// The underlying SoC flow.
    pub flow: FlowId,
    /// Switch of the producing core.
    pub src_switch: SwitchId,
    /// Switch of the consuming core.
    pub dst_switch: SwitchId,
    /// Source (real) island.
    pub src_island: usize,
    /// Destination (real) island.
    pub dst_island: usize,
    /// Bandwidth requirement.
    pub bandwidth: Bandwidth,
    /// Zero-load latency constraint, cycles.
    pub max_latency_cycles: u32,
}

/// Lifts every SoC flow to the switch level and orders the list by
/// decreasing bandwidth — the allocation order of the paper ("Choose flows
/// in bandwidth order and find the paths").
///
/// Ties are broken by flow id for determinism.
pub fn inter_switch_flows(spec: &SocSpec, topo: &Topology) -> Vec<InterSwitchFlow> {
    let mut flows: Vec<InterSwitchFlow> = spec
        .flow_ids()
        .map(|fid| {
            let f = spec.flow(fid);
            let src_switch = topo.switch_of_core(f.src);
            let dst_switch = topo.switch_of_core(f.dst);
            InterSwitchFlow {
                flow: fid,
                src_switch,
                dst_switch,
                src_island: topo.switch(src_switch).island_ext,
                dst_island: topo.switch(dst_switch).island_ext,
                bandwidth: f.bandwidth,
                max_latency_cycles: f.max_latency_cycles,
            }
        })
        .collect();
    flows.sort_by(|a, b| {
        b.bandwidth
            .partial_cmp(&a.bandwidth)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.flow.cmp(&b.flow))
    });
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Switch;
    use vi_noc_models::Frequency;
    use vi_noc_soc::{CoreId, CoreKind, CoreSpec, TrafficFlow};

    fn spec_and_topo() -> (SocSpec, Topology) {
        let mut s = SocSpec::new("t");
        let a = s.add_core(CoreSpec::new("a", CoreKind::Cpu, 1.0, 1.0, 100.0));
        let b = s.add_core(CoreSpec::new("b", CoreKind::Memory, 1.0, 1.0, 100.0));
        let c = s.add_core(CoreSpec::new("c", CoreKind::Dsp, 1.0, 1.0, 100.0));
        s.add_flow(TrafficFlow::new(a, b, 100.0, 10));
        s.add_flow(TrafficFlow::new(b, c, 400.0, 20));
        s.add_flow(TrafficFlow::new(a, c, 400.0, 20));

        let mut t = Topology::new(&s, 2, vec![Frequency::from_mhz(100.0); 3]);
        t.add_switch(Switch {
            name: "sw0".into(),
            island_ext: 0,
            cores: vec![CoreId::from_index(0), CoreId::from_index(1)],
        });
        t.add_switch(Switch {
            name: "sw1".into(),
            island_ext: 1,
            cores: vec![CoreId::from_index(2)],
        });
        (s, t)
    }

    #[test]
    fn flows_sorted_by_bandwidth_desc_then_id() {
        let (s, t) = spec_and_topo();
        let flows = inter_switch_flows(&s, &t);
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].flow.index(), 1, "400 MB/s, lower id first");
        assert_eq!(flows[1].flow.index(), 2);
        assert_eq!(flows[2].flow.index(), 0);
    }

    #[test]
    fn islands_and_switches_resolved() {
        let (s, t) = spec_and_topo();
        let flows = inter_switch_flows(&s, &t);
        let f0 = flows.iter().find(|f| f.flow.index() == 0).unwrap();
        assert_eq!(f0.src_switch, f0.dst_switch, "a and b share sw0");
        assert_eq!(f0.src_island, 0);
        let f1 = flows.iter().find(|f| f.flow.index() == 1).unwrap();
        assert_ne!(f1.src_switch, f1.dst_switch);
        assert_eq!(f1.dst_island, 1);
    }
}
