//! Baseline synthesizers the paper's evaluation compares against.

use crate::config::SynthesisConfig;
use crate::design_space::DesignSpace;
use crate::error::SynthesisError;
use crate::metrics::{compute_metrics, DesignMetrics};
use crate::synthesis::synthesize;
use vi_noc_models::{Bandwidth, BisyncFifoModel};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Result of the shutdown-oblivious baseline synthesis.
#[derive(Debug, Clone)]
pub struct ObliviousDesign {
    /// The explored design space (single logical island).
    pub space: DesignSpace,
}

/// Conventional application-specific NoC synthesis **without** voltage-island
/// support: all cores are treated as one synchronous domain, exactly like the
/// prior work \[12\]–\[15\] the paper positions against (and like the paper's own
/// 1-island reference point of Figures 2–3).
///
/// The resulting design cannot support gating any island — switches land
/// wherever traffic dictates — but its power/area are the reference that the
/// suite-wide overhead (T1: ≈3 % power, <0.5 % area) is measured from.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from the underlying synthesis.
pub fn synthesize_oblivious(
    spec: &SocSpec,
    cfg: &SynthesisConfig,
) -> Result<ObliviousDesign, SynthesisError> {
    let single = ViAssignment::new(spec, 1, vec![0; spec.core_count()]);
    let space = synthesize(spec, &single, cfg)?;
    Ok(ObliviousDesign { space })
}

/// The infeasible strawman of the paper's introduction: keep the whole NoC
/// powered by **clustering every switch in one dedicated always-on island**.
/// Every core then reaches the NoC through a domain crossing (bi-synchronous
/// FIFO) and long cross-chip wires.
///
/// Returns the metrics of the oblivious topology re-priced under those
/// assumptions — used by the motivation experiment to show why the paper
/// rejects this option (§1: "long wires are needed to connect all the cores
/// to the NoC island … the routing congestion would be enormous").
pub fn central_island_baseline(
    spec: &SocSpec,
    cfg: &SynthesisConfig,
) -> Result<DesignMetrics, SynthesisError> {
    let oblivious = synthesize_oblivious(spec, cfg)?;
    let point = oblivious
        .space
        .min_power_point()
        .expect("non-empty design space");
    // Long NI wires: every core must reach the central NoC cluster. Use
    // half the die half-perimeter as the typical wire length.
    let die_side = spec.total_core_area().mm2().sqrt() * 1.1;
    let ni_len = vec![die_side * 0.5; spec.core_count()];
    let mut metrics = compute_metrics(spec, &point.topology, cfg, Some(&ni_len));

    // Every NI link is now also a clock/voltage crossing.
    let fifo = BisyncFifoModel::new(&cfg.technology, cfg.link_width_bits);
    let noc_freq = point.topology.island_frequency(0);
    for id in spec.core_ids() {
        let (inb, outb) = spec.core_io_bandwidth(id);
        let bw = Bandwidth::from_bytes_per_s(inb.bytes_per_s() + outb.bytes_per_s());
        metrics.power.synchronizers += fifo.power(spec.core(id).clock, noc_freq, bw);
        metrics.area += fifo.area();
        metrics.leakage += fifo.leakage_power();
    }
    metrics.crossing_count += spec.core_count();
    // Every flow pays the crossing penalty twice (in and out of the island).
    let extra = 2 * BisyncFifoModel::CROSSING_LATENCY_CYCLES;
    metrics.avg_latency_cycles += extra as f64;
    metrics.max_latency_cycles += extra;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn oblivious_design_is_single_island() {
        let soc = benchmarks::d26_mobile();
        let d = synthesize_oblivious(&soc, &SynthesisConfig::default()).unwrap();
        assert_eq!(d.space.island_count, 1);
        let p = d.space.min_power_point().unwrap();
        assert_eq!(p.metrics.crossing_count, 0);
    }

    #[test]
    fn vi_support_costs_little_power() {
        // The headline claim (T1): VI-aware topology vs oblivious topology
        // differs by a few percent of *system* power, not a blowup.
        let soc = benchmarks::d26_mobile();
        let cfg = SynthesisConfig::default();
        let obl = synthesize_oblivious(&soc, &cfg).unwrap();
        let p_ref = obl
            .space
            .min_power_point()
            .unwrap()
            .metrics
            .noc_dynamic_power();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        let p_vi = space.min_power_point().unwrap().metrics.noc_dynamic_power();
        let system = soc.total_core_dyn_power();
        let overhead = (p_vi.mw() - p_ref.mw()) / system.mw();
        assert!(
            overhead < 0.10,
            "VI overhead {:.1}% of system power is too large",
            overhead * 100.0
        );
    }

    #[test]
    fn central_island_is_strictly_worse() {
        let soc = benchmarks::d26_mobile();
        let cfg = SynthesisConfig::default();
        let obl = synthesize_oblivious(&soc, &cfg).unwrap();
        let ref_metrics = &obl.space.min_power_point().unwrap().metrics;
        let central = central_island_baseline(&soc, &cfg).unwrap();
        assert!(
            central.noc_dynamic_power().mw() > ref_metrics.noc_dynamic_power().mw() * 1.3,
            "central island should pay heavily: {} vs {}",
            central.noc_dynamic_power().mw(),
            ref_metrics.noc_dynamic_power().mw()
        );
        assert!(central.avg_latency_cycles > ref_metrics.avg_latency_cycles + 7.0);
        assert_eq!(central.crossing_count, soc.core_count());
    }
}
