//! Synthesis errors.

use std::fmt;

/// Failure modes of [`crate::synthesize`] and related entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The spec failed validation before synthesis started.
    InvalidSpec(String),
    /// No explored design point satisfied all bandwidth and latency
    /// constraints.
    NoFeasibleDesign {
        /// Design points explored.
        explored: usize,
        /// Human-readable reason from the last failure.
        last_failure: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidSpec(msg) => write!(f, "invalid SoC spec: {msg}"),
            SynthesisError::NoFeasibleDesign {
                explored,
                last_failure,
            } => write!(
                f,
                "no feasible NoC design found after exploring {explored} points \
                 (last failure: {last_failure})"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SynthesisError::NoFeasibleDesign {
            explored: 12,
            last_failure: "flow f3 latency 14 > 10".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("f3"));
    }

    #[test]
    fn implements_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(SynthesisError::InvalidSpec("x".into()));
        assert!(e.to_string().contains("invalid"));
    }
}
