//! Synthesis errors.
//!
//! The workspace-wide error type of the scenario API (`vi_noc::Error`,
//! defined in the `vi-noc-api` crate) wraps this alongside the `soc`
//! layer's [`vi_noc_soc::SpecError`] and [`vi_noc_soc::PartitionError`];
//! the `From` conversions below let the lower layers' failures flow into
//! [`SynthesisError`] (and from there into the unified type) without
//! ad-hoc `.to_string()` plumbing at every call site.

use std::fmt;
use vi_noc_soc::{PartitionError, SpecError};

/// Failure modes of [`crate::synthesize`] and related entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The spec failed validation before synthesis started.
    InvalidSpec(String),
    /// No explored design point satisfied all bandwidth and latency
    /// constraints.
    NoFeasibleDesign {
        /// Design points explored.
        explored: usize,
        /// Human-readable reason from the last failure.
        last_failure: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidSpec(msg) => write!(f, "invalid SoC spec: {msg}"),
            SynthesisError::NoFeasibleDesign {
                explored,
                last_failure,
            } => write!(
                f,
                "no feasible NoC design found after exploring {explored} points \
                 (last failure: {last_failure})"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<SpecError> for SynthesisError {
    /// A malformed spec is an invalid synthesis input.
    fn from(e: SpecError) -> Self {
        SynthesisError::InvalidSpec(e.to_string())
    }
}

impl From<PartitionError> for SynthesisError {
    /// A malformed island assignment is an invalid synthesis input.
    fn from(e: PartitionError) -> Self {
        SynthesisError::InvalidSpec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SynthesisError::NoFeasibleDesign {
            explored: 12,
            last_failure: "flow f3 latency 14 > 10".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("f3"));
    }

    #[test]
    fn implements_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(SynthesisError::InvalidSpec("x".into()));
        assert!(e.to_string().contains("invalid"));
    }

    #[test]
    fn lower_layer_errors_convert() {
        let e: SynthesisError = SpecError::SelfFlow { flow: 3 }.into();
        assert!(e.to_string().contains("flow 3"));
        let e: SynthesisError = PartitionError::EmptyIsland { island: 2 }.into();
        assert!(e.to_string().contains("island 2"));
    }
}
