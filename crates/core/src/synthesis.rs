//! The synthesis driver — Algorithm 1 of the paper, staged as an explicit
//! design-space pipeline.
//!
//! The paper's nested sweep is embarrassingly parallel: every
//! (switch-count vector, intermediate-switch count) pair is an independent
//! candidate design. The driver therefore splits into three stages:
//!
//! 1. [`SweepPlan::build`] — frequency planning, VCG construction, and
//!    up-front enumeration of every [`SweepCandidate`];
//! 2. [`evaluate_candidate`] — a *pure* per-candidate stage: VCG min-cut
//!    partitioning into switches, bandwidth-ordered path allocation, and
//!    metric evaluation;
//! 3. [`synthesize`] — a fan-out over per-sweep-index candidate *chains*
//!    (rayon `par_iter` when [`SynthesisConfig::parallel`] is set, a plain
//!    iterator otherwise) folded into the [`DesignSpace`].
//!
//! The fan-out unit is a chain, not a single candidate, because all
//! intermediate-count candidates of one sweep index share their expensive
//! prefix: the chain evaluator builds one [`crate::paths`] allocation
//! context (candidate switch graph, power models, ordered flow list) per
//! sweep index and warm-starts candidate `(i, k+1)` from `(i, k)`'s
//! recorded allocation. Warm-starting is an exact optimization — it only
//! skips work whose result is provably unchanged — so every candidate's
//! outcome is bit-identical to the pure cold evaluation of
//! [`evaluate_candidate`], and both execution modes visit candidates in
//! the same order (the parallel map is order-preserving), producing
//! byte-identical design spaces. The sequential mode exists for
//! determinism checks and single-threaded profiling.

use crate::assign::{island_switch_assignment, switch_counts_for_sweep, SwitchAssignment};
use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::design_space::{DesignPoint, DesignSpace};
use crate::error::SynthesisError;
use crate::metrics::compute_metrics;
use crate::paths::{allocate_paths, allocate_paths_warm, AllocContext, CandidateRecord};
use crate::topology::Topology;
use crate::vcg::{build_vcg, Vcg};
use rayon::prelude::*;
use vi_noc_graph::SearchScratch;
use vi_noc_soc::{SocSpec, ViAssignment};

/// The pipeline's single fan-out primitive: an order-preserving map over
/// `items`, parallel or sequential by `parallel`. Both branches visit
/// items in order, which is what makes the two execution modes
/// interchangeable.
fn maybe_parallel_map<'a, T, U, F>(parallel: bool, items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    if parallel {
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

/// One candidate design of the sweep: a per-island switch-count vector plus
/// a requested intermediate-island switch count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCandidate {
    /// Sweep index `i` of Algorithm 1 (1 = minimum switch counts).
    pub sweep_index: usize,
    /// Per-island switch counts at this sweep index.
    pub switch_counts: Vec<usize>,
    /// Intermediate-island switch count `k` requested for this candidate.
    pub requested_intermediate: usize,
}

/// Stage 1 of the pipeline: everything the per-candidate stage needs,
/// computed once — the frequency plan (Algorithm 1 step 1), the per-island
/// VCGs, the min-cut switch assignment of every sweep index (steps 4–11;
/// shared by all intermediate-count candidates of that index), and the
/// full list of candidates (steps 12–14 unrolled).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    plan: FrequencyPlan,
    /// One [`SwitchAssignment`] per sweep index, at position
    /// `sweep_index - 1` (sweep indices are consecutive from 1).
    assignments: Vec<SwitchAssignment>,
    candidates: Vec<SweepCandidate>,
}

impl SweepPlan {
    /// Enumerates the design-space sweep for `spec` under `vi`.
    ///
    /// The switch-count sweep stops as soon as every island has saturated
    /// at one switch per core (higher sweep indices would repeat the same
    /// configuration); the intermediate sweep covers `0..=max` when the
    /// intermediate island is allowed and just `0` otherwise.
    pub fn build(spec: &SocSpec, vi: &ViAssignment, cfg: &SynthesisConfig) -> Self {
        let plan = FrequencyPlan::compute(spec, vi, cfg);
        let vcgs: Vec<Vcg> = (0..vi.island_count())
            .map(|j| build_vcg(spec, vi, j, cfg))
            .collect();

        let max_sweep = vcgs.iter().map(Vcg::len).max().unwrap_or(1);
        let mid_range: Vec<usize> = if cfg.allow_intermediate_vi {
            (0..=cfg.max_intermediate_switches).collect()
        } else {
            vec![0]
        };

        let mut count_vectors = Vec::new();
        let mut candidates = Vec::new();
        let mut prev_counts: Option<Vec<usize>> = None;
        for i in 1..=max_sweep {
            let counts = switch_counts_for_sweep(&vcgs, &plan, i);
            if prev_counts.as_ref() == Some(&counts) {
                break;
            }
            prev_counts = Some(counts.clone());
            for &k_mid in &mid_range {
                candidates.push(SweepCandidate {
                    sweep_index: i,
                    switch_counts: counts.clone(),
                    requested_intermediate: k_mid,
                });
            }
            count_vectors.push(counts);
        }

        // The min-cut partition of each sweep index is shared by all of
        // its intermediate-count candidates, so it is computed here once
        // per index (in parallel when configured — each assignment is a
        // pure function of its count vector).
        let assignments = maybe_parallel_map(cfg.parallel, &count_vectors, |counts| {
            island_switch_assignment(&vcgs, &plan, counts, cfg)
        });

        SweepPlan {
            plan,
            assignments,
            candidates,
        }
    }

    /// The core→switch grouping of sweep index `sweep_index`.
    ///
    /// # Panics
    ///
    /// If `sweep_index` is not one of the plan's (1-based, consecutive)
    /// sweep indices.
    pub fn assignment(&self, sweep_index: usize) -> &SwitchAssignment {
        sweep_index
            .checked_sub(1)
            .and_then(|i| self.assignments.get(i))
            .expect("sweep_index must be 1-based and within the plan")
    }

    /// The enumerated candidates, in exploration order.
    pub fn candidates(&self) -> &[SweepCandidate] {
        &self.candidates
    }

    /// Number of candidates the sweep will explore.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the sweep is empty (degenerate specs only).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The per-island frequency plan (step 1 of Algorithm 1).
    pub fn frequency_plan(&self) -> &FrequencyPlan {
        &self.plan
    }
}

/// Outcome of evaluating one [`SweepCandidate`].
#[derive(Debug, Clone)]
pub enum CandidateOutcome {
    /// The candidate produced a feasible design point.
    Feasible(Box<DesignPoint>),
    /// The allocator used fewer intermediate switches than requested; the
    /// identical topology is produced by the run that requested that
    /// smaller count, so this one is dropped.
    Duplicate,
    /// Path allocation could not satisfy every constraint; the reason is
    /// surfaced in [`SynthesisError::NoFeasibleDesign`] if no candidate
    /// succeeds.
    Infeasible(String),
}

/// Stage 2 of the pipeline: evaluates one candidate, independently of all
/// others — takes the candidate's min-cut switch assignment from the plan
/// (step 11), allocates min-cost shutdown-legal paths for every flow in
/// decreasing bandwidth order (steps 14–17), and computes the design
/// metrics.
///
/// The function is pure: it touches no shared mutable state, so candidates
/// can be evaluated in any order or concurrently with identical results.
pub fn evaluate_candidate(
    spec: &SocSpec,
    vi: &ViAssignment,
    sweep: &SweepPlan,
    candidate: &SweepCandidate,
    cfg: &SynthesisConfig,
) -> CandidateOutcome {
    let assignment = sweep.assignment(candidate.sweep_index);
    let result = allocate_paths(
        spec,
        vi,
        &sweep.plan,
        assignment,
        candidate.requested_intermediate,
        cfg,
    );
    candidate_outcome(result, candidate, spec, cfg)
}

/// Folds an allocation result into a [`CandidateOutcome`].
fn candidate_outcome(
    result: Result<Topology, String>,
    candidate: &SweepCandidate,
    spec: &SocSpec,
    cfg: &SynthesisConfig,
) -> CandidateOutcome {
    match result {
        Ok(topology) => {
            if topology.intermediate_switch_count() != candidate.requested_intermediate {
                return CandidateOutcome::Duplicate;
            }
            let metrics = compute_metrics(spec, &topology, cfg, None);
            CandidateOutcome::Feasible(Box::new(DesignPoint {
                sweep_index: candidate.sweep_index,
                requested_intermediate: candidate.requested_intermediate,
                switch_counts: candidate.switch_counts.clone(),
                topology,
                metrics,
            }))
        }
        Err(reason) => CandidateOutcome::Infeasible(reason),
    }
}

/// A per-island port-slack certificate distilled from one evaluated chain,
/// used by the sweep crate's dominance pruning to skip boost codes that
/// provably cannot improve the Pareto front.
///
/// The certificate is computed for a *reference* chain (a boost-free
/// switch-count vector) and answers: "would splitting island `j` into more
/// switches change anything the dominance key can see for the better?"
/// Extra switches help exactly where the reference allocation shows
/// *stress*: a port-exhausted switch forces detour routes (higher latency
/// and link power) or forces the min-cut partitioner to separate heavily
/// communicating cores (its part-weight cap equals the switch size
/// budget). Island `j` is **certified** when neither stress signal is
/// present:
///
/// * the certificate is globally *valid* — every candidate of the chain
///   allocated feasibly and without the port-reserve retry (the retry's
///   admissibility is count-dependent, so nothing is provable from it);
/// * every switch of island `j` finished with port headroom under its size
///   budget. Headroom subsumes the partition-pressure signal: a part at
///   the weight cap implies a switch whose core ports alone consume the
///   whole budget.
///
/// Unstressed islands gain nothing from more switches — a finer partition
/// only adds idle switch power and extra hops — so every boost code that
/// raises only certified islands is dominated by the boost-free reference
/// (identical metrics path, smaller ordinal) and may be skipped. Routes
/// longer than two switches are deliberately *not* treated as stress: with
/// free ports they are the cost optimizer choosing link reuse over opening
/// a direct link, which a boosted twin re-chooses identically.
///
/// The soundness contract is not a standalone theorem but the differential
/// harness in `crates/sweep/tests/prune_exact.rs`, which compares pruned
/// against exhaustive frontiers byte-for-byte and forces skipped chains
/// through the evaluator to assert their points are dominated. Tighten
/// `SlackCertificate::observe` if that harness ever finds a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackCertificate {
    valid: bool,
    island_slack: Vec<bool>,
}

impl SlackCertificate {
    fn fresh(islands: usize) -> Self {
        SlackCertificate {
            valid: true,
            island_slack: vec![true; islands],
        }
    }

    /// The certificate that certifies nothing (used when the reference
    /// chain hit a port-reserve retry or an infeasibility).
    pub fn invalid(islands: usize) -> Self {
        SlackCertificate {
            valid: false,
            island_slack: vec![false; islands],
        }
    }

    /// `true` when the chain-wide conditions held (no retry, no
    /// infeasibility).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// `true` when boosting island `j`'s switch-size budget is certified
    /// slack.
    pub fn island_certified(&self, j: usize) -> bool {
        self.valid && self.island_slack.get(j).copied().unwrap_or(false)
    }

    /// `true` when a chain whose per-island boosts are `boosts` may be
    /// skipped: at least one boost is nonzero and every nonzero boost
    /// raises a certified island. Boost-free chains are never skipped —
    /// they are the reference points the skipped chains are dominated by.
    pub fn certifies_skip(&self, boosts: &[usize]) -> bool {
        self.valid
            && boosts.iter().any(|&b| b > 0)
            && boosts
                .iter()
                .enumerate()
                .all(|(j, &b)| b == 0 || self.island_certified(j))
    }

    /// Fraction of a link's capacity that may be loaded before its endpoint
    /// islands stop being certifiable. A near-full link means flows were
    /// (or nearly were) detoured around it; splitting an endpoint switch
    /// adds a parallel link, so extra capacity there is not provably slack.
    const LINK_STRESS_UTILIZATION: f64 = 0.5;

    /// Folds one successful allocation's topology into the certificate.
    fn observe(&mut self, vi: &ViAssignment, plan: &FrequencyPlan, topo: &Topology) {
        if !self.valid {
            return;
        }
        let mid = vi.island_count();
        for s in topo.switch_ids() {
            let j = topo.switch(s).island_ext;
            if j >= mid {
                continue;
            }
            let (inp, outp) = topo.switch_ports(s);
            if inp.max(outp) >= plan.max_switch_size_ext(j) {
                // The allocator consumed island j's whole port budget
                // somewhere — late flows may have been detoured around this
                // switch, and the partitioner's part-weight cap was binding
                // — so more switches in j are not provably useless.
                self.island_slack[j] = false;
            }
        }
        for l in topo.links() {
            if l.load.bytes_per_s() <= Self::LINK_STRESS_UTILIZATION * l.capacity.bytes_per_s() {
                continue;
            }
            for s in [l.from, l.to] {
                let j = topo.switch(s).island_ext;
                if j < mid {
                    self.island_slack[j] = false;
                }
            }
        }
    }
}

/// Evaluates one chain of intermediate-count candidates that share a switch
/// assignment, building the allocation context once and warm-starting each
/// candidate from its predecessor's recorded allocation.
///
/// This is the streaming-consumption entry point of the pipeline: callers
/// that enumerate their own candidate grids (the `vi-noc-sweep` crate's
/// sharded sweep) feed one chain at a time — with an arbitrary switch-count
/// vector and possibly a scaled [`FrequencyPlan`] — and fold the returned
/// outcomes without ever materializing a [`DesignSpace`].
///
/// Outcome-equivalent to evaluating every candidate cold and independently
/// (asserted by the warm-start equivalence tests); the sharing only removes
/// redundant work, never changes a result.
///
/// Chain contract: every candidate must carry the same `sweep_index` and
/// `switch_counts` (matching `assignment`), with `requested_intermediate`
/// strictly ascending — the order the warm start and the Duplicate
/// short-circuit are proven for.
pub fn evaluate_candidate_chain(
    spec: &SocSpec,
    vi: &ViAssignment,
    plan: &FrequencyPlan,
    assignment: &SwitchAssignment,
    chain: &[SweepCandidate],
    cfg: &SynthesisConfig,
) -> Vec<CandidateOutcome> {
    evaluate_candidate_chain_with_certificate(spec, vi, plan, assignment, chain, cfg).0
}

/// [`evaluate_candidate_chain`] plus the chain's [`SlackCertificate`].
///
/// The outcomes are bit-identical to the plain evaluator's — the
/// certificate is a read-only distillation of the allocations the chain
/// produced anyway, so surfacing it costs one pass over each topology and
/// changes nothing about the results.
pub fn evaluate_candidate_chain_with_certificate(
    spec: &SocSpec,
    vi: &ViAssignment,
    plan: &FrequencyPlan,
    assignment: &SwitchAssignment,
    chain: &[SweepCandidate],
    cfg: &SynthesisConfig,
) -> (Vec<CandidateOutcome>, SlackCertificate) {
    debug_assert!(chain.windows(2).all(|w| {
        w[0].sweep_index == w[1].sweep_index
            && w[0].switch_counts == w[1].switch_counts
            && w[0].requested_intermediate < w[1].requested_intermediate
    }));
    let islands = vi.island_count();
    let mut cert = SlackCertificate::fresh(islands);
    let k_max = chain
        .iter()
        .map(|c| c.requested_intermediate)
        .max()
        .unwrap_or(0);
    let ctx = match AllocContext::build(spec, vi, plan, assignment, k_max, cfg) {
        Ok(ctx) => ctx,
        // The context pre-check (core counts vs switch size budgets) fails
        // identically for every candidate of the index.
        Err(reason) => {
            let outcomes = chain
                .iter()
                .map(|_| CandidateOutcome::Infeasible(reason.clone()))
                .collect();
            return (outcomes, SlackCertificate::invalid(islands));
        }
    };
    let mut scratch = SearchScratch::new();
    let mut prev: Option<CandidateRecord> = None;
    let mut outcomes = Vec::with_capacity(chain.len());
    let mut saturated = false;
    for candidate in chain {
        // Duplicate short-circuit: once a reserve-0 allocation left an
        // intermediate switch unused, every higher-count candidate of this
        // sweep index provably reproduces the same topology (see
        // `Allocation::has_spare_intermediate`), so it is a Duplicate
        // without running.
        if saturated {
            outcomes.push(CandidateOutcome::Duplicate);
            continue;
        }
        let mut record = CandidateRecord::default();
        let result = allocate_paths_warm(
            &ctx,
            candidate.requested_intermediate,
            cfg,
            &mut scratch,
            prev.as_ref(),
            Some(&mut record),
        );
        match &result {
            Ok(alloc) => {
                saturated = alloc.has_spare_intermediate(candidate.requested_intermediate);
                if alloc.via_retry {
                    cert = SlackCertificate::invalid(islands);
                } else {
                    cert.observe(vi, plan, &alloc.topology);
                }
            }
            Err(_) => cert = SlackCertificate::invalid(islands),
        }
        outcomes.push(candidate_outcome(
            result.map(|a| a.topology),
            candidate,
            spec,
            cfg,
        ));
        prev = Some(record);
    }
    (outcomes, cert)
}

/// Synthesizes the space of VI-aware NoC topologies for `spec` under the
/// island assignment `vi`.
///
/// Implements Algorithm 1:
///
/// 1. per-island NoC frequency and `max_sw_size_j` ([`FrequencyPlan`]),
/// 2. `min_sw_j = ceil(|V_j| / max_sw_size_j)`,
/// 3. sweep the per-island switch counts from the minimum up to one switch
///    per core, min-cut partitioning each island's VCG,
/// 4. for each switch-count vector, sweep the intermediate-island switch
///    count `k = 0..=max` and allocate min-cost paths for all flows in
///    decreasing bandwidth order,
/// 5. save every design point whose flows all meet their latency
///    constraints.
///
/// Candidates are evaluated concurrently when [`SynthesisConfig::parallel`]
/// is set; both modes return identical design spaces.
///
/// # Errors
///
/// * [`SynthesisError::InvalidSpec`] if `spec` fails validation;
/// * [`SynthesisError::NoFeasibleDesign`] if no explored point satisfies
///   all constraints.
pub fn synthesize(
    spec: &SocSpec,
    vi: &ViAssignment,
    cfg: &SynthesisConfig,
) -> Result<DesignSpace, SynthesisError> {
    spec.validate()
        .map_err(|e| SynthesisError::InvalidSpec(e.to_string()))?;

    let sweep = SweepPlan::build(spec, vi, cfg);
    // Fan out over per-sweep-index chains: candidates within a chain share
    // their allocation context and warm-start one another (see
    // `evaluate_chain`), so they must run on the same worker; distinct
    // sweep indices are independent.
    let candidates = sweep.candidates();
    let mut chains: Vec<&[SweepCandidate]> = Vec::new();
    let mut start = 0;
    for i in 1..=candidates.len() {
        if i == candidates.len() || candidates[i].sweep_index != candidates[start].sweep_index {
            chains.push(&candidates[start..i]);
            start = i;
        }
    }
    let outcomes: Vec<CandidateOutcome> = maybe_parallel_map(cfg.parallel, &chains, |chain| {
        let assignment = sweep.assignment(chain[0].sweep_index);
        evaluate_candidate_chain(spec, vi, &sweep.plan, assignment, chain, cfg)
    })
    .into_iter()
    .flatten()
    .collect();

    let explored = outcomes.len();
    let mut points = Vec::new();
    let mut last_failure = String::from("no design points explored");
    for outcome in outcomes {
        match outcome {
            CandidateOutcome::Feasible(point) => points.push(*point),
            CandidateOutcome::Duplicate => {}
            CandidateOutcome::Infeasible(reason) => last_failure = reason,
        }
    }

    if points.is_empty() {
        return Err(SynthesisError::NoFeasibleDesign {
            explored,
            last_failure,
        });
    }
    Ok(DesignSpace {
        spec_name: spec.name().to_string(),
        island_count: vi.island_count(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn d26_synthesizes_across_the_paper_sweep() {
        let soc = benchmarks::d26_mobile();
        for k in [1usize, 2, 4, 6, 7] {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(!space.points.is_empty(), "k={k}");
        }
    }

    #[test]
    fn twenty_six_islands_is_feasible() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 26).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).expect("26 islands");
        assert!(!space.points.is_empty());
    }

    #[test]
    fn communication_partitioning_synthesizes_too() {
        let soc = benchmarks::d26_mobile();
        for k in [2usize, 4, 6] {
            let vi = partition::communication_partition(&soc, k, 1).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(!space.points.is_empty());
        }
    }

    #[test]
    fn disabling_intermediate_island_restricts_space() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let with = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let cfg_no = SynthesisConfig {
            allow_intermediate_vi: false,
            ..SynthesisConfig::default()
        };
        let without = synthesize(&soc, &vi, &cfg_no).unwrap();
        assert!(without
            .points
            .iter()
            .all(|p| p.topology.intermediate_switch_count() == 0));
        assert!(with.points.len() >= without.points.len());
    }

    #[test]
    fn all_flows_routed_in_every_point() {
        let soc = benchmarks::d16_settop();
        let vi = partition::logical_partition(&soc, 5).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        for p in &space.points {
            assert_eq!(p.topology.routes().count(), soc.flow_count());
        }
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut bad = benchmarks::d12_auto();
        let a = bad.core_ids().next().unwrap();
        bad.add_flow(vi_noc_soc::TrafficFlow::new(a, a, 10.0, 10));
        let vi = partition::logical_partition(&bad, 1).unwrap();
        let err = synthesize(&bad, &vi, &SynthesisConfig::default()).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidSpec(_)));
    }

    #[test]
    fn whole_suite_synthesizes_at_natural_island_counts() {
        for (soc, k) in benchmarks::suite() {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
            assert!(!space.points.is_empty(), "{}", soc.name());
        }
    }

    #[test]
    fn sweep_plan_enumerates_the_cross_product() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let cfg = SynthesisConfig::default();
        let sweep = SweepPlan::build(&soc, &vi, &cfg);
        assert!(!sweep.is_empty());
        assert_eq!(sweep.len() % (cfg.max_intermediate_switches + 1), 0);
        // Candidates are ordered by sweep index, then intermediate count.
        for pair in sweep.candidates().windows(2) {
            assert!(
                pair[0].sweep_index < pair[1].sweep_index
                    || (pair[0].sweep_index == pair[1].sweep_index
                        && pair[0].requested_intermediate < pair[1].requested_intermediate)
            );
        }
        // Switch-count vectors never repeat across sweep indices.
        let per_index: Vec<&SweepCandidate> = sweep
            .candidates()
            .iter()
            .filter(|c| c.requested_intermediate == 0)
            .collect();
        for pair in per_index.windows(2) {
            assert_ne!(pair[0].switch_counts, pair[1].switch_counts);
        }
    }

    #[test]
    fn parallel_and_sequential_modes_agree_exactly() {
        let soc = benchmarks::d26_mobile();
        for k in [2usize, 6, 26] {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let seq_cfg = SynthesisConfig {
                parallel: false,
                ..SynthesisConfig::default()
            };
            let par_cfg = SynthesisConfig {
                parallel: true,
                ..SynthesisConfig::default()
            };
            let seq = synthesize(&soc, &vi, &seq_cfg).unwrap();
            let par = synthesize(&soc, &vi, &par_cfg).unwrap();
            assert_eq!(seq.points.len(), par.points.len(), "k={k}");
            for (a, b) in seq.points.iter().zip(&par.points) {
                assert_eq!(a.sweep_index, b.sweep_index);
                assert_eq!(a.switch_counts, b.switch_counts);
                assert_eq!(a.topology, b.topology);
                assert_eq!(
                    a.metrics.noc_dynamic_power().mw(),
                    b.metrics.noc_dynamic_power().mw()
                );
                assert_eq!(a.metrics.avg_latency_cycles, b.metrics.avg_latency_cycles);
            }
        }
    }

    #[test]
    fn evaluate_candidate_matches_synthesize_points() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 3).unwrap();
        let cfg = SynthesisConfig::default();
        let sweep = SweepPlan::build(&soc, &vi, &cfg);
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        let mut rebuilt = Vec::new();
        for candidate in sweep.candidates() {
            if let CandidateOutcome::Feasible(p) =
                evaluate_candidate(&soc, &vi, &sweep, candidate, &cfg)
            {
                rebuilt.push(*p);
            }
        }
        assert_eq!(rebuilt.len(), space.points.len());
        for (a, b) in rebuilt.iter().zip(&space.points) {
            assert_eq!(a.topology, b.topology);
        }
    }
}
