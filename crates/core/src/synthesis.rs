//! The synthesis driver — Algorithm 1 of the paper.

use crate::assign::{island_switch_assignment, switch_counts_for_sweep};
use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::design_space::{DesignPoint, DesignSpace};
use crate::error::SynthesisError;
use crate::metrics::compute_metrics;
use crate::paths::allocate_paths;
use crate::vcg::{build_vcg, Vcg};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Synthesizes the space of VI-aware NoC topologies for `spec` under the
/// island assignment `vi`.
///
/// Implements Algorithm 1:
///
/// 1. per-island NoC frequency and `max_sw_size_j` ([`FrequencyPlan`]),
/// 2. `min_sw_j = ceil(|V_j| / max_sw_size_j)`,
/// 3. sweep the per-island switch counts from the minimum up to one switch
///    per core, min-cut partitioning each island's VCG,
/// 4. for each switch-count vector, sweep the intermediate-island switch
///    count `k = 0..=max` and allocate min-cost paths for all flows in
///    decreasing bandwidth order,
/// 5. save every design point whose flows all meet their latency
///    constraints.
///
/// # Errors
///
/// * [`SynthesisError::InvalidSpec`] if `spec` fails validation;
/// * [`SynthesisError::NoFeasibleDesign`] if no explored point satisfies
///   all constraints.
pub fn synthesize(
    spec: &SocSpec,
    vi: &ViAssignment,
    cfg: &SynthesisConfig,
) -> Result<DesignSpace, SynthesisError> {
    spec.validate()
        .map_err(|e| SynthesisError::InvalidSpec(e.to_string()))?;

    let n_islands = vi.island_count();
    let plan = FrequencyPlan::compute(spec, vi, cfg);
    let vcgs: Vec<Vcg> = (0..n_islands)
        .map(|j| build_vcg(spec, vi, j, cfg))
        .collect();

    let max_sweep = vcgs.iter().map(Vcg::len).max().unwrap_or(1);
    let mid_range: Vec<usize> = if cfg.allow_intermediate_vi {
        (0..=cfg.max_intermediate_switches).collect()
    } else {
        vec![0]
    };

    let mut points = Vec::new();
    let mut explored = 0usize;
    let mut last_failure = String::from("no design points explored");
    let mut prev_counts: Option<Vec<usize>> = None;

    for i in 1..=max_sweep {
        let counts = switch_counts_for_sweep(&vcgs, &plan, i);
        // Once every island is saturated at one switch per core, higher
        // sweep indices repeat the same configuration.
        if prev_counts.as_ref() == Some(&counts) {
            break;
        }
        prev_counts = Some(counts.clone());
        let assignment = island_switch_assignment(&vcgs, &plan, &counts, cfg);

        for &k_mid in &mid_range {
            explored += 1;
            match allocate_paths(spec, vi, &plan, &assignment, k_mid, cfg) {
                Ok(topology) => {
                    // Avoid duplicates: if the allocator used fewer mid
                    // switches than requested, the identical topology was
                    // (or will be) produced by the smaller k_mid run.
                    if topology.intermediate_switch_count() != k_mid {
                        continue;
                    }
                    let metrics = compute_metrics(spec, &topology, cfg, None);
                    points.push(DesignPoint {
                        sweep_index: i,
                        requested_intermediate: k_mid,
                        switch_counts: counts.clone(),
                        topology,
                        metrics,
                    });
                }
                Err(reason) => last_failure = reason,
            }
        }
    }

    if points.is_empty() {
        return Err(SynthesisError::NoFeasibleDesign {
            explored,
            last_failure,
        });
    }
    Ok(DesignSpace {
        spec_name: spec.name().to_string(),
        island_count: n_islands,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn d26_synthesizes_across_the_paper_sweep() {
        let soc = benchmarks::d26_mobile();
        for k in [1usize, 2, 4, 6, 7] {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(!space.points.is_empty(), "k={k}");
        }
    }

    #[test]
    fn twenty_six_islands_is_feasible() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 26).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).expect("26 islands");
        assert!(!space.points.is_empty());
    }

    #[test]
    fn communication_partitioning_synthesizes_too() {
        let soc = benchmarks::d26_mobile();
        for k in [2usize, 4, 6] {
            let vi = partition::communication_partition(&soc, k, 1).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(!space.points.is_empty());
        }
    }

    #[test]
    fn disabling_intermediate_island_restricts_space() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let with = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let cfg_no = SynthesisConfig {
            allow_intermediate_vi: false,
            ..SynthesisConfig::default()
        };
        let without = synthesize(&soc, &vi, &cfg_no).unwrap();
        assert!(without
            .points
            .iter()
            .all(|p| p.topology.intermediate_switch_count() == 0));
        assert!(with.points.len() >= without.points.len());
    }

    #[test]
    fn all_flows_routed_in_every_point() {
        let soc = benchmarks::d16_settop();
        let vi = partition::logical_partition(&soc, 5).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        for p in &space.points {
            assert_eq!(p.topology.routes().count(), soc.flow_count());
        }
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut bad = benchmarks::d12_auto();
        let a = bad.core_ids().next().unwrap();
        bad.add_flow(vi_noc_soc::TrafficFlow::new(a, a, 10.0, 10));
        let vi = partition::logical_partition(&bad, 1).unwrap();
        let err = synthesize(&bad, &vi, &SynthesisConfig::default()).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidSpec(_)));
    }

    #[test]
    fn whole_suite_synthesizes_at_natural_island_counts() {
        for (soc, k) in benchmarks::suite() {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
            assert!(!space.points.is_empty(), "{}", soc.name());
        }
    }
}
