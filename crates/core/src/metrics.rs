//! Power / area / latency evaluation of a synthesized topology.

use crate::config::SynthesisConfig;
use crate::topology::Topology;
use vi_noc_models::{Area, Bandwidth, BisyncFifoModel, LinkModel, NiModel, Power, SwitchModel};
use vi_noc_soc::SocSpec;

/// Default estimated NI↔switch wire length before floorplanning, mm.
const EST_NI_LINK_MM: f64 = 0.8;

/// NoC dynamic power split by component class.
///
/// Figure 2 of the paper plots `switches + links + synchronizers` (§5: "The
/// power consumption values comprise the consumption on switches, links and
/// the synchronizers") — use [`PowerBreakdown::fig2_power`] for that series
/// and [`DesignMetrics::noc_dynamic_power`] for the NI-inclusive total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Switch idle (clock/control) + datapath power.
    pub switches: Power,
    /// Wire power of all switch-switch and NI-switch links.
    pub links: Power,
    /// Bi-synchronous voltage/frequency converter power.
    pub synchronizers: Power,
    /// Network-interface power.
    pub nis: Power,
}

impl PowerBreakdown {
    /// The paper's Figure-2 metric: switches + links + synchronizers.
    pub fn fig2_power(&self) -> Power {
        self.switches + self.links + self.synchronizers
    }

    /// Everything, NIs included.
    pub fn total(&self) -> Power {
        self.fig2_power() + self.nis
    }
}

/// Evaluated quality of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Dynamic power by component class.
    pub power: PowerBreakdown,
    /// NoC leakage power (ungated).
    pub leakage: Power,
    /// NoC silicon area (switches + NIs + converters).
    pub area: Area,
    /// Mean zero-load latency over all flows, cycles.
    pub avg_latency_cycles: f64,
    /// Worst zero-load latency, cycles.
    pub max_latency_cycles: u32,
    /// Switch count (intermediate included).
    pub switch_count: usize,
    /// Directed link count.
    pub link_count: usize,
    /// Number of domain-crossing links (each carries a converter FIFO).
    pub crossing_count: usize,
}

impl DesignMetrics {
    /// Total NoC dynamic power (NIs included).
    pub fn noc_dynamic_power(&self) -> Power {
        self.power.total()
    }
}

/// Computes the metrics of `topo`.
///
/// Link wire lengths are taken from the topology's per-link `length_mm`
/// (estimates during synthesis, realized Manhattan lengths after
/// floorplanning); NI links use a fixed estimate unless `ni_lengths_mm`
/// provides per-core values.
pub fn compute_metrics(
    spec: &SocSpec,
    topo: &Topology,
    cfg: &SynthesisConfig,
    ni_lengths_mm: Option<&[f64]>,
) -> DesignMetrics {
    let tech = &cfg.technology;
    let link_model = LinkModel::new(tech, cfg.link_width_bits);
    let ni_model = NiModel::new(tech, cfg.link_width_bits);
    let fifo_model = BisyncFifoModel::new(tech, cfg.link_width_bits);

    let mut p_switches = Power::ZERO;
    let mut p_links = Power::ZERO;
    let mut p_sync = Power::ZERO;
    let mut p_nis = Power::ZERO;
    let mut leakage = Power::ZERO;
    let mut area = Area::ZERO;

    // Switches: idle at island clock + datapath for routed traffic.
    let loads = topo.switch_loads(spec);
    for s in topo.switch_ids() {
        let sw = topo.switch(s);
        let (inp, outp) = topo.switch_ports(s);
        let model = SwitchModel::new(tech, inp.max(1), outp.max(1), cfg.link_width_bits);
        let f = topo.island_frequency(sw.island_ext);
        p_switches += model.idle_power(f) + model.traffic_power(loads[s.index()]);
        leakage += model.leakage_power();
        area += model.area();
    }

    // Switch-to-switch links: wire power for the allocated load; crossings
    // additionally pay the converter FIFO.
    for l in topo.links() {
        p_links += link_model.traffic_power(l.length_mm, l.load);
        if l.crosses_domain() {
            let fu = topo.island_frequency(topo.switch(l.from).island_ext);
            let fv = topo.island_frequency(topo.switch(l.to).island_ext);
            p_sync += fifo_model.power(fu, fv, l.load);
            leakage += fifo_model.leakage_power();
            area += fifo_model.area();
        }
    }

    // NIs: one per core, clocked at the island frequency, plus the NI link
    // wire power.
    for id in spec.core_ids() {
        let s = topo.switch_of_core(id);
        let f = topo.island_frequency(topo.switch(s).island_ext);
        let (inb, outb) = spec.core_io_bandwidth(id);
        let bw = Bandwidth::from_bytes_per_s(inb.bytes_per_s() + outb.bytes_per_s());
        p_nis += ni_model.power(f, bw);
        leakage += ni_model.leakage_power();
        area += ni_model.area();
        let len = ni_lengths_mm
            .map(|v| v[id.index()])
            .unwrap_or(EST_NI_LINK_MM);
        p_links += link_model.traffic_power(len, bw);
    }

    // Zero-load latencies from the routes.
    let mut sum_lat = 0.0;
    let mut max_lat = 0;
    let mut n_routes = 0;
    for r in topo.routes() {
        sum_lat += r.latency_cycles as f64;
        max_lat = max_lat.max(r.latency_cycles);
        n_routes += 1;
    }

    DesignMetrics {
        power: PowerBreakdown {
            switches: p_switches,
            links: p_links,
            synchronizers: p_sync,
            nis: p_nis,
        },
        leakage,
        area,
        avg_latency_cycles: if n_routes > 0 {
            sum_lat / n_routes as f64
        } else {
            0.0
        },
        max_latency_cycles: max_lat,
        switch_count: topo.switches().len(),
        link_count: topo.links().len(),
        crossing_count: topo.links().iter().filter(|l| l.crosses_domain()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn metrics_for(k: usize) -> DesignMetrics {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, k).unwrap();
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).expect("feasible");
        space.min_power_point().expect("points").metrics.clone()
    }

    #[test]
    fn one_island_has_no_synchronizer_power() {
        let m = metrics_for(1);
        assert_eq!(m.crossing_count, 0);
        assert!(m.power.synchronizers.mw() < 1e-12);
        assert!(m.power.switches.mw() > 0.0);
        assert!(m.power.links.mw() > 0.0);
        assert!(m.power.nis.mw() > 0.0);
    }

    #[test]
    fn multi_island_pays_for_crossings() {
        let m1 = metrics_for(1);
        let m6 = metrics_for(6);
        assert!(m6.crossing_count > 0);
        assert!(m6.power.synchronizers.mw() > 0.0);
        assert!(m6.avg_latency_cycles > m1.avg_latency_cycles);
    }

    #[test]
    fn fig2_power_excludes_nis() {
        let m = metrics_for(6);
        let fig2 = m.power.fig2_power().mw();
        let total = m.noc_dynamic_power().mw();
        assert!(
            (total - fig2 - m.power.nis.mw()).abs() < 1e-9,
            "total = fig2 + NIs"
        );
        assert!(fig2 < total);
    }

    #[test]
    fn power_magnitudes_match_paper_range() {
        // Figure 2's y-axis spans 20..100 mW for this SoC class.
        let m = metrics_for(1);
        let p = m.power.fig2_power().mw();
        assert!(
            p > 10.0 && p < 150.0,
            "1-island NoC power {p} mW far from the paper's range"
        );
    }

    #[test]
    fn area_is_small_versus_soc() {
        let soc = benchmarks::d26_mobile();
        let m = metrics_for(6);
        let frac = m.area.mm2() / soc.total_core_area().mm2();
        assert!(frac < 0.08, "NoC area fraction {frac} implausibly high");
        assert!(m.area.mm2() > 0.1, "NoC area implausibly low");
    }

    #[test]
    fn latency_starts_near_three_cycles() {
        let m = metrics_for(1);
        assert!(
            m.avg_latency_cycles >= 3.0 && m.avg_latency_cycles < 6.0,
            "1-island avg latency {} should sit near the paper's ~3.5",
            m.avg_latency_cycles
        );
    }
}
