//! Design points and the explored design space.

use crate::metrics::DesignMetrics;
use crate::pareto::{self, ParetoKey};
use crate::topology::Topology;

/// One feasible design produced by the synthesis sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Sweep index `i` of Algorithm 1 (1 = minimum switch counts).
    pub sweep_index: usize,
    /// Number of intermediate-island switches requested (the topology may
    /// hold fewer after pruning).
    pub requested_intermediate: usize,
    /// Per-island switch counts actually instantiated.
    pub switch_counts: Vec<usize>,
    /// The synthesized topology.
    pub topology: Topology,
    /// Evaluated metrics (with estimated wire lengths; see
    /// [`crate::realize_on_floorplan`] for floorplan-accurate numbers).
    pub metrics: DesignMetrics,
}

impl DesignPoint {
    /// The point's Pareto dominance key: total power and mean latency, with
    /// `ordinal` as the stable exploration index used for tie-breaking.
    pub fn pareto_key(&self, ordinal: u64) -> ParetoKey {
        ParetoKey {
            power_mw: self.metrics.noc_dynamic_power().mw(),
            latency_cycles: self.metrics.avg_latency_cycles,
            ordinal,
        }
    }
}

/// All design points found by [`crate::synthesize`], in exploration order.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Benchmark name the space was synthesized for.
    pub spec_name: String,
    /// Number of (real) voltage islands.
    pub island_count: usize,
    /// Feasible design points.
    pub points: Vec<DesignPoint>,
}

impl DesignSpace {
    /// The dominance key of every point, in exploration order (the key's
    /// ordinal is the point's index in [`DesignSpace::points`]).
    pub fn pareto_keys(&self) -> Vec<ParetoKey> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| p.pareto_key(i as u64))
            .collect()
    }

    /// The design point with the lowest total NoC dynamic power.
    pub fn min_power_point(&self) -> Option<&DesignPoint> {
        pareto::argmin(&self.points, |p| p.metrics.noc_dynamic_power().mw())
            .map(|i| &self.points[i])
    }

    /// The design point with the lowest average zero-load latency.
    pub fn min_latency_point(&self) -> Option<&DesignPoint> {
        pareto::argmin(&self.points, |p| p.metrics.avg_latency_cycles).map(|i| &self.points[i])
    }

    /// The power/latency Pareto front (lower is better on both axes),
    /// ordered by increasing power.
    ///
    /// This is the paper's §3.2 deliverable: "several design points that
    /// meet the application constraints … the designer can then choose the
    /// best design point from the trade-off curves obtained". Dominance is
    /// the shared [`crate::pareto`] relation, so this front is bit-identical
    /// to what the streaming sharded sweep (`vi-noc-sweep`) folds from the
    /// same outcomes.
    pub fn pareto_front(&self) -> Vec<&DesignPoint> {
        pareto::front_of(&self.pareto_keys())
            .into_iter()
            .map(|i| &self.points[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    fn space() -> DesignSpace {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        synthesize(&soc, &vi, &SynthesisConfig::default()).expect("feasible")
    }

    #[test]
    fn exploration_yields_multiple_points() {
        let s = space();
        assert!(
            s.points.len() >= 3,
            "expected several design points, got {}",
            s.points.len()
        );
        assert_eq!(s.island_count, 4);
        assert_eq!(s.spec_name, "d26_mobile");
    }

    #[test]
    fn extrema_are_consistent() {
        let s = space();
        let min_p = s.min_power_point().unwrap();
        let min_l = s.min_latency_point().unwrap();
        for p in &s.points {
            assert!(min_p.metrics.noc_dynamic_power() <= p.metrics.noc_dynamic_power());
            assert!(min_l.metrics.avg_latency_cycles <= p.metrics.avg_latency_cycles + 1e-12);
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let s = space();
        let front = s.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].metrics.noc_dynamic_power() <= w[1].metrics.noc_dynamic_power());
            assert!(w[0].metrics.avg_latency_cycles > w[1].metrics.avg_latency_cycles);
        }
        // The front contains the extrema.
        let min_p = s.min_power_point().unwrap().metrics.noc_dynamic_power();
        assert!((front[0].metrics.noc_dynamic_power().mw() - min_p.mw()).abs() < 1e-9);
    }

    #[test]
    fn points_carry_their_sweep_provenance() {
        let s = space();
        for p in &s.points {
            assert!(p.sweep_index >= 1);
            assert_eq!(p.switch_counts.len(), 4);
            let total: usize = p.switch_counts.iter().sum();
            assert!(total >= 4, "at least one switch per island");
        }
    }
}
