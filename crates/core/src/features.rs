//! Traffic-relevant feature extraction for clustering `(design point,
//! sim config)` pairs — the structural half of the dynamic-sweep cluster
//! key (see the `vi-noc-dynsweep` crate).
//!
//! Two topologies that agree on these features behave near-identically
//! under the flit-level simulator *for a fixed sim config*: the island
//! structure fixes the clock domains and per-island switch capacity, the
//! flow fingerprint fixes the offered traffic matrix. The signatures are
//! deliberately **insensitive to intermediate-island structure** — design
//! points that differ only in their intermediate switch count share a
//! signature, which is exactly the reuse the clustered dynamic sweep
//! exploits (and bounds).
//!
//! Everything here is a pure function of committed data, hashed with
//! FNV-1a over a canonical ASCII rendering ([`json_number`] gives the
//! shortest round-trip form of every float), so the features are
//! byte-deterministic across platforms and runs.

use crate::export::json_number;
use crate::topology::Topology;
use vi_noc_soc::SocSpec;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`. Stable across platforms — the dynamic-sweep
/// cluster ids and schedule hashes are built from this.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The island-topology signature of a design point: a hash of the real
/// islands' structure — island count, per-real-island switch counts, and
/// the frequency plan (real islands plus the intermediate domain's clock,
/// which stays on even when no intermediate switch exists).
///
/// Intermediate-island *switch structure* is excluded on purpose: design
/// points that differ only in how many always-on intermediate switches
/// they route through are structural neighbours under dynamic traffic,
/// and the clustered dynamic sweep reuses (and error-bounds) across them.
pub fn island_signature(topo: &Topology) -> u64 {
    let n = topo.island_count();
    let mut per_island = vec![0usize; n];
    for sw in topo.switches() {
        if sw.island_ext < n {
            per_island[sw.island_ext] += 1;
        }
    }
    let mut canon = format!("islands:{n}");
    for count in &per_island {
        canon.push_str(&format!("|sw:{count}"));
    }
    for i in 0..=n {
        canon.push_str(&format!(
            "|f:{}",
            json_number(topo.island_frequency(i).hz())
        ));
    }
    fnv1a64(canon.as_bytes())
}

/// The flow-matrix fingerprint of a spec: a hash over every flow's
/// endpoints, bandwidth, and latency constraint, in flow-id order.
///
/// Topology-independent by design (no routes, no switch assignment): every
/// design point synthesized for the same spec shares the fingerprint, so
/// it pins *which traffic* a cluster was measured under, not how a
/// particular point carries it.
pub fn flow_fingerprint(spec: &SocSpec) -> u64 {
    let mut canon = format!("flows:{}", spec.flow_count());
    for flow in spec.flows() {
        canon.push_str(&format!(
            "|{}>{}:{}:{}",
            flow.src.index(),
            flow.dst.index(),
            json_number(flow.bandwidth.bytes_per_s()),
            flow.max_latency_cycles
        ));
    }
    fnv1a64(canon.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn signatures_are_deterministic_and_traffic_relevant() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let points = &space.points;
        assert!(points.len() >= 2, "need at least two design points");

        // Deterministic over repeated calls.
        let p0 = &points[0];
        assert_eq!(
            island_signature(&p0.topology),
            island_signature(&p0.topology)
        );
        assert_eq!(flow_fingerprint(&soc), flow_fingerprint(&soc));

        // The fingerprint is a property of the spec alone.
        let other = benchmarks::d26_mobile();
        assert_ne!(flow_fingerprint(&soc), flow_fingerprint(&other));

        // Points with different per-island switch counts get different
        // signatures; points differing only in intermediate switches share
        // one.
        for p in points.iter().skip(1) {
            if p.switch_counts == p0.switch_counts
                && p.requested_intermediate != p0.requested_intermediate
            {
                assert_eq!(
                    island_signature(&p.topology),
                    island_signature(&p0.topology)
                );
            }
            if p.switch_counts != p0.switch_counts {
                // Usually distinct — only assert the well-defined direction
                // when counts visibly differ per island.
                let sum: usize = p.switch_counts.iter().sum();
                let sum0: usize = p0.switch_counts.iter().sum();
                if sum != sum0 {
                    assert_ne!(
                        island_signature(&p.topology),
                        island_signature(&p0.topology)
                    );
                }
            }
        }
    }
}
