//! VI communication graph construction (Definition 1 of the paper).

use crate::config::SynthesisConfig;
use vi_noc_graph::SymGraph;
use vi_noc_soc::{CoreId, SocSpec, ViAssignment};

/// The VI Communication Graph `VCG(V, E, isl)`: vertices are the cores of
/// one island, edges are the flows between them weighted by
/// `h_ij = α·bw_ij/max_bw + (1−α)·min_lat/lat_ij`.
///
/// Min-cut partitioning this graph groups cores that communicate heavily or
/// have tight mutual latency constraints onto the same switch.
#[derive(Debug, Clone)]
pub struct Vcg {
    /// The island this VCG describes.
    pub island: usize,
    /// Weighted undirected graph over the island's cores.
    pub graph: SymGraph,
    /// `cores[v]` is the core behind graph vertex `v`.
    pub cores: Vec<CoreId>,
}

impl Vcg {
    /// Number of cores in the island (the paper's `|V_j|`).
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Returns `true` if the island holds no cores (cannot happen for
    /// assignments built through [`ViAssignment::new`]).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }
}

/// Builds the VCG of `island`.
///
/// `max_bw` and `min_lat` are global over **all** flows of the spec, per
/// Definition 1 — so the edge weights of different islands' VCGs are
/// mutually comparable.
pub fn build_vcg(spec: &SocSpec, vi: &ViAssignment, island: usize, cfg: &SynthesisConfig) -> Vcg {
    let cores: Vec<CoreId> = spec
        .core_ids()
        .filter(|&c| vi.island_of(c) == island)
        .collect();
    let mut index_of = vec![usize::MAX; spec.core_count()];
    for (v, &c) in cores.iter().enumerate() {
        index_of[c.index()] = v;
    }

    let max_bw = spec.max_bandwidth().bytes_per_s().max(1e-12);
    let min_lat = spec.min_latency_cycles().max(1) as f64;

    let mut graph = SymGraph::new(cores.len());
    for flow in spec.flows() {
        let (si, di) = (index_of[flow.src.index()], index_of[flow.dst.index()]);
        if si == usize::MAX || di == usize::MAX || si == di {
            continue;
        }
        let h = cfg.alpha * flow.bandwidth.bytes_per_s() / max_bw
            + (1.0 - cfg.alpha) * min_lat / flow.max_latency_cycles.max(1) as f64;
        if h > 0.0 {
            graph.add_edge(si, di, h);
        }
    }
    Vcg {
        island,
        graph,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition, CoreKind};

    fn setup() -> (SocSpec, ViAssignment, SynthesisConfig) {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        (soc, vi, SynthesisConfig::default())
    }

    #[test]
    fn vcg_covers_each_island_exactly() {
        let (soc, vi, cfg) = setup();
        let mut total = 0;
        for isl in 0..vi.island_count() {
            let vcg = build_vcg(&soc, &vi, isl, &cfg);
            assert_eq!(vcg.island, isl);
            assert!(!vcg.is_empty());
            for &c in &vcg.cores {
                assert_eq!(vi.island_of(c), isl);
            }
            total += vcg.len();
        }
        assert_eq!(total, soc.core_count());
    }

    #[test]
    fn only_intra_island_flows_become_edges() {
        let (soc, vi, cfg) = setup();
        for isl in 0..vi.island_count() {
            let vcg = build_vcg(&soc, &vi, isl, &cfg);
            // Edge count is bounded by the number of intra-island flows.
            let intra = soc
                .flows()
                .iter()
                .filter(|f| vi.island_of(f.src) == isl && vi.island_of(f.dst) == isl)
                .count();
            assert!(vcg.graph.edge_count() <= intra);
        }
    }

    #[test]
    fn weights_blend_bandwidth_and_latency() {
        // Two flows in one island: a fat loose flow and a thin tight flow.
        // With alpha=1 only bandwidth matters; with alpha=0 only latency.
        let mut s = SocSpec::new("w");
        let a = s.add_core(vi_noc_soc::CoreSpec::new(
            "a",
            CoreKind::Cpu,
            1.0,
            1.0,
            100.0,
        ));
        let b = s.add_core(vi_noc_soc::CoreSpec::new(
            "b",
            CoreKind::Memory,
            1.0,
            1.0,
            100.0,
        ));
        let c = s.add_core(vi_noc_soc::CoreSpec::new(
            "c",
            CoreKind::Dsp,
            1.0,
            1.0,
            100.0,
        ));
        s.add_flow(vi_noc_soc::TrafficFlow::new(a, b, 1000.0, 100));
        s.add_flow(vi_noc_soc::TrafficFlow::new(a, c, 10.0, 5));
        let vi = ViAssignment::new(&s, 1, vec![0, 0, 0]);

        let mut cfg = SynthesisConfig {
            alpha: 1.0,
            ..SynthesisConfig::default()
        };
        let vcg = build_vcg(&s, &vi, 0, &cfg);
        assert!(vcg.graph.edge_weight(0, 1) > vcg.graph.edge_weight(0, 2));

        cfg.alpha = 0.0;
        let vcg = build_vcg(&s, &vi, 0, &cfg);
        assert!(vcg.graph.edge_weight(0, 2) > vcg.graph.edge_weight(0, 1));
    }

    #[test]
    fn weights_are_bounded_by_one() {
        let (soc, vi, cfg) = setup();
        for isl in 0..vi.island_count() {
            let vcg = build_vcg(&soc, &vi, isl, &cfg);
            for u in 0..vcg.graph.len() {
                for &(v, w) in vcg.graph.neighbors(u) {
                    // Each directed flow contributes at most alpha + (1-alpha)
                    // = 1; an undirected edge accumulates both directions.
                    assert!(w <= 2.0 + 1e-9, "edge ({u},{v}) weight {w}");
                }
            }
        }
    }

    #[test]
    fn discrete_islands_have_empty_vcgs() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 26).unwrap();
        let cfg = SynthesisConfig::default();
        for isl in 0..26 {
            let vcg = build_vcg(&soc, &vi, isl, &cfg);
            assert_eq!(vcg.len(), 1);
            assert_eq!(vcg.graph.edge_count(), 0);
        }
    }
}
