//! Synthesis configuration and the per-island frequency plan.

use vi_noc_models::{Frequency, SwitchModel, Technology};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Tuning knobs of the synthesis algorithm.
///
/// The defaults reproduce the paper's setup: α = 0.6 VCG weighting, 32-bit
/// links, an optional intermediate NoC island, 1-cycle switch and link
/// traversal, the 4-cycle bi-synchronous crossing penalty (taken from
/// [`vi_noc_models::BisyncFifoModel`]), and cost weights that prefer
/// opening as few power-hungry resources as possible.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// VCG weight parameter α of Definition 1 (bandwidth vs latency).
    pub alpha: f64,
    /// NoC link data width in bits (fixed, as in the paper §4).
    pub link_width_bits: usize,
    /// Whether a separate always-on intermediate NoC island may be created
    /// (§3.2: "we take the availability of power and ground lines for the
    /// intermediate VI as an input").
    pub allow_intermediate_vi: bool,
    /// Largest number of switches explored in the intermediate island.
    pub max_intermediate_switches: usize,
    /// Switch traversal delay, in cycles.
    pub switch_delay_cycles: u32,
    /// Link traversal delay, in cycles.
    pub link_delay_cycles: u32,
    /// Weight of the power term in the link-opening cost (paper step 15).
    pub cost_power_weight: f64,
    /// Weight of the latency term in the link-opening cost.
    pub cost_latency_weight: f64,
    /// Weight of the port-scarcity term: opening one of a switch's last
    /// free ports is discouraged exponentially, so early (high-bandwidth)
    /// flows do not exhaust hub switches with direct links and strand later
    /// flows that would need the same ports for indirect routing.
    pub cost_port_scarcity: f64,
    /// Estimated intra-island link length before floorplanning, mm.
    pub est_intra_link_mm: f64,
    /// Estimated direct inter-island link length, mm.
    pub est_inter_link_mm: f64,
    /// Estimated island↔intermediate-island link length, mm.
    pub est_mid_link_mm: f64,
    /// Floor on any island's NoC frequency (clock networks below this are
    /// not practical).
    pub min_frequency: Frequency,
    /// Process technology models.
    pub technology: Technology,
    /// Seed for all randomized sub-steps (partitioning).
    pub seed: u64,
    /// Evaluate sweep candidates concurrently. Both modes produce
    /// identical design spaces ([`crate::evaluate_candidate`] is pure and
    /// the parallel fan-out preserves candidate order); sequential mode
    /// exists for determinism checks and single-threaded profiling.
    pub parallel: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            alpha: 0.6,
            link_width_bits: 32,
            allow_intermediate_vi: true,
            max_intermediate_switches: 4,
            switch_delay_cycles: 1,
            link_delay_cycles: 1,
            cost_power_weight: 1.0,
            cost_latency_weight: 0.6,
            cost_port_scarcity: 6.0,
            est_intra_link_mm: 1.5,
            est_inter_link_mm: 2.2,
            est_mid_link_mm: 1.8,
            min_frequency: Frequency::from_mhz(50.0),
            technology: Technology::cmos_65nm(),
            seed: 0xD0C5,
            parallel: true,
        }
    }
}

impl SynthesisConfig {
    /// Link width in bytes.
    pub fn link_width_bytes(&self) -> f64 {
        self.link_width_bits as f64 / 8.0
    }
}

/// Step 1 of Algorithm 1: the NoC operating frequency of each island and the
/// resulting maximum switch size.
///
/// The frequency of an island is set by the NI link that must carry the
/// highest bandwidth to or from a core of the island (link bandwidth =
/// width × frequency). The intermediate island — if used — must keep up
/// with the fastest island it bridges, so it runs at the maximum island
/// frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    island_freq: Vec<Frequency>,
    max_switch_size: Vec<usize>,
    intermediate_freq: Frequency,
    intermediate_max_size: usize,
}

impl FrequencyPlan {
    /// Computes the frequency plan for `spec` under `vi`.
    pub fn compute(spec: &SocSpec, vi: &ViAssignment, cfg: &SynthesisConfig) -> Self {
        let n_isl = vi.island_count();
        let mut island_freq = vec![cfg.min_frequency; n_isl];
        for id in spec.core_ids() {
            let (inb, outb) = spec.core_io_bandwidth(id);
            let demand = inb.bytes_per_s().max(outb.bytes_per_s());
            let f = Frequency::from_hz(demand / cfg.link_width_bytes());
            let isl = vi.island_of(id);
            if f > island_freq[isl] {
                island_freq[isl] = f;
            }
        }
        let max_switch_size = island_freq
            .iter()
            .map(|&f| SwitchModel::max_size_at(&cfg.technology, f))
            .collect();
        let intermediate_freq =
            island_freq
                .iter()
                .copied()
                .fold(cfg.min_frequency, |a, b| if b > a { b } else { a });
        let intermediate_max_size = SwitchModel::max_size_at(&cfg.technology, intermediate_freq);
        FrequencyPlan {
            island_freq,
            max_switch_size,
            intermediate_freq,
            intermediate_max_size,
        }
    }

    /// An alternative frequency plan with every island clock scaled up by
    /// `factor` (and the switch size budgets re-derived at the new clocks).
    ///
    /// This is the sweep grid's frequency-plan axis: overclocking an island
    /// raises its link capacities — high-bandwidth flows can share links
    /// that would saturate at the baseline clock, so fewer links open — at
    /// the price of higher idle/clock power and smaller feasible switches.
    /// Factors below 1.0 are rejected because the baseline clock of each
    /// island is exactly its peak NI bandwidth demand; any slower clock
    /// silently overloads that NI link.
    ///
    /// # Panics
    ///
    /// If `factor < 1.0` or is not finite.
    pub fn scaled(&self, factor: f64, cfg: &SynthesisConfig) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "frequency scale factor must be finite and >= 1.0, got {factor}"
        );
        let island_freq: Vec<Frequency> = self.island_freq.iter().map(|&f| f * factor).collect();
        let max_switch_size = island_freq
            .iter()
            .map(|&f| SwitchModel::max_size_at(&cfg.technology, f))
            .collect();
        let intermediate_freq = self.intermediate_freq * factor;
        let intermediate_max_size = SwitchModel::max_size_at(&cfg.technology, intermediate_freq);
        FrequencyPlan {
            island_freq,
            max_switch_size,
            intermediate_freq,
            intermediate_max_size,
        }
    }

    /// Number of (real) islands covered by the plan.
    pub fn island_count(&self) -> usize {
        self.island_freq.len()
    }

    /// NoC frequency of `island`.
    pub fn frequency(&self, island: usize) -> Frequency {
        self.island_freq[island]
    }

    /// `max_sw_size_j` for `island`.
    pub fn max_switch_size(&self, island: usize) -> usize {
        self.max_switch_size[island]
    }

    /// Frequency of the intermediate NoC island.
    pub fn intermediate_frequency(&self) -> Frequency {
        self.intermediate_freq
    }

    /// Maximum switch size in the intermediate island.
    pub fn intermediate_max_size(&self) -> usize {
        self.intermediate_max_size
    }

    /// Frequency of an *extended* island index, where index
    /// `island_count()` denotes the intermediate island.
    pub fn frequency_ext(&self, island_ext: usize) -> Frequency {
        if island_ext == self.island_freq.len() {
            self.intermediate_freq
        } else {
            self.island_freq[island_ext]
        }
    }

    /// Maximum switch size for an extended island index.
    pub fn max_switch_size_ext(&self, island_ext: usize) -> usize {
        if island_ext == self.island_freq.len() {
            self.intermediate_max_size
        } else {
            self.max_switch_size[island_ext]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn default_config_matches_paper_setup() {
        let cfg = SynthesisConfig::default();
        assert_eq!(cfg.link_width_bits, 32);
        assert_eq!(cfg.link_width_bytes(), 4.0);
        assert!(cfg.allow_intermediate_vi);
        assert!((cfg.alpha - 0.6).abs() < 1e-12);
    }

    #[test]
    fn hot_islands_run_faster() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let plan = FrequencyPlan::compute(&soc, &vi, &SynthesisConfig::default());
        // The memory island hosts the SDRAM hub — the design's hottest NI —
        // so it must be the fastest island (or tied).
        let mem_island = vi.island_of(soc.cores_of_kind(vi_noc_soc::CoreKind::Memory)[0]);
        for isl in 0..plan.island_count() {
            assert!(
                plan.frequency(mem_island) >= plan.frequency(isl) * 0.999,
                "island {isl} faster than the memory island"
            );
        }
        // Peripheral island idles far below the memory island.
        let periph_island = vi.island_of(soc.cores_of_kind(vi_noc_soc::CoreKind::Peripheral)[0]);
        assert!(plan.frequency(periph_island).mhz() < plan.frequency(mem_island).mhz() / 2.0);
    }

    #[test]
    fn single_island_uses_global_peak() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 1).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        // Hottest NI: the SDRAM hub. Recompute its demand independently.
        let sdram = soc
            .core_ids()
            .find(|&c| soc.core(c).name == "sdram")
            .unwrap();
        let (inb, outb) = soc.core_io_bandwidth(sdram);
        let expected_mhz = inb.mbps().max(outb.mbps()) / 4.0;
        assert!(
            (plan.frequency(0).mhz() - expected_mhz).abs() < 1.0,
            "got {} MHz, expected {expected_mhz}",
            plan.frequency(0).mhz()
        );
    }

    #[test]
    fn intermediate_tracks_fastest_island() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let plan = FrequencyPlan::compute(&soc, &vi, &SynthesisConfig::default());
        let fastest = (0..plan.island_count())
            .map(|i| plan.frequency(i))
            .fold(Frequency::ZERO, |a, b| if b > a { b } else { a });
        assert_eq!(plan.intermediate_frequency(), fastest);
        assert_eq!(
            plan.frequency_ext(plan.island_count()),
            plan.intermediate_frequency()
        );
    }

    #[test]
    fn slower_islands_allow_bigger_switches() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let plan = FrequencyPlan::compute(&soc, &vi, &SynthesisConfig::default());
        let mut fastest = 0;
        let mut slowest = 0;
        for i in 0..plan.island_count() {
            if plan.frequency(i) > plan.frequency(fastest) {
                fastest = i;
            }
            if plan.frequency(i) < plan.frequency(slowest) {
                slowest = i;
            }
        }
        assert!(plan.max_switch_size(slowest) >= plan.max_switch_size(fastest));
    }

    #[test]
    fn scaled_plan_raises_clocks_and_shrinks_switches() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let up = plan.scaled(1.25, &cfg);
        for i in 0..plan.island_count() {
            assert!((up.frequency(i).mhz() - plan.frequency(i).mhz() * 1.25).abs() < 1e-9);
            assert!(up.max_switch_size(i) <= plan.max_switch_size(i));
        }
        assert!(
            (up.intermediate_frequency().mhz() - plan.intermediate_frequency().mhz() * 1.25).abs()
                < 1e-9
        );
        // Identity scale reproduces the plan exactly.
        assert_eq!(plan.scaled(1.0, &cfg), plan);
    }

    #[test]
    #[should_panic(expected = "frequency scale factor")]
    fn underclocking_is_rejected() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 2).unwrap();
        let cfg = SynthesisConfig::default();
        FrequencyPlan::compute(&soc, &vi, &cfg).scaled(0.9, &cfg);
    }

    #[test]
    fn frequency_floor_applies() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 26).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        for i in 0..plan.island_count() {
            assert!(plan.frequency(i) >= cfg.min_frequency);
        }
    }
}
