//! Core-to-switch assignment by min-cut partitioning (Algorithm 1,
//! steps 4–11).

use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::vcg::Vcg;
use vi_noc_graph::{partition_kway, PartitionConfig};
use vi_noc_soc::CoreId;

/// Core→switch grouping of every island for one sweep index.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchAssignment {
    /// `groups[island][switch]` is the list of cores behind that switch.
    pub groups: Vec<Vec<Vec<CoreId>>>,
}

impl SwitchAssignment {
    /// Switch count of `island`.
    pub fn switch_count(&self, island: usize) -> usize {
        self.groups[island].len()
    }

    /// Total switch count over all islands (intermediate excluded).
    pub fn total_switches(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Per-island switch counts.
    pub fn counts(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }
}

/// The paper's minimum switch count for island `j`:
/// `min_sw_j = ceil(|V_j| / max_sw_size_j)` (step 2).
pub(crate) fn min_switches(vcg_len: usize, max_sw_size: usize) -> usize {
    vcg_len.div_ceil(max_sw_size.max(1)).max(1)
}

/// Computes the per-island switch counts for sweep index `i` (1-based):
/// `k_j = min(min_sw_j + i - 1, |V_j|)` — i.e. `i = 1` uses the minimum
/// switch count and each increment adds one switch per island until the
/// island saturates at one switch per core (steps 4–10; the paper's index
/// arithmetic is off by one from its prose, we follow the prose).
///
/// Public so sweep-grid builders (the `vi-noc-sweep` crate) can enumerate
/// the base count schedule without a full [`crate::SweepPlan`].
///
/// # Panics
///
/// If `i` is 0 (sweep indices are 1-based).
pub fn switch_counts_for_sweep(vcgs: &[Vcg], plan: &FrequencyPlan, i: usize) -> Vec<usize> {
    assert!(i >= 1, "sweep index is 1-based");
    vcgs.iter()
        .map(|vcg| {
            let min_sw = min_switches(vcg.len(), plan.max_switch_size(vcg.island));
            (min_sw + i - 1).min(vcg.len())
        })
        .collect()
}

/// Performs the `k_j` min-cut partitions of each island's VCG, yielding the
/// core→switch grouping (step 11: cores in a partition share a switch).
pub fn island_switch_assignment(
    vcgs: &[Vcg],
    plan: &FrequencyPlan,
    counts: &[usize],
    cfg: &SynthesisConfig,
) -> SwitchAssignment {
    assert_eq!(vcgs.len(), counts.len());
    let groups = vcgs
        .iter()
        .zip(counts)
        .map(|(vcg, &k)| {
            let pcfg = PartitionConfig {
                seed: cfg.seed ^ (vcg.island as u64).wrapping_mul(0x9E37),
                max_part_weight: Some(plan.max_switch_size(vcg.island) as f64),
                ..PartitionConfig::default()
            };
            let partition = partition_kway(&vcg.graph, k, &pcfg);
            partition
                .parts()
                .into_iter()
                .filter(|p| !p.is_empty())
                .map(|part| part.into_iter().map(|v| vcg.cores[v]).collect())
                .collect()
        })
        .collect();
    SwitchAssignment { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg::build_vcg;
    use vi_noc_soc::{benchmarks, partition};

    fn setup() -> (Vec<Vcg>, FrequencyPlan, SynthesisConfig) {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let vcgs: Vec<Vcg> = (0..6).map(|j| build_vcg(&soc, &vi, j, &cfg)).collect();
        (vcgs, plan, cfg)
    }

    #[test]
    fn min_switches_formula() {
        assert_eq!(min_switches(10, 4), 3);
        assert_eq!(min_switches(8, 4), 2);
        assert_eq!(min_switches(1, 4), 1);
        assert_eq!(min_switches(5, 100), 1);
    }

    #[test]
    fn sweep_counts_grow_then_saturate() {
        let (vcgs, plan, _) = setup();
        let c1 = switch_counts_for_sweep(&vcgs, &plan, 1);
        let c2 = switch_counts_for_sweep(&vcgs, &plan, 2);
        let huge = switch_counts_for_sweep(&vcgs, &plan, 100);
        for j in 0..vcgs.len() {
            assert!(c2[j] >= c1[j]);
            assert_eq!(huge[j], vcgs[j].len(), "saturates at one switch per core");
        }
    }

    #[test]
    fn assignment_covers_every_core_once() {
        let (vcgs, plan, cfg) = setup();
        let counts = switch_counts_for_sweep(&vcgs, &plan, 2);
        let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
        let mut seen = std::collections::HashSet::new();
        for island in &asg.groups {
            for group in island {
                assert!(!group.is_empty(), "no empty switch groups");
                for &c in group {
                    assert!(seen.insert(c), "core {c} assigned twice");
                }
            }
        }
        assert_eq!(seen.len(), 26);
    }

    #[test]
    fn requested_counts_are_honored() {
        let (vcgs, plan, cfg) = setup();
        let counts = switch_counts_for_sweep(&vcgs, &plan, 1);
        let asg = island_switch_assignment(&vcgs, &plan, &counts, &cfg);
        assert_eq!(asg.counts(), counts);
        assert_eq!(asg.total_switches(), counts.iter().sum::<usize>());
    }

    #[test]
    fn heavily_communicating_cores_share_a_switch() {
        // In the CPU island, arm0 and icache0 exchange 2000 MB/s: with two
        // switches they must not be separated.
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let plan = FrequencyPlan::compute(&soc, &vi, &cfg);
        let cpu = soc.cores_of_kind(vi_noc_soc::CoreKind::Cpu)[0];
        let island = vi.island_of(cpu);
        let vcg = build_vcg(&soc, &vi, island, &cfg);
        let counts: Vec<usize> = vec![2];
        let asg = island_switch_assignment(&[vcg], &plan, &counts, &cfg);
        // Find arm0 and icache0 groups.
        let arm0 = soc
            .core_ids()
            .find(|&c| soc.core(c).name == "arm0")
            .unwrap();
        let ic0 = soc
            .core_ids()
            .find(|&c| soc.core(c).name == "icache0")
            .unwrap();
        let group_of = |c| {
            asg.groups[0]
                .iter()
                .position(|g| g.contains(&c))
                .expect("assigned")
        };
        assert_eq!(group_of(arm0), group_of(ic0));
    }
}
