//! Design verification: shutdown safety and constraint compliance.

use crate::config::{FrequencyPlan, SynthesisConfig};
use crate::paths::route_latency;
use crate::topology::Topology;
use std::collections::VecDeque;
use std::fmt;
use vi_noc_soc::{FlowId, SocSpec, ViAssignment};

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A route visits a switch in an island that is neither the flow's
    /// source, nor its destination, nor the intermediate island.
    RouteThroughForeignIsland {
        /// The offending flow.
        flow: FlowId,
        /// Extended island index visited.
        island: usize,
    },
    /// A flow has no route at all.
    MissingRoute {
        /// The unrouted flow.
        flow: FlowId,
    },
    /// A route's stored latency disagrees with the latency model or exceeds
    /// the flow's constraint.
    LatencyViolated {
        /// The offending flow.
        flow: FlowId,
        /// Route latency (cycles).
        latency: u32,
        /// Flow constraint (cycles).
        constraint: u32,
    },
    /// A link carries more load than its capacity.
    LinkOverloaded {
        /// Index of the link in `topology.links()`.
        link: usize,
    },
    /// A switch uses more ports than its island's `max_sw_size` allows.
    SwitchOversized {
        /// Index of the switch.
        switch: usize,
        /// `max(inputs, outputs)`.
        size: usize,
        /// Allowed maximum.
        max: usize,
    },
    /// A route's hop is not backed by an open link.
    MissingLink {
        /// The offending flow.
        flow: FlowId,
    },
    /// Shutting down `island` would sever `flow` even though the flow does
    /// not terminate there.
    BrokenUnderShutdown {
        /// Power-gated island.
        island: usize,
        /// Severed flow.
        flow: FlowId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RouteThroughForeignIsland { flow, island } => {
                write!(f, "flow {flow} routes through foreign island {island}")
            }
            Violation::MissingRoute { flow } => write!(f, "flow {flow} has no route"),
            Violation::LatencyViolated {
                flow,
                latency,
                constraint,
            } => write!(f, "flow {flow} latency {latency} > constraint {constraint}"),
            Violation::LinkOverloaded { link } => write!(f, "link {link} over capacity"),
            Violation::SwitchOversized { switch, size, max } => {
                write!(f, "switch {switch} size {size} > max {max}")
            }
            Violation::MissingLink { flow } => {
                write!(f, "flow {flow} uses a hop with no open link")
            }
            Violation::BrokenUnderShutdown { island, flow } => {
                write!(f, "gating island {island} severs flow {flow}")
            }
        }
    }
}

/// Checks every structural invariant of a synthesized design:
/// routes exist and are shutdown-legal, link loads fit capacities, switch
/// sizes fit the frequency-derived budgets, and stored latencies match the
/// latency model and the flow constraints.
pub fn verify_design(
    spec: &SocSpec,
    vi: &ViAssignment,
    topo: &Topology,
    cfg: &SynthesisConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mid = vi.island_count();
    let plan = FrequencyPlan::compute(spec, vi, cfg);

    for fid in spec.flow_ids() {
        let Some(route) = topo.route(fid) else {
            violations.push(Violation::MissingRoute { flow: fid });
            continue;
        };
        let flow = spec.flow(fid);
        let a = vi.island_of(flow.src);
        let b = vi.island_of(flow.dst);
        for &s in &route.switches {
            let isl = topo.switch(s).island_ext;
            if isl != a && isl != b && isl != mid {
                violations.push(Violation::RouteThroughForeignIsland {
                    flow: fid,
                    island: isl,
                });
            }
        }
        // Hops must be backed by open links.
        for pair in route.switches.windows(2) {
            if topo.find_link(pair[0], pair[1]).is_none() {
                violations.push(Violation::MissingLink { flow: fid });
            }
        }
        // Endpoint switches must host the endpoint cores.
        let src_ok = topo.switch_of_core(flow.src) == route.switches[0];
        let dst_ok = topo.switch_of_core(flow.dst) == *route.switches.last().unwrap();
        if !src_ok || !dst_ok {
            violations.push(Violation::MissingLink { flow: fid });
        }
        // Latency model agreement + constraint.
        let expect = route_latency(route.switches.len(), route.crossings, cfg);
        if expect != route.latency_cycles || route.latency_cycles > flow.max_latency_cycles {
            violations.push(Violation::LatencyViolated {
                flow: fid,
                latency: route.latency_cycles,
                constraint: flow.max_latency_cycles,
            });
        }
    }

    // Link capacities: recompute loads from routes and compare.
    let mut recomputed = vec![0.0f64; topo.links().len()];
    for route in topo.routes() {
        let bw = spec.flow(route.flow).bandwidth.bytes_per_s();
        for pair in route.switches.windows(2) {
            if let Some(l) = topo.find_link(pair[0], pair[1]) {
                recomputed[l.index()] += bw;
            }
        }
    }
    for (i, l) in topo.links().iter().enumerate() {
        if recomputed[i] > l.capacity.bytes_per_s() * (1.0 + 1e-9) {
            violations.push(Violation::LinkOverloaded { link: i });
        }
    }

    // Switch size budgets.
    for s in topo.switch_ids() {
        let (inp, outp) = topo.switch_ports(s);
        let size = inp.max(outp);
        let max = plan.max_switch_size_ext(topo.switch(s).island_ext);
        if size > max {
            violations.push(Violation::SwitchOversized {
                switch: s.index(),
                size,
                max,
            });
        }
    }

    violations.extend(verify_shutdown_safety(spec, vi, topo));
    violations
}

/// The headline property of the paper: for every island that may be power
/// gated, every flow not terminating in that island must still have a
/// connected route after removing the island's switches and links.
///
/// Checked both structurally (routes avoid the gated island) and by
/// reachability over the surviving switch graph.
pub fn verify_shutdown_safety(
    spec: &SocSpec,
    vi: &ViAssignment,
    topo: &Topology,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for island in 0..vi.island_count() {
        if !vi.can_shutdown(island) {
            continue;
        }
        for fid in spec.flow_ids() {
            let flow = spec.flow(fid);
            let a = vi.island_of(flow.src);
            let b = vi.island_of(flow.dst);
            if a == island || b == island {
                continue; // the flow dies with its endpoint; that's fine
            }
            let Some(route) = topo.route(fid) else {
                continue; // reported as MissingRoute by verify_design
            };
            // Structural check: the stored route survives the gating.
            let route_hits = route
                .switches
                .iter()
                .any(|&s| topo.switch(s).island_ext == island);
            // Reachability check: some path still exists between the
            // endpoint switches without the gated island.
            let src_sw = topo.switch_of_core(flow.src);
            let dst_sw = topo.switch_of_core(flow.dst);
            let reachable = {
                let mut seen = vec![false; topo.switches().len()];
                let mut q = VecDeque::new();
                if topo.switch(src_sw).island_ext != island {
                    seen[src_sw.index()] = true;
                    q.push_back(src_sw);
                }
                while let Some(u) = q.pop_front() {
                    for l in topo.links() {
                        if l.from == u
                            && !seen[l.to.index()]
                            && topo.switch(l.to).island_ext != island
                        {
                            seen[l.to.index()] = true;
                            q.push_back(l.to);
                        }
                    }
                }
                seen[dst_sw.index()]
            };
            if route_hits || !reachable {
                violations.push(Violation::BrokenUnderShutdown { island, flow: fid });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn synthesized_designs_verify_clean() {
        let soc = benchmarks::d26_mobile();
        for k in [1usize, 4, 6, 7] {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
            for p in &space.points {
                let v = verify_design(&soc, &vi, &p.topology, &SynthesisConfig::default());
                assert!(
                    v.is_empty(),
                    "k={k} sweep={} mid={}: {:?}",
                    p.sweep_index,
                    p.requested_intermediate,
                    v
                );
            }
        }
    }

    #[test]
    fn shutdown_safety_holds_for_whole_suite() {
        for (soc, k) in benchmarks::suite() {
            let vi = partition::logical_partition(&soc, k).unwrap();
            let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
            let p = space.min_power_point().unwrap();
            let v = verify_shutdown_safety(&soc, &vi, &p.topology);
            assert!(v.is_empty(), "{}: {:?}", soc.name(), v);
        }
    }

    #[test]
    fn violations_display_meaningfully() {
        let v = Violation::BrokenUnderShutdown {
            island: 3,
            flow: FlowId::from_index(7),
        };
        assert!(v.to_string().contains("island 3"));
        assert!(v.to_string().contains("f7"));
    }

    #[test]
    fn tampered_route_is_caught() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let space = synthesize(&soc, &vi, &cfg).unwrap();
        let mut topo = space.min_power_point().unwrap().topology.clone();
        // Corrupt the latency of the first routed flow.
        let fid = soc.flow_ids().next().unwrap();
        let mut route = topo.route(fid).unwrap().clone();
        route.latency_cycles += 1;
        topo.set_route(route);
        let v = verify_design(&soc, &vi, &topo, &cfg);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::LatencyViolated { .. })),
            "{v:?}"
        );
    }
}
