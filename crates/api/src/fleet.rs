//! Scenario-level integration with the `vi-noc-fleet` crate: the job
//! payloads a coordinator hands to workers are scenario documents, so any
//! machine with the `vi-noc` binary can join a sweep with `vi-noc fleet
//! work --connect HOST:PORT` — no shard arithmetic, no files to ship.
//!
//! A payload is `{"scenario":<scenario doc>}` for the coarse grid, or
//! `{"scenario":<doc>,"windows":[..]}` for the refinement stage (the
//! windows were derived from the coarse frontier on the coordinator and
//! travel with the job, so workers never re-run the coarse sweep). Both
//! sides resolve the payload independently and prove agreement through the
//! grid fingerprint; see [`vi_noc_fleet`] for the protocol.

use crate::error::Error;
use crate::scenario::Scenario;
use std::sync::Arc;
use vi_noc_fleet::{
    spawn_local_workers, start_coordinator, FleetConfig, JobResolver, ResolvedJob, WorkerOpts,
};
use vi_noc_sweep::{
    json, window_json, windows_from_value, GridDescriptor, RefineWindow, SweepGrid,
};

/// Resolves `{"scenario":..,"windows":[..]?}` job payloads into sweep
/// grids. Stateless: hand one to [`start_coordinator`] and to every
/// [`vi_noc_fleet::run_worker`].
pub struct ScenarioJobResolver;

impl JobResolver for ScenarioJobResolver {
    fn resolve(&self, payload: &str) -> Result<ResolvedJob, String> {
        let doc = json::parse(payload).map_err(|e| format!("job payload: {e}"))?;
        let json::Value::Obj(members) = &doc else {
            return Err("job payload: not an object".to_string());
        };
        for (key, _) in members {
            if key != "scenario" && key != "windows" {
                return Err(format!("job payload: unknown member '{key}'"));
            }
        }
        let scenario_doc = doc
            .get("scenario")
            .ok_or("job payload: missing 'scenario'")?;
        let scenario = Scenario::from_json(&scenario_doc.to_json())
            .map_err(|e| format!("job payload: {e}"))?;
        let windows = doc
            .get("windows")
            .map(|v| windows_from_value(v, "job payload"))
            .transpose()?;

        let spec = scenario.resolve_spec().map_err(|e| e.to_string())?;
        let vi = scenario
            .resolve_partition(&spec)
            .map_err(|e| e.to_string())?;
        let cfg = scenario.synthesis.clone();
        let grid = match windows {
            Some(ws) => {
                let plan = scenario.refine.as_ref().ok_or(
                    "job payload: 'windows' given but the scenario declares no 'refine' stage",
                )?;
                SweepGrid::build_windowed(&spec, &vi, &cfg, &plan.grid, ws)
            }
            None => {
                let grid_cfg = scenario.sweep.as_ref().ok_or_else(|| {
                    format!("scenario '{}' declares no sweep grid", scenario.name)
                })?;
                SweepGrid::build(&spec, &vi, &cfg, grid_cfg)
            }
        };
        let desc =
            GridDescriptor::for_grid(&grid, spec.name(), &scenario.partition.tag(), cfg.seed);
        Ok(ResolvedJob {
            spec,
            vi,
            cfg,
            grid,
            desc,
            prune: scenario.sweep_prune,
        })
    }
}

/// Builds the wire payload for a scenario's sweep: the coarse grid when
/// `windows` is `None`, the windowed refinement grid otherwise. Byte
/// deterministic ([`Scenario::to_json`] is), so every resolver
/// fingerprints the same grid.
pub fn job_payload(scenario: &Scenario, windows: Option<&[RefineWindow]>) -> String {
    let mut payload = String::from("{\"scenario\":");
    payload.push_str(scenario.to_json().trim_end());
    if let Some(ws) = windows {
        payload.push_str(",\"windows\":[");
        for (i, w) in ws.iter().enumerate() {
            if i > 0 {
                payload.push(',');
            }
            payload.push_str(&window_json(w));
        }
        payload.push(']');
    }
    payload.push('}');
    payload
}

/// Runs one job payload through an ephemeral in-process fleet — loopback
/// coordinator plus `workers` local worker threads — and returns the
/// folded frontier file. The emission is byte-identical to the unsharded
/// sweep of the same grid.
pub(crate) fn run_local_fleet(
    payload: &str,
    workers: usize,
    cfg: FleetConfig,
) -> Result<String, String> {
    let resolver: Arc<dyn JobResolver> = Arc::new(ScenarioJobResolver);
    let handle = start_coordinator("127.0.0.1:0", Arc::clone(&resolver), cfg)?;
    let pool = spawn_local_workers(handle.addr(), resolver, workers, WorkerOpts::default());
    let result = handle.submit(payload);
    handle.shutdown();
    for worker in pool {
        match worker.join() {
            Ok(Ok(_)) => {}
            // A worker failure only matters when the job failed with it —
            // a finished fold is already proven complete by the lease book.
            Ok(Err(e)) if result.is_err() => return Err(format!("worker failed: {e}")),
            Ok(Err(_)) => {}
            Err(_) => return Err("worker thread panicked".to_string()),
        }
    }
    result
}

/// The `sweep_workers` execution path of [`Scenario::run`]: the coarse
/// grid when `windows` is `None`, the windowed refinement grid otherwise.
pub(crate) fn run_sweep_via_fleet(
    scenario: &Scenario,
    windows: Option<&[RefineWindow]>,
    workers: usize,
) -> Result<String, Error> {
    run_local_fleet(
        &job_payload(scenario, windows),
        workers,
        FleetConfig::default(),
    )
    .map_err(|e| Error::scenario("fleet", e))
}
