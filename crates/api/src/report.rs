//! The result of running a [`crate::Scenario`]: chosen design, realized
//! metrics, simulation statistics, shutdown outcome, sweep frontier — with
//! a byte-deterministic JSON emission and a human-readable summary.

use vi_noc_core::{
    design_point_json, json_number, json_string, metrics_json, DesignMetrics, DesignPoint,
};
use vi_noc_sim::{MeasuredPower, ShutdownOutcome, SimStats};

/// `format` tag of report files.
pub const REPORT_FORMAT: &str = "vi-noc-report-v1";

/// The simulation section of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
    /// Engine statistics (bit-identical to a hand-chained run).
    pub stats: SimStats,
    /// Observed activity priced with the synthesis power models (`None`
    /// for an empty horizon).
    pub measured: Option<MeasuredPower>,
}

/// The island-shutdown section of a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// The island that was gated (resolved from the plan's choice).
    pub island: usize,
    /// What happened.
    pub outcome: ShutdownOutcome,
}

/// Everything a scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The scenario's name (provenance).
    pub scenario: String,
    /// The spec the pipeline ran over.
    pub spec_name: String,
    /// Number of voltage islands.
    pub island_count: usize,
    /// Feasible design points explored by synthesis.
    pub explored_points: usize,
    /// The chosen (minimum-power) design point, estimated wire lengths.
    pub point: DesignPoint,
    /// The chosen point's metrics after floorplan realization.
    pub realized_metrics: DesignMetrics,
    /// Realized links that miss timing at their clock (would be pipelined).
    pub infeasible_links: usize,
    /// Simulation section, if the scenario declared one.
    pub sim: Option<SimReport>,
    /// Shutdown section, if the scenario declared one.
    pub shutdown: Option<ShutdownReport>,
    /// The sweep frontier as the exact frontier-file text
    /// (`vi-noc-sweep-frontier-v1`), if the scenario declared a grid —
    /// byte-identical to `sweep run --frontier` over the same grid.
    pub frontier: Option<String>,
    /// The dynamic-sweep result table as the exact table-file text
    /// (`vi-noc-dynsweep-v1`), if the scenario declared a `dyn_sweep`
    /// stage — byte-identical to the standalone `vi-noc dynsweep run`
    /// emission over the same scenario.
    pub dyn_sweep: Option<String>,
}

fn sim_stats_json(stats: &SimStats) -> String {
    let mut s = String::from("{");
    s.push_str(&format!(
        "\"elapsed_ps\":{},\"flits_in_flight\":{},\"total_injected_packets\":{},\
         \"total_delivered_packets\":{},\"flows\":[",
        stats.elapsed_ps,
        stats.flits_in_flight,
        stats.total_injected_packets(),
        stats.total_delivered_packets()
    ));
    for (i, f) in stats.flows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"injected\":{},\"delivered\":{},\"total_latency_ps\":{},\"max_latency_ps\":{}}}",
            f.injected_packets, f.delivered_packets, f.total_latency_ps, f.max_latency_ps
        ));
    }
    s.push_str("],\"switch_flits\":[");
    for (i, n) in stats.switch_flits.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&n.to_string());
    }
    s.push_str("]}");
    s
}

fn measured_json(m: &MeasuredPower) -> String {
    format!(
        "{{\"switches\":{},\"links\":{},\"synchronizers\":{},\"nis\":{},\"fig2\":{},\
         \"total\":{}}}",
        json_number(m.switches.mw()),
        json_number(m.links.mw()),
        json_number(m.synchronizers.mw()),
        json_number(m.nis.mw()),
        json_number(m.fig2_power().mw()),
        json_number(m.total().mw())
    )
}

impl Report {
    /// Serializes the report byte-deterministically: fixed member order,
    /// one top-level member per line, shortest-round-trip numbers — the
    /// same discipline as [`vi_noc_core::design_point_json`] and the sweep
    /// checkpoint format, so two runs of a deterministic scenario emit
    /// bit-identical files (the CI `scenario-smoke` job `cmp`s one against
    /// a committed golden artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\"format\":{},", json_string(REPORT_FORMAT)));
        s.push_str(&format!("\n\"scenario\":{},", json_string(&self.scenario)));
        s.push_str(&format!(
            "\n\"spec_name\":{},",
            json_string(&self.spec_name)
        ));
        s.push_str(&format!("\n\"island_count\":{},", self.island_count));
        s.push_str(&format!("\n\"explored_points\":{},", self.explored_points));
        s.push_str(&format!("\n\"point\":{},", design_point_json(&self.point)));
        s.push_str(&format!(
            "\n\"realized\":{{\"metrics\":{},\"infeasible_links\":{}}}",
            metrics_json(&self.realized_metrics),
            self.infeasible_links
        ));
        if let Some(sim) = &self.sim {
            s.push_str(&format!(
                ",\n\"sim\":{{\"horizon_ns\":{},\"stats\":{}",
                sim.horizon_ns,
                sim_stats_json(&sim.stats)
            ));
            if let Some(m) = &sim.measured {
                s.push_str(&format!(",\"measured_power_mw\":{}", measured_json(m)));
            }
            s.push('}');
        }
        if let Some(sd) = &self.shutdown {
            s.push_str(&format!(
                ",\n\"shutdown\":{{\"island\":{},\"survivors_before\":{},\"survivors_after\":{},\
                 \"total_delivered\":{},\"drained_cleanly\":{}}}",
                sd.island,
                sd.outcome.survivors_before,
                sd.outcome.survivors_after,
                sd.outcome.total_delivered,
                sd.outcome.drained_cleanly
            ));
        }
        if let Some(frontier) = &self.frontier {
            // Embedded verbatim (minus the file's trailing newline), so the
            // frontier bytes inside a report equal the standalone file's.
            s.push_str(",\n\"frontier\":");
            s.push_str(frontier.trim_end_matches('\n'));
        }
        if let Some(table) = &self.dyn_sweep {
            // Same discipline as the frontier: the table bytes inside a
            // report equal the standalone file's.
            s.push_str(",\n\"dyn_sweep\":");
            s.push_str(table.trim_end_matches('\n'));
        }
        s.push_str("\n}\n");
        s
    }

    /// A terminal-friendly multi-line summary of the run.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "scenario '{}': {} @ {} islands",
            self.scenario, self.spec_name, self.island_count
        );
        let _ = writeln!(
            s,
            "  synthesis: {} feasible points; chosen: {} switches, {:.1} mW, \
             {:.2} cycles avg latency",
            self.explored_points,
            self.point.metrics.switch_count,
            self.point.metrics.noc_dynamic_power().mw(),
            self.point.metrics.avg_latency_cycles
        );
        let _ = writeln!(
            s,
            "  floorplan: {:.1} mW with Manhattan wires ({} link(s) need pipelining)",
            self.realized_metrics.noc_dynamic_power().mw(),
            self.infeasible_links
        );
        if let Some(sim) = &self.sim {
            let _ = writeln!(
                s,
                "  simulated {} ns: {} packets delivered, avg latency {:.1} ns",
                sim.horizon_ns,
                sim.stats.total_delivered_packets(),
                sim.stats.avg_latency_ps().unwrap_or(0.0) / 1e3
            );
            if let Some(m) = &sim.measured {
                let _ = writeln!(
                    s,
                    "  measured NoC power: {:.1} mW (analytic full-load: {:.1} mW)",
                    m.fig2_power().mw(),
                    self.realized_metrics.noc_dynamic_power().mw()
                );
            }
        }
        if let Some(sd) = &self.shutdown {
            let _ = writeln!(
                s,
                "  island {} gated: drained cleanly = {}, survivors delivered {} before / \
                 {} after the gate",
                sd.island,
                sd.outcome.drained_cleanly,
                sd.outcome.survivors_before,
                sd.outcome.survivors_after
            );
        }
        if let Some(frontier) = &self.frontier {
            let entries = frontier.matches("\"ordinal\":").count();
            let _ = writeln!(
                s,
                "  sweep frontier: {entries} undominated point(s) ({} bytes)",
                frontier.len()
            );
        }
        if let Some(table) = &self.dyn_sweep {
            let cells = table.matches("\"provenance\":").count();
            let exact = table.matches("\"provenance\":\"exact\"").count();
            let reused = table.matches("{\"reused\":").count();
            let bounded = table.matches("{\"bounded\":").count();
            let _ = writeln!(
                s,
                "  dynamic sweep: {cells} cell(s) ({exact} exact / {reused} reused / \
                 {bounded} bounded)"
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PartitionPlan, Scenario, SpecSource};
    use vi_noc_floorplan::FloorplanConfig;

    fn small_report() -> Report {
        let mut scenario = Scenario::new(
            "report test",
            SpecSource::Benchmark("d12".into()),
            PartitionPlan::Logical { islands: 4 },
        );
        scenario.floorplan = FloorplanConfig {
            iterations: 2_000,
            ..FloorplanConfig::default()
        };
        scenario.sim = Some(crate::scenario::SimPlan {
            horizon_ns: 20_000,
            ..crate::scenario::SimPlan::default()
        });
        scenario.shutdown = Some(crate::scenario::ShutdownPlan {
            stop_at_ns: 5_000,
            drain_ns: 2_000,
            post_gate_ns: 5_000,
            ..crate::scenario::ShutdownPlan::default()
        });
        scenario.run().unwrap()
    }

    #[test]
    fn json_emission_is_deterministic_and_parseable() {
        let report = small_report();
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "deterministic");
        assert!(json.starts_with("{\"format\":\"vi-noc-report-v1\","));
        let doc = vi_noc_sweep::json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.get("spec_name").and_then(|v| v.as_str()),
            Some("d12_auto")
        );
        assert!(doc.get("sim").is_some());
        assert!(doc.get("shutdown").is_some());
        assert!(doc.get("frontier").is_none(), "no sweep declared");
    }

    #[test]
    fn summary_mentions_every_section() {
        let report = small_report();
        let text = report.summary();
        assert!(text.contains("d12_auto"));
        assert!(text.contains("floorplan"));
        assert!(text.contains("simulated"));
        assert!(text.contains("gated"));
    }
}
