//! Scenario JSON ingestion and emission.
//!
//! Built on the sweep crate's serde-free document model
//! ([`vi_noc_sweep::json`]): ingestion is *strict* — unknown members,
//! duplicate keys (rejected by the parser itself), wrong types and
//! out-of-range values are all errors with a JSON-path context — and
//! emission is byte-deterministic (fixed member order, every field written,
//! shortest-round-trip numbers), so
//! `Scenario::from_json(s.to_json()) == s` holds exactly; the proptest in
//! `crates/api/tests/scenario_json.rs` pins it over random synthetic SoCs
//! and configurations.
//!
//! Quantities are emitted in their storage units (`clock_hz`,
//! `bandwidth_bytes_per_s`, `dyn_power_w`) so values round-trip bit-exactly;
//! hand-written files may use the scaled alternates (`clock_mhz`,
//! `bandwidth_mbps`, `dyn_power_mw`) instead.

use crate::error::Error;
use crate::scenario::{
    DynSweepPlan, IslandChoice, PartitionPlan, RefinePlan, Scenario, ShutdownPlan, SimPlan,
    SpecSource,
};
use vi_noc_core::{json_number, json_string, SynthesisConfig};
use vi_noc_dynsweep::Mode;
use vi_noc_floorplan::FloorplanConfig;
use vi_noc_models::{Area, Bandwidth, Frequency, Power, Technology};
use vi_noc_sim::TrafficKind;
use vi_noc_soc::{CoreId, CoreKind, CoreSpec, SocSpec, TrafficFlow};
use vi_noc_sweep::json::{self, Value};
use vi_noc_sweep::{GridConfig, RefineParams};

/// `format` tag of scenario files.
pub const SCENARIO_FORMAT: &str = "vi-noc-scenario-v1";

type Members = [(String, Value)];

fn as_obj<'a>(v: &'a Value, ctx: &str) -> Result<&'a Members, Error> {
    match v {
        Value::Obj(members) => Ok(members),
        _ => Err(Error::scenario(ctx, "expected an object")),
    }
}

fn check_keys(members: &Members, allowed: &[&str], ctx: &str) -> Result<(), Error> {
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(Error::scenario(
                ctx,
                format!("unknown member '{k}' (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get<'a>(members: &'a Members, key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req<'a>(members: &'a Members, key: &str, ctx: &str) -> Result<&'a Value, Error> {
    get(members, key).ok_or_else(|| Error::scenario(ctx, format!("missing member '{key}'")))
}

fn str_of<'a>(v: &'a Value, ctx: &str) -> Result<&'a str, Error> {
    v.as_str()
        .ok_or_else(|| Error::scenario(ctx, "expected a string"))
}

fn f64_of(v: &Value, ctx: &str) -> Result<f64, Error> {
    v.as_f64()
        .ok_or_else(|| Error::scenario(ctx, "expected a number"))
}

fn u64_of(v: &Value, ctx: &str) -> Result<u64, Error> {
    v.as_u64()
        .ok_or_else(|| Error::scenario(ctx, "expected an unsigned integer"))
}

fn usize_of(v: &Value, ctx: &str) -> Result<usize, Error> {
    v.as_usize()
        .ok_or_else(|| Error::scenario(ctx, "expected an unsigned integer"))
}

fn u32_of(v: &Value, ctx: &str) -> Result<u32, Error> {
    u64_of(v, ctx)?
        .try_into()
        .map_err(|_| Error::scenario(ctx, "value does not fit in 32 bits"))
}

fn bool_of(v: &Value, ctx: &str) -> Result<bool, Error> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(Error::scenario(ctx, "expected true or false")),
    }
}

/// Applies `read` to member `key` if present (config overrides on top of
/// defaults).
fn override_field<T>(
    members: &Members,
    key: &str,
    ctx: &str,
    slot: &mut T,
    read: impl Fn(&Value, &str) -> Result<T, Error>,
) -> Result<(), Error> {
    if let Some(v) = get(members, key) {
        *slot = read(v, &format!("{ctx}.{key}"))?;
    }
    Ok(())
}

/// Exactly one of two unit-variant members, the second scaled by `scale`.
fn unit_pair(
    members: &Members,
    raw_key: &str,
    scaled_key: &str,
    scale: f64,
    ctx: &str,
) -> Result<f64, Error> {
    match (get(members, raw_key), get(members, scaled_key)) {
        (Some(v), None) => f64_of(v, &format!("{ctx}.{raw_key}")),
        (None, Some(v)) => Ok(f64_of(v, &format!("{ctx}.{scaled_key}"))? * scale),
        (Some(_), Some(_)) => Err(Error::scenario(
            ctx,
            format!("'{raw_key}' and '{scaled_key}' are mutually exclusive"),
        )),
        (None, None) => Err(Error::scenario(
            ctx,
            format!("missing member '{raw_key}' (or '{scaled_key}')"),
        )),
    }
}

/// A strictly positive number (core areas and clocks — zero or negative
/// values would panic deep in the floorplanner instead of erroring here).
fn positive(x: f64, ctx: &str) -> Result<f64, Error> {
    if x > 0.0 {
        Ok(x)
    } else {
        Err(Error::scenario(ctx, format!("must be positive, got {x}")))
    }
}

/// A non-negative number (core dynamic power may be zero, never negative).
fn non_negative(x: f64, ctx: &str) -> Result<f64, Error> {
    if x >= 0.0 {
        Ok(x)
    } else {
        Err(Error::scenario(ctx, format!("must be >= 0, got {x}")))
    }
}

// --- Spec ----------------------------------------------------------------

fn spec_from_value(v: &Value, ctx: &str) -> Result<SpecSource, Error> {
    let members = as_obj(v, ctx)?;
    if get(members, "benchmark").is_some() {
        check_keys(members, &["benchmark"], ctx)?;
        let name = str_of(req(members, "benchmark", ctx)?, &format!("{ctx}.benchmark"))?;
        return Ok(SpecSource::Benchmark(name.to_string()));
    }
    check_keys(members, &["name", "cores", "flows"], ctx)?;
    let name = str_of(req(members, "name", ctx)?, &format!("{ctx}.name"))?;
    let mut spec = SocSpec::new(name);

    let cores_ctx = format!("{ctx}.cores");
    let cores = req(members, "cores", ctx)?
        .as_arr()
        .ok_or_else(|| Error::scenario(&cores_ctx, "expected an array"))?;
    for (i, core) in cores.iter().enumerate() {
        let cctx = format!("{cores_ctx}[{i}]");
        let m = as_obj(core, &cctx)?;
        check_keys(
            m,
            &[
                "name",
                "kind",
                "area_mm2",
                "dyn_power_w",
                "dyn_power_mw",
                "clock_hz",
                "clock_mhz",
                "always_on",
            ],
            &cctx,
        )?;
        let kind_ctx = format!("{cctx}.kind");
        let kind: CoreKind = str_of(req(m, "kind", &cctx)?, &kind_ctx)?
            .parse()
            .map_err(|e: String| Error::scenario(&kind_ctx, e))?;
        let mut always_on = false;
        override_field(m, "always_on", &cctx, &mut always_on, bool_of)?;
        let area_ctx = format!("{cctx}.area_mm2");
        spec.add_core(CoreSpec {
            name: str_of(req(m, "name", &cctx)?, &format!("{cctx}.name"))?.to_string(),
            kind,
            area: Area::from_mm2(positive(
                f64_of(req(m, "area_mm2", &cctx)?, &area_ctx)?,
                &area_ctx,
            )?),
            dyn_power: Power::from_watts(non_negative(
                unit_pair(m, "dyn_power_w", "dyn_power_mw", 1e-3, &cctx)?,
                &format!("{cctx}.dyn_power_w"),
            )?),
            clock: Frequency::from_hz(positive(
                unit_pair(m, "clock_hz", "clock_mhz", 1e6, &cctx)?,
                &format!("{cctx}.clock_hz"),
            )?),
            always_on,
        });
    }

    let flows_ctx = format!("{ctx}.flows");
    let flows = req(members, "flows", ctx)?
        .as_arr()
        .ok_or_else(|| Error::scenario(&flows_ctx, "expected an array"))?;
    for (i, flow) in flows.iter().enumerate() {
        let fctx = format!("{flows_ctx}[{i}]");
        let m = as_obj(flow, &fctx)?;
        check_keys(
            m,
            &[
                "src",
                "dst",
                "bandwidth_bytes_per_s",
                "bandwidth_mbps",
                "max_latency_cycles",
            ],
            &fctx,
        )?;
        let flow = TrafficFlow {
            src: CoreId::from_index(usize_of(req(m, "src", &fctx)?, &format!("{fctx}.src"))?),
            dst: CoreId::from_index(usize_of(req(m, "dst", &fctx)?, &format!("{fctx}.dst"))?),
            bandwidth: Bandwidth::from_bytes_per_s(unit_pair(
                m,
                "bandwidth_bytes_per_s",
                "bandwidth_mbps",
                1e6,
                &fctx,
            )?),
            max_latency_cycles: u32_of(
                req(m, "max_latency_cycles", &fctx)?,
                &format!("{fctx}.max_latency_cycles"),
            )?,
        };
        // Malformed flows are rejected at their source (the `soc` layer's
        // Result-based construction), with the JSON path attached.
        spec.try_add_flow(flow)
            .map_err(|e| Error::scenario(&fctx, e.to_string()))?;
    }
    Ok(SpecSource::Inline(spec))
}

fn spec_to_json(spec: &SpecSource) -> String {
    match spec {
        SpecSource::Benchmark(name) => format!("{{\"benchmark\":{}}}", json_string(name)),
        SpecSource::Inline(spec) => {
            let mut s = format!("{{\"name\":{},\"cores\":[", json_string(spec.name()));
            for (i, c) in spec.cores().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"name\":{},\"kind\":{},\"area_mm2\":{},\"dyn_power_w\":{},\
                     \"clock_hz\":{},\"always_on\":{}}}",
                    json_string(&c.name),
                    json_string(&c.kind.to_string()),
                    json_number(c.area.mm2()),
                    json_number(c.dyn_power.watts()),
                    json_number(c.clock.hz()),
                    c.always_on
                ));
            }
            s.push_str("],\"flows\":[");
            for (i, f) in spec.flows().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"src\":{},\"dst\":{},\"bandwidth_bytes_per_s\":{},\
                     \"max_latency_cycles\":{}}}",
                    f.src.index(),
                    f.dst.index(),
                    json_number(f.bandwidth.bytes_per_s()),
                    f.max_latency_cycles
                ));
            }
            s.push_str("]}");
            s
        }
    }
}

// --- Partition -----------------------------------------------------------

fn partition_from_value(v: &Value, ctx: &str) -> Result<PartitionPlan, Error> {
    let members = as_obj(v, ctx)?;
    let kind_ctx = format!("{ctx}.kind");
    let kind = str_of(req(members, "kind", ctx)?, &kind_ctx)?;
    let islands = usize_of(req(members, "islands", ctx)?, &format!("{ctx}.islands"))?;
    match kind {
        "logical" => {
            check_keys(members, &["kind", "islands"], ctx)?;
            Ok(PartitionPlan::Logical { islands })
        }
        "communication" | "comm" => {
            check_keys(members, &["kind", "islands", "seed"], ctx)?;
            let mut seed = 1u64;
            override_field(members, "seed", ctx, &mut seed, u64_of)?;
            Ok(PartitionPlan::Communication { islands, seed })
        }
        other => Err(Error::scenario(
            kind_ctx,
            format!("unknown partition kind '{other}' (logical | communication)"),
        )),
    }
}

fn partition_to_json(p: &PartitionPlan) -> String {
    match p {
        PartitionPlan::Logical { islands } => {
            format!("{{\"kind\":\"logical\",\"islands\":{islands}}}")
        }
        PartitionPlan::Communication { islands, seed } => {
            format!("{{\"kind\":\"communication\",\"islands\":{islands},\"seed\":{seed}}}")
        }
    }
}

// --- Technology ----------------------------------------------------------

const TECH_KEYS: [&str; 11] = [
    "node_nm",
    "vdd_v",
    "wire_cap_ff_per_mm",
    "wire_delay_ps_per_mm",
    "link_setup_margin_ns",
    "switch_delay_base_ns",
    "switch_delay_per_port_ns",
    "activity_factor",
    "leak_density_mw_per_mm2",
    "gating_residual",
    "level_shift_energy_pj_per_bit",
];

fn technology_from_value(v: &Value, ctx: &str) -> Result<Technology, Error> {
    match v {
        Value::Str(name) => match name.as_str() {
            "cmos_65nm" => Ok(Technology::cmos_65nm()),
            "cmos_90nm" => Ok(Technology::cmos_90nm()),
            other => Err(Error::scenario(
                ctx,
                format!("unknown technology '{other}' (cmos_65nm | cmos_90nm | inline object)"),
            )),
        },
        _ => {
            let members = as_obj(v, ctx)?;
            check_keys(members, &TECH_KEYS, ctx)?;
            let mut t = Technology::cmos_65nm();
            override_field(members, "node_nm", ctx, &mut t.node_nm, f64_of)?;
            override_field(members, "vdd_v", ctx, &mut t.vdd_v, f64_of)?;
            override_field(
                members,
                "wire_cap_ff_per_mm",
                ctx,
                &mut t.wire_cap_ff_per_mm,
                f64_of,
            )?;
            override_field(
                members,
                "wire_delay_ps_per_mm",
                ctx,
                &mut t.wire_delay_ps_per_mm,
                f64_of,
            )?;
            override_field(
                members,
                "link_setup_margin_ns",
                ctx,
                &mut t.link_setup_margin_ns,
                f64_of,
            )?;
            override_field(
                members,
                "switch_delay_base_ns",
                ctx,
                &mut t.switch_delay_base_ns,
                f64_of,
            )?;
            override_field(
                members,
                "switch_delay_per_port_ns",
                ctx,
                &mut t.switch_delay_per_port_ns,
                f64_of,
            )?;
            override_field(
                members,
                "activity_factor",
                ctx,
                &mut t.activity_factor,
                f64_of,
            )?;
            override_field(
                members,
                "leak_density_mw_per_mm2",
                ctx,
                &mut t.leak_density_mw_per_mm2,
                f64_of,
            )?;
            override_field(
                members,
                "gating_residual",
                ctx,
                &mut t.gating_residual,
                f64_of,
            )?;
            override_field(
                members,
                "level_shift_energy_pj_per_bit",
                ctx,
                &mut t.level_shift_energy_pj_per_bit,
                f64_of,
            )?;
            Ok(t)
        }
    }
}

fn technology_to_json(t: &Technology) -> String {
    if *t == Technology::cmos_65nm() {
        return "\"cmos_65nm\"".to_string();
    }
    if *t == Technology::cmos_90nm() {
        return "\"cmos_90nm\"".to_string();
    }
    format!(
        "{{\"node_nm\":{},\"vdd_v\":{},\"wire_cap_ff_per_mm\":{},\"wire_delay_ps_per_mm\":{},\
         \"link_setup_margin_ns\":{},\"switch_delay_base_ns\":{},\"switch_delay_per_port_ns\":{},\
         \"activity_factor\":{},\"leak_density_mw_per_mm2\":{},\"gating_residual\":{},\
         \"level_shift_energy_pj_per_bit\":{}}}",
        json_number(t.node_nm),
        json_number(t.vdd_v),
        json_number(t.wire_cap_ff_per_mm),
        json_number(t.wire_delay_ps_per_mm),
        json_number(t.link_setup_margin_ns),
        json_number(t.switch_delay_base_ns),
        json_number(t.switch_delay_per_port_ns),
        json_number(t.activity_factor),
        json_number(t.leak_density_mw_per_mm2),
        json_number(t.gating_residual),
        json_number(t.level_shift_energy_pj_per_bit)
    )
}

// --- Stage configs -------------------------------------------------------

fn synthesis_from_value(v: &Value, ctx: &str) -> Result<SynthesisConfig, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &[
            "alpha",
            "link_width_bits",
            "allow_intermediate_vi",
            "max_intermediate_switches",
            "switch_delay_cycles",
            "link_delay_cycles",
            "cost_power_weight",
            "cost_latency_weight",
            "cost_port_scarcity",
            "est_intra_link_mm",
            "est_inter_link_mm",
            "est_mid_link_mm",
            "min_frequency_hz",
            "technology",
            "seed",
            "parallel",
        ],
        ctx,
    )?;
    let mut c = SynthesisConfig::default();
    override_field(m, "alpha", ctx, &mut c.alpha, f64_of)?;
    override_field(m, "link_width_bits", ctx, &mut c.link_width_bits, usize_of)?;
    override_field(
        m,
        "allow_intermediate_vi",
        ctx,
        &mut c.allow_intermediate_vi,
        bool_of,
    )?;
    override_field(
        m,
        "max_intermediate_switches",
        ctx,
        &mut c.max_intermediate_switches,
        usize_of,
    )?;
    override_field(
        m,
        "switch_delay_cycles",
        ctx,
        &mut c.switch_delay_cycles,
        u32_of,
    )?;
    override_field(
        m,
        "link_delay_cycles",
        ctx,
        &mut c.link_delay_cycles,
        u32_of,
    )?;
    override_field(
        m,
        "cost_power_weight",
        ctx,
        &mut c.cost_power_weight,
        f64_of,
    )?;
    override_field(
        m,
        "cost_latency_weight",
        ctx,
        &mut c.cost_latency_weight,
        f64_of,
    )?;
    override_field(
        m,
        "cost_port_scarcity",
        ctx,
        &mut c.cost_port_scarcity,
        f64_of,
    )?;
    override_field(
        m,
        "est_intra_link_mm",
        ctx,
        &mut c.est_intra_link_mm,
        f64_of,
    )?;
    override_field(
        m,
        "est_inter_link_mm",
        ctx,
        &mut c.est_inter_link_mm,
        f64_of,
    )?;
    override_field(m, "est_mid_link_mm", ctx, &mut c.est_mid_link_mm, f64_of)?;
    if let Some(v) = get(m, "min_frequency_hz") {
        c.min_frequency = Frequency::from_hz(f64_of(v, &format!("{ctx}.min_frequency_hz"))?);
    }
    if let Some(v) = get(m, "technology") {
        c.technology = technology_from_value(v, &format!("{ctx}.technology"))?;
    }
    override_field(m, "seed", ctx, &mut c.seed, u64_of)?;
    override_field(m, "parallel", ctx, &mut c.parallel, bool_of)?;
    Ok(c)
}

fn synthesis_to_json(c: &SynthesisConfig) -> String {
    format!(
        "{{\"alpha\":{},\"link_width_bits\":{},\"allow_intermediate_vi\":{},\
         \"max_intermediate_switches\":{},\"switch_delay_cycles\":{},\"link_delay_cycles\":{},\
         \"cost_power_weight\":{},\"cost_latency_weight\":{},\"cost_port_scarcity\":{},\
         \"est_intra_link_mm\":{},\"est_inter_link_mm\":{},\"est_mid_link_mm\":{},\
         \"min_frequency_hz\":{},\"technology\":{},\"seed\":{},\"parallel\":{}}}",
        json_number(c.alpha),
        c.link_width_bits,
        c.allow_intermediate_vi,
        c.max_intermediate_switches,
        c.switch_delay_cycles,
        c.link_delay_cycles,
        json_number(c.cost_power_weight),
        json_number(c.cost_latency_weight),
        json_number(c.cost_port_scarcity),
        json_number(c.est_intra_link_mm),
        json_number(c.est_inter_link_mm),
        json_number(c.est_mid_link_mm),
        json_number(c.min_frequency.hz()),
        technology_to_json(&c.technology),
        c.seed,
        c.parallel
    )
}

fn floorplan_from_value(v: &Value, ctx: &str) -> Result<FloorplanConfig, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &[
            "seed",
            "iterations",
            "initial_temp",
            "cooling",
            "lambda_wire",
            "lambda_island",
            "lambda_aspect",
            "restarts",
            "parallel",
        ],
        ctx,
    )?;
    let mut c = FloorplanConfig::default();
    override_field(m, "seed", ctx, &mut c.seed, u64_of)?;
    override_field(m, "iterations", ctx, &mut c.iterations, usize_of)?;
    override_field(m, "initial_temp", ctx, &mut c.initial_temp, f64_of)?;
    override_field(m, "cooling", ctx, &mut c.cooling, f64_of)?;
    override_field(m, "lambda_wire", ctx, &mut c.lambda_wire, f64_of)?;
    override_field(m, "lambda_island", ctx, &mut c.lambda_island, f64_of)?;
    override_field(m, "lambda_aspect", ctx, &mut c.lambda_aspect, f64_of)?;
    override_field(m, "restarts", ctx, &mut c.restarts, usize_of)?;
    override_field(m, "parallel", ctx, &mut c.parallel, bool_of)?;
    Ok(c)
}

fn floorplan_to_json(c: &FloorplanConfig) -> String {
    format!(
        "{{\"seed\":{},\"iterations\":{},\"initial_temp\":{},\"cooling\":{},\"lambda_wire\":{},\
         \"lambda_island\":{},\"lambda_aspect\":{},\"restarts\":{},\"parallel\":{}}}",
        c.seed,
        c.iterations,
        json_number(c.initial_temp),
        json_number(c.cooling),
        json_number(c.lambda_wire),
        json_number(c.lambda_island),
        json_number(c.lambda_aspect),
        c.restarts,
        c.parallel
    )
}

fn sim_from_value(v: &Value, ctx: &str) -> Result<SimPlan, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &[
            "packet_bytes",
            "link_width_bits",
            "queue_capacity",
            "traffic",
            "seed",
            "load_factor",
            "batching",
            "horizon_ns",
        ],
        ctx,
    )?;
    let mut plan = SimPlan::default();
    let c = &mut plan.config;
    override_field(m, "packet_bytes", ctx, &mut c.packet_bytes, usize_of)?;
    override_field(m, "link_width_bits", ctx, &mut c.link_width_bits, usize_of)?;
    override_field(m, "queue_capacity", ctx, &mut c.queue_capacity, usize_of)?;
    if let Some(v) = get(m, "traffic") {
        let tctx = format!("{ctx}.traffic");
        c.traffic = str_of(v, &tctx)?
            .parse::<TrafficKind>()
            .map_err(|e| Error::scenario(&tctx, e))?;
    }
    override_field(m, "seed", ctx, &mut c.seed, u64_of)?;
    override_field(m, "load_factor", ctx, &mut c.load_factor, f64_of)?;
    override_field(m, "batching", ctx, &mut c.batching, bool_of)?;
    override_field(m, "horizon_ns", ctx, &mut plan.horizon_ns, u64_of)?;
    Ok(plan)
}

fn sim_to_json(plan: &SimPlan) -> String {
    let c = &plan.config;
    format!(
        "{{\"packet_bytes\":{},\"link_width_bits\":{},\"queue_capacity\":{},\"traffic\":{},\
         \"seed\":{},\"load_factor\":{},\"batching\":{},\"horizon_ns\":{}}}",
        c.packet_bytes,
        c.link_width_bits,
        c.queue_capacity,
        json_string(&c.traffic.to_string()),
        c.seed,
        json_number(c.load_factor),
        c.batching,
        plan.horizon_ns
    )
}

fn shutdown_from_value(v: &Value, ctx: &str) -> Result<ShutdownPlan, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &["island", "stop_at_ns", "drain_ns", "post_gate_ns"],
        ctx,
    )?;
    let mut plan = ShutdownPlan::default();
    if let Some(v) = get(m, "island") {
        let ictx = format!("{ctx}.island");
        plan.island = match v {
            Value::Str(s) if s == "auto" => IslandChoice::Auto,
            Value::Num(_) => IslandChoice::Index(usize_of(v, &ictx)?),
            _ => {
                return Err(Error::scenario(
                    ictx,
                    "expected \"auto\" or an island index",
                ))
            }
        };
    }
    override_field(m, "stop_at_ns", ctx, &mut plan.stop_at_ns, u64_of)?;
    override_field(m, "drain_ns", ctx, &mut plan.drain_ns, u64_of)?;
    override_field(m, "post_gate_ns", ctx, &mut plan.post_gate_ns, u64_of)?;
    Ok(plan)
}

fn shutdown_to_json(plan: &ShutdownPlan) -> String {
    let island = match plan.island {
        IslandChoice::Auto => "\"auto\"".to_string(),
        IslandChoice::Index(j) => j.to_string(),
    };
    format!(
        "{{\"island\":{island},\"stop_at_ns\":{},\"drain_ns\":{},\"post_gate_ns\":{}}}",
        plan.stop_at_ns, plan.drain_ns, plan.post_gate_ns
    )
}

fn sweep_from_value(v: &Value, ctx: &str) -> Result<GridConfig, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(m, &["max_boost", "freq_scales", "max_intermediate"], ctx)?;
    let mut c = GridConfig::default();
    override_field(m, "max_boost", ctx, &mut c.max_boost, usize_of)?;
    if let Some(v) = get(m, "freq_scales") {
        let sctx = format!("{ctx}.freq_scales");
        let arr = v
            .as_arr()
            .ok_or_else(|| Error::scenario(&sctx, "expected an array"))?;
        let scales: Vec<f64> = arr
            .iter()
            .enumerate()
            .map(|(i, s)| f64_of(s, &format!("{sctx}[{i}]")))
            .collect::<Result<_, _>>()?;
        // Validated here so a bad scenario fails with a path instead of
        // panicking later in `FrequencyPlan::scaled`.
        if scales.is_empty() || scales.iter().any(|&s| !s.is_finite() || s < 1.0) {
            return Err(Error::scenario(
                sctx,
                "must be a non-empty list of finite factors >= 1.0",
            ));
        }
        c.freq_scales = scales;
    }
    override_field(
        m,
        "max_intermediate",
        ctx,
        &mut c.max_intermediate,
        usize_of,
    )?;
    Ok(c)
}

fn sweep_to_json(c: &GridConfig) -> String {
    let scales: Vec<String> = c.freq_scales.iter().map(|&s| json_number(s)).collect();
    format!(
        "{{\"max_boost\":{},\"freq_scales\":[{}],\"max_intermediate\":{}}}",
        c.max_boost,
        scales.join(","),
        c.max_intermediate
    )
}

fn refine_from_value(v: &Value, ctx: &str) -> Result<RefinePlan, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &["grid", "boost_radius", "base_radius", "scale_window"],
        ctx,
    )?;
    let grid = sweep_from_value(req(m, "grid", ctx)?, &format!("{ctx}.grid"))?;
    let mut params = RefineParams::default();
    override_field(m, "boost_radius", ctx, &mut params.boost_radius, usize_of)?;
    override_field(m, "base_radius", ctx, &mut params.base_radius, usize_of)?;
    if let Some(v) = get(m, "scale_window") {
        let wctx = format!("{ctx}.scale_window");
        let w = f64_of(v, &wctx)?;
        // Negative windows would silently refine nothing.
        params.scale_window = non_negative(w, &wctx)?;
    }
    Ok(RefinePlan { grid, params })
}

fn refine_to_json(plan: &RefinePlan) -> String {
    format!(
        "{{\"grid\":{},\"boost_radius\":{},\"base_radius\":{},\"scale_window\":{}}}",
        sweep_to_json(&plan.grid),
        plan.params.boost_radius,
        plan.params.base_radius,
        json_number(plan.params.scale_window)
    )
}

fn dyn_sweep_from_value(v: &Value, ctx: &str) -> Result<DynSweepPlan, Error> {
    let m = as_obj(v, ctx)?;
    check_keys(
        m,
        &["loads", "traffic", "schedules", "horizon_ns", "mode"],
        ctx,
    )?;
    let lctx = format!("{ctx}.loads");
    let arr = req(m, "loads", ctx)?
        .as_arr()
        .ok_or_else(|| Error::scenario(&lctx, "expected an array"))?;
    let loads: Vec<f64> = arr
        .iter()
        .enumerate()
        .map(|(i, x)| f64_of(x, &format!("{lctx}[{i}]")))
        .collect::<Result<_, _>>()?;
    // Validated here so a bad scenario fails with a path instead of a
    // late axes error inside the engine.
    if loads.is_empty() || loads.iter().any(|&l| !l.is_finite() || l <= 0.0) {
        return Err(Error::scenario(
            lctx,
            "must be a non-empty list of positive finite load factors",
        ));
    }
    let mut traffic = vec![TrafficKind::Cbr];
    if let Some(v) = get(m, "traffic") {
        let tctx = format!("{ctx}.traffic");
        let arr = v
            .as_arr()
            .ok_or_else(|| Error::scenario(&tctx, "expected an array"))?;
        if arr.is_empty() {
            return Err(Error::scenario(&tctx, "must be a non-empty list"));
        }
        traffic = arr
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let tctx = format!("{tctx}[{i}]");
                str_of(t, &tctx)?
                    .parse::<TrafficKind>()
                    .map_err(|e| Error::scenario(&tctx, e))
            })
            .collect::<Result<_, _>>()?;
    }
    let mut schedules: Vec<Option<ShutdownPlan>> = vec![None];
    if let Some(v) = get(m, "schedules") {
        let sctx = format!("{ctx}.schedules");
        let arr = v
            .as_arr()
            .ok_or_else(|| Error::scenario(&sctx, "expected an array"))?;
        if arr.is_empty() {
            return Err(Error::scenario(
                &sctx,
                "must be a non-empty list (null entries are free-running)",
            ));
        }
        schedules = arr
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let sctx = format!("{sctx}[{i}]");
                match s {
                    Value::Null => Ok(None),
                    _ => shutdown_from_value(s, &sctx).map(Some),
                }
            })
            .collect::<Result<_, _>>()?;
    }
    let hctx = format!("{ctx}.horizon_ns");
    let horizon_ns = u64_of(req(m, "horizon_ns", ctx)?, &hctx)?;
    if horizon_ns == 0 {
        return Err(Error::scenario(hctx, "must be positive"));
    }
    let mut mode = Mode::Exact;
    if let Some(v) = get(m, "mode") {
        let mctx = format!("{ctx}.mode");
        mode = str_of(v, &mctx)?
            .parse()
            .map_err(|e: String| Error::scenario(&mctx, e))?;
    }
    Ok(DynSweepPlan {
        loads,
        traffic,
        schedules,
        horizon_ns,
        mode,
    })
}

fn dyn_sweep_to_json(plan: &DynSweepPlan) -> String {
    let loads: Vec<String> = plan.loads.iter().map(|&l| json_number(l)).collect();
    let traffic: Vec<String> = plan
        .traffic
        .iter()
        .map(|t| json_string(&t.to_string()))
        .collect();
    let schedules: Vec<String> = plan
        .schedules
        .iter()
        .map(|s| match s {
            None => "null".to_string(),
            Some(sd) => shutdown_to_json(sd),
        })
        .collect();
    format!(
        "{{\"loads\":[{}],\"traffic\":[{}],\"schedules\":[{}],\"horizon_ns\":{},\"mode\":\"{}\"}}",
        loads.join(","),
        traffic.join(","),
        schedules.join(","),
        plan.horizon_ns,
        plan.mode
    )
}

// --- Scenario ------------------------------------------------------------

pub(crate) fn scenario_from_json(text: &str) -> Result<Scenario, Error> {
    let doc = json::parse(text)?;
    let ctx = "scenario";
    let members = as_obj(&doc, ctx)?;
    check_keys(
        members,
        &[
            "format",
            "name",
            "spec",
            "partition",
            "synthesis",
            "floorplan",
            "sim",
            "shutdown",
            "sweep",
            "sweep_prune",
            "sweep_workers",
            "refine",
            "dyn_sweep",
        ],
        ctx,
    )?;
    if let Some(v) = get(members, "format") {
        let format = str_of(v, "scenario.format")?;
        if format != SCENARIO_FORMAT {
            return Err(Error::scenario(
                "scenario.format",
                format!("'{format}' is not '{SCENARIO_FORMAT}'"),
            ));
        }
    }
    let name = str_of(req(members, "name", ctx)?, "scenario.name")?.to_string();
    let spec = spec_from_value(req(members, "spec", ctx)?, "scenario.spec")?;
    let partition = partition_from_value(req(members, "partition", ctx)?, "scenario.partition")?;
    let synthesis = match get(members, "synthesis") {
        Some(v) => synthesis_from_value(v, "scenario.synthesis")?,
        None => SynthesisConfig::default(),
    };
    let floorplan = match get(members, "floorplan") {
        Some(v) => floorplan_from_value(v, "scenario.floorplan")?,
        None => FloorplanConfig::default(),
    };
    let sim = get(members, "sim")
        .map(|v| sim_from_value(v, "scenario.sim"))
        .transpose()?;
    let shutdown = get(members, "shutdown")
        .map(|v| shutdown_from_value(v, "scenario.shutdown"))
        .transpose()?;
    let sweep = get(members, "sweep")
        .map(|v| sweep_from_value(v, "scenario.sweep"))
        .transpose()?;
    let mut sweep_prune = false;
    override_field(
        members,
        "sweep_prune",
        "scenario",
        &mut sweep_prune,
        bool_of,
    )?;
    let sweep_workers = get(members, "sweep_workers")
        .map(|v| usize_of(v, "scenario.sweep_workers"))
        .transpose()?;
    if sweep_workers == Some(0) {
        return Err(Error::scenario(
            "scenario.sweep_workers",
            "must be at least 1",
        ));
    }
    let refine = get(members, "refine")
        .map(|v| refine_from_value(v, "scenario.refine"))
        .transpose()?;
    if refine.is_some() && sweep.is_none() {
        return Err(Error::scenario(
            "scenario.refine",
            "refinement needs a coarse 'sweep' grid to start from",
        ));
    }
    let dyn_sweep = get(members, "dyn_sweep")
        .map(|v| dyn_sweep_from_value(v, "scenario.dyn_sweep"))
        .transpose()?;
    if dyn_sweep.is_some() && sweep.is_none() {
        return Err(Error::scenario(
            "scenario.dyn_sweep",
            "a dynamic sweep needs a 'sweep' grid whose frontier it sweeps",
        ));
    }
    Ok(Scenario {
        name,
        spec,
        partition,
        synthesis,
        floorplan,
        sim,
        shutdown,
        sweep,
        sweep_prune,
        sweep_workers,
        refine,
        dyn_sweep,
    })
}

pub(crate) fn scenario_to_json(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"format\":{},", json_string(SCENARIO_FORMAT)));
    out.push_str(&format!("\n\"name\":{},", json_string(&s.name)));
    out.push_str(&format!("\n\"spec\":{},", spec_to_json(&s.spec)));
    out.push_str(&format!(
        "\n\"partition\":{},",
        partition_to_json(&s.partition)
    ));
    out.push_str(&format!(
        "\n\"synthesis\":{},",
        synthesis_to_json(&s.synthesis)
    ));
    out.push_str(&format!(
        "\n\"floorplan\":{}",
        floorplan_to_json(&s.floorplan)
    ));
    if let Some(sim) = &s.sim {
        out.push_str(&format!(",\n\"sim\":{}", sim_to_json(sim)));
    }
    if let Some(sd) = &s.shutdown {
        out.push_str(&format!(",\n\"shutdown\":{}", shutdown_to_json(sd)));
    }
    if let Some(grid) = &s.sweep {
        out.push_str(&format!(",\n\"sweep\":{}", sweep_to_json(grid)));
    }
    // Emitted only when set, so pre-refinement scenario files keep their
    // exact bytes.
    if s.sweep_prune {
        out.push_str(",\n\"sweep_prune\":true");
    }
    if let Some(workers) = s.sweep_workers {
        out.push_str(&format!(",\n\"sweep_workers\":{workers}"));
    }
    if let Some(plan) = &s.refine {
        out.push_str(&format!(",\n\"refine\":{}", refine_to_json(plan)));
    }
    if let Some(plan) = &s.dyn_sweep {
        out.push_str(&format!(",\n\"dyn_sweep\":{}", dyn_sweep_to_json(plan)));
    }
    out.push_str("\n}\n");
    out
}

impl Scenario {
    /// Parses a scenario from its JSON description.
    ///
    /// Ingestion is strict: unknown members, duplicate keys, wrong types,
    /// non-finite numbers and malformed flows are all rejected with a
    /// JSON-path context. Missing config members fall back to the same
    /// defaults the programmatic API uses.
    ///
    /// # Errors
    ///
    /// [`Error::Json`] for malformed JSON, [`Error::Scenario`] for
    /// schema-level problems, [`Error::Spec`]-shaped messages for inline
    /// specs with malformed flows.
    pub fn from_json(text: &str) -> Result<Scenario, Error> {
        scenario_from_json(text)
    }

    /// Serializes the scenario byte-deterministically, writing every field
    /// (storage units, shortest-round-trip numbers), so
    /// `Scenario::from_json(s.to_json())` reproduces `s` exactly.
    pub fn to_json(&self) -> String {
        scenario_to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::benchmark_by_name;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::from_json(
            r#"{"name":"min","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":4}}"#,
        )
        .unwrap();
        assert_eq!(s.name, "min");
        assert_eq!(s.synthesis, SynthesisConfig::default());
        assert_eq!(s.floorplan, FloorplanConfig::default());
        assert!(s.sim.is_none() && s.shutdown.is_none() && s.sweep.is_none());
    }

    #[test]
    fn default_round_trip_is_exact() {
        let mut s = Scenario::new(
            "rt",
            SpecSource::Inline(benchmark_by_name("d12").unwrap()),
            PartitionPlan::Communication {
                islands: 3,
                seed: 9,
            },
        );
        s.sim = Some(SimPlan::default());
        s.shutdown = Some(ShutdownPlan::default());
        s.sweep = Some(GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0, 1.12],
            max_intermediate: 3,
        });
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json, "emission is a fixed point");
    }

    #[test]
    fn custom_technology_round_trips_inline() {
        let mut s = Scenario::new(
            "tech",
            SpecSource::Benchmark("d12".into()),
            PartitionPlan::Logical { islands: 2 },
        );
        s.synthesis.technology.vdd_v = 0.9;
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.synthesis.technology.vdd_v, 0.9);
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_members_are_rejected_with_a_path() {
        let err = Scenario::from_json(
            r#"{"name":"x","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":4},"sim":{"horizon_nsec":5}}"#,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("scenario.sim") && msg.contains("horizon_nsec"),
            "{msg}"
        );
    }

    #[test]
    fn scaled_unit_alternates_are_accepted_but_exclusive() {
        let core = r#"{"name":"c0","kind":"cpu","area_mm2":1,"dyn_power_mw":10,"clock_mhz":100}"#;
        let core2 = r#"{"name":"c1","kind":"memory","area_mm2":1,"dyn_power_w":0.01,"clock_hz":1e8,"always_on":true}"#;
        let text = format!(
            r#"{{"name":"u","spec":{{"name":"tiny","cores":[{core},{core2}],"flows":[
                {{"src":0,"dst":1,"bandwidth_mbps":100,"max_latency_cycles":10}},
                {{"src":1,"dst":0,"bandwidth_bytes_per_s":1e8,"max_latency_cycles":10}}
            ]}},"partition":{{"kind":"logical","islands":1}}}}"#
        );
        let s = Scenario::from_json(&text).unwrap();
        let spec = s.resolve_spec().unwrap();
        assert_eq!(spec.core_count(), 2);
        assert_eq!(spec.flows()[0].bandwidth.mbps(), 100.0);

        let both = r#"{"name":"u","spec":{"name":"t","cores":[{"name":"c","kind":"cpu","area_mm2":1,"dyn_power_w":1,"dyn_power_mw":2,"clock_hz":1e8}],"flows":[]},"partition":{"kind":"logical","islands":1}}"#;
        let err = Scenario::from_json(both).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn out_of_range_core_numbers_fail_at_ingestion() {
        // Negative area would otherwise panic deep in the floorplanner;
        // negative power would silently produce negative-mW reports.
        let with_core = |core: &str| {
            format!(
                r#"{{"name":"r","spec":{{"name":"t","cores":[{core},
                {{"name":"m","kind":"memory","area_mm2":1,"dyn_power_w":1,"clock_hz":1e8,"always_on":true}}],
                "flows":[{{"src":0,"dst":1,"bandwidth_mbps":10,"max_latency_cycles":5}}]}},
                "partition":{{"kind":"logical","islands":1}}}}"#
            )
        };
        for (core, needle) in [
            (
                r#"{"name":"c","kind":"cpu","area_mm2":-5,"dyn_power_w":1,"clock_hz":1e8}"#,
                "area_mm2",
            ),
            (
                r#"{"name":"c","kind":"cpu","area_mm2":0,"dyn_power_w":1,"clock_hz":1e8}"#,
                "area_mm2",
            ),
            (
                r#"{"name":"c","kind":"cpu","area_mm2":1,"dyn_power_mw":-3,"clock_hz":1e8}"#,
                "dyn_power",
            ),
            (
                r#"{"name":"c","kind":"cpu","area_mm2":1,"dyn_power_w":1,"clock_mhz":0}"#,
                "clock",
            ),
        ] {
            let err = Scenario::from_json(&with_core(core)).unwrap_err();
            assert!(err.to_string().contains(needle), "{core}: {err}");
        }
        // Zero power is physically fine (a pad or dummy block).
        let ok =
            with_core(r#"{"name":"c","kind":"cpu","area_mm2":1,"dyn_power_w":0,"clock_hz":1e8}"#);
        assert!(Scenario::from_json(&ok).is_ok());
    }

    #[test]
    fn malformed_inline_flows_fail_at_their_source() {
        let text = r#"{"name":"bad","spec":{"name":"t","cores":[
            {"name":"a","kind":"cpu","area_mm2":1,"dyn_power_w":1,"clock_hz":1e8},
            {"name":"b","kind":"memory","area_mm2":1,"dyn_power_w":1,"clock_hz":1e8}
        ],"flows":[{"src":0,"dst":0,"bandwidth_mbps":10,"max_latency_cycles":5}]},
        "partition":{"kind":"logical","islands":1}}"#;
        let err = Scenario::from_json(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("flows[0]") && msg.contains("itself"), "{msg}");
    }

    #[test]
    fn bad_sweep_scales_fail_with_a_path() {
        let text = r#"{"name":"x","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":2},"sweep":{"freq_scales":[0.5]}}"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.to_string().contains("freq_scales"), "{err}");
    }

    #[test]
    fn refine_and_prune_round_trip_and_stay_absent_by_default() {
        let mut s = Scenario::new(
            "rp",
            SpecSource::Benchmark("d26".into()),
            PartitionPlan::Logical { islands: 6 },
        );
        // Defaults emit neither member, keeping pre-refinement files byte-stable.
        let plain = s.to_json();
        assert!(!plain.contains("sweep_prune") && !plain.contains("refine"));

        s.sweep = Some(GridConfig::default());
        s.sweep_prune = true;
        s.refine = Some(crate::RefinePlan {
            grid: GridConfig {
                max_boost: 1,
                freq_scales: vec![1.0, 1.12],
                max_intermediate: 4,
            },
            params: vi_noc_sweep::RefineParams {
                boost_radius: 1,
                base_radius: 0,
                scale_window: 0.25,
            },
        });
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json, "emission is a fixed point");
    }

    #[test]
    fn refine_params_default_when_omitted() {
        let text = r#"{"name":"x","spec":{"benchmark":"d26"},"partition":{"kind":"logical","islands":6},"sweep":{},"refine":{"grid":{"max_boost":1}}}"#;
        let s = Scenario::from_json(text).unwrap();
        let plan = s.refine.unwrap();
        assert_eq!(plan.params, vi_noc_sweep::RefineParams::default());
        assert_eq!(plan.grid.max_boost, 1);
    }

    #[test]
    fn refine_without_a_coarse_sweep_is_rejected() {
        let text = r#"{"name":"x","spec":{"benchmark":"d26"},"partition":{"kind":"logical","islands":6},"refine":{"grid":{}}}"#;
        let err = Scenario::from_json(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("refine") && msg.contains("coarse"), "{msg}");
    }

    #[test]
    fn dyn_sweep_round_trips_and_defaults_its_axes() {
        let mut s = Scenario::new(
            "ds",
            SpecSource::Benchmark("d12".into()),
            PartitionPlan::Logical { islands: 4 },
        );
        s.sweep = Some(GridConfig::default());
        s.dyn_sweep = Some(DynSweepPlan {
            loads: vec![0.5, 0.9, 1.2],
            traffic: vec![TrafficKind::Cbr, TrafficKind::Poisson],
            schedules: vec![
                None,
                Some(ShutdownPlan {
                    island: IslandChoice::Index(2),
                    stop_at_ns: 2_000,
                    drain_ns: 1_500,
                    post_gate_ns: 3_000,
                }),
            ],
            horizon_ns: 8_000,
            mode: Mode::Clustered,
        });
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json, "emission is a fixed point");

        // Omitted axes default: cbr traffic, one free-running schedule,
        // exact mode.
        let text = r#"{"name":"x","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":4},"sweep":{},"dyn_sweep":{"loads":[0.5],"horizon_ns":4000}}"#;
        let plan = Scenario::from_json(text).unwrap().dyn_sweep.unwrap();
        assert_eq!(plan.traffic, vec![TrafficKind::Cbr]);
        assert_eq!(plan.schedules, vec![None]);
        assert_eq!(plan.mode, Mode::Exact);
    }

    #[test]
    fn dyn_sweep_rejects_bad_members_with_a_path() {
        let base = |ds: &str| {
            format!(
                r#"{{"name":"x","spec":{{"benchmark":"d12"}},"partition":{{"kind":"logical","islands":4}},"sweep":{{}},"dyn_sweep":{ds}}}"#
            )
        };
        for (ds, needle) in [
            (r#"{"horizon_ns":4000}"#, "loads"),
            (r#"{"loads":[],"horizon_ns":4000}"#, "loads"),
            (r#"{"loads":[-0.5],"horizon_ns":4000}"#, "loads"),
            (r#"{"loads":[0.5],"horizon_ns":0}"#, "horizon_ns"),
            (
                r#"{"loads":[0.5],"horizon_ns":4000,"traffic":[]}"#,
                "traffic",
            ),
            (
                r#"{"loads":[0.5],"horizon_ns":4000,"traffic":["burst"]}"#,
                "burst",
            ),
            (
                r#"{"loads":[0.5],"horizon_ns":4000,"mode":"fuzzy"}"#,
                "fuzzy",
            ),
            (
                r#"{"loads":[0.5],"horizon_ns":4000,"schedules":[{"stop_ns":5}]}"#,
                "schedules[0]",
            ),
        ] {
            let err = Scenario::from_json(&base(ds)).unwrap_err();
            assert!(err.to_string().contains(needle), "{ds}: {err}");
        }
    }

    #[test]
    fn dyn_sweep_without_a_sweep_grid_is_rejected() {
        let text = r#"{"name":"x","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":4},"dyn_sweep":{"loads":[0.5],"horizon_ns":4000}}"#;
        let err = Scenario::from_json(text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("dyn_sweep") && msg.contains("'sweep' grid"),
            "{msg}"
        );
    }

    #[test]
    fn refine_rejects_unknown_members_and_bad_windows() {
        let base = |refine: &str| {
            format!(
                r#"{{"name":"x","spec":{{"benchmark":"d26"}},"partition":{{"kind":"logical","islands":6}},"sweep":{{}},"refine":{refine}}}"#
            )
        };
        let err = Scenario::from_json(&base(r#"{"grid":{},"radius":2}"#)).unwrap_err();
        assert!(err.to_string().contains("radius"), "{err}");
        let err = Scenario::from_json(&base(r#"{"grid":{},"scale_window":-0.5}"#)).unwrap_err();
        assert!(err.to_string().contains("scale_window"), "{err}");
    }
}
