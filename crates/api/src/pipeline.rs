//! The typestate pipeline: spec → synthesize → floorplan → simulate.
//!
//! Each stage is a distinct type, so the compiler enforces the paper's
//! flow — you cannot simulate a design that has not been realized on a
//! floorplan, or realize one that has not been synthesized:
//!
//! ```
//! use vi_noc_api::Scenario;
//! use vi_noc_core::SynthesisConfig;
//! use vi_noc_floorplan::FloorplanConfig;
//! use vi_noc_sim::SimConfig;
//! use vi_noc_soc::{benchmarks, partition};
//!
//! let soc = benchmarks::d12_auto();
//! let vi = partition::logical_partition(&soc, 4)?;
//! let fp = FloorplanConfig { iterations: 2_000, ..FloorplanConfig::default() };
//! let simulated = Scenario::for_spec(soc, vi)
//!     .synthesize(&SynthesisConfig::default())?
//!     .floorplan(&fp)
//!     .simulate(&SimConfig::default(), 20_000);
//! assert!(simulated.stats().total_delivered_packets() > 0);
//! # Ok::<(), vi_noc_api::Error>(())
//! ```
//!
//! Every stage calls exactly the public function the hand-chained flow
//! would (`synthesize`, `realize_on_floorplan`, `Simulator::run_for_ns`,
//! `run_shutdown_scenario`), so pipeline outputs are bit-identical to
//! chaining those calls yourself — pinned by
//! `crates/api/tests/byte_identity.rs`.

use crate::error::Error;
use crate::report::{Report, ShutdownReport, SimReport};
use crate::scenario::{Scenario, ShutdownPlan};
use vi_noc_core::{
    realize_on_floorplan, synthesize, DesignPoint, DesignSpace, RealizedDesign, SynthesisConfig,
};
use vi_noc_floorplan::FloorplanConfig;
use vi_noc_sim::{
    measured_power, run_shutdown_scenario, MeasuredPower, ShutdownScenario, SimConfig, SimStats,
    Simulator,
};
use vi_noc_soc::{SocSpec, ViAssignment};

/// A staged pipeline run. `S` is the stage marker: [`Specified`] →
/// [`Synthesized`] → [`Realized`] → [`Simulated`].
#[derive(Debug, Clone)]
pub struct Pipeline<S> {
    spec: SocSpec,
    vi: ViAssignment,
    cfg: SynthesisConfig,
    stage: S,
}

/// Stage 0: a validated-spec + island-assignment pair, nothing synthesized.
#[derive(Debug, Clone)]
pub struct Specified(());

/// Stage 1: the explored design space (analytic wire-length estimates).
#[derive(Debug, Clone)]
pub struct Synthesized {
    space: DesignSpace,
}

/// Stage 2: the chosen point realized on a floorplan (measured wires).
#[derive(Debug, Clone)]
pub struct Realized {
    space: DesignSpace,
    design: RealizedDesign,
}

/// Stage 3: flit-level simulation statistics over the realized design.
#[derive(Debug, Clone)]
pub struct Simulated {
    space: DesignSpace,
    design: RealizedDesign,
    horizon_ns: u64,
    stats: SimStats,
    measured: Option<MeasuredPower>,
}

impl<S> Pipeline<S> {
    /// The SoC spec this pipeline runs over.
    pub fn spec(&self) -> &SocSpec {
        &self.spec
    }

    /// The core → voltage-island assignment.
    pub fn vi(&self) -> &ViAssignment {
        &self.vi
    }
}

impl Pipeline<Specified> {
    pub(crate) fn new(spec: SocSpec, vi: ViAssignment) -> Self {
        Pipeline {
            spec,
            vi,
            cfg: SynthesisConfig::default(),
            stage: Specified(()),
        }
    }

    /// Runs the paper's Algorithm 1 and advances to [`Synthesized`].
    ///
    /// # Errors
    ///
    /// Invalid specs and infeasible design spaces, via the unified
    /// [`Error`].
    pub fn synthesize(self, cfg: &SynthesisConfig) -> Result<Pipeline<Synthesized>, Error> {
        let space = synthesize(&self.spec, &self.vi, cfg)?;
        Ok(Pipeline {
            spec: self.spec,
            vi: self.vi,
            cfg: cfg.clone(),
            stage: Synthesized { space },
        })
    }
}

impl Pipeline<Synthesized> {
    /// The explored design space.
    pub fn space(&self) -> &DesignSpace {
        &self.stage.space
    }

    /// Realizes the minimum-power design point on a floorplan and advances
    /// to [`Realized`]. (The space is non-empty by construction —
    /// `synthesize` fails rather than return an empty space.)
    pub fn floorplan(self, fp_cfg: &FloorplanConfig) -> Pipeline<Realized> {
        let point = self
            .stage
            .space
            .min_power_point()
            .expect("synthesize never returns an empty space");
        let design = realize_on_floorplan(&self.spec, &self.vi, point, fp_cfg, &self.cfg);
        Pipeline {
            spec: self.spec,
            vi: self.vi,
            cfg: self.cfg,
            stage: Realized {
                design,
                space: self.stage.space,
            },
        }
    }
}

/// Shared by the post-floorplan stages.
macro_rules! realized_accessors {
    ($stage:ty) => {
        impl Pipeline<$stage> {
            /// The explored design space.
            pub fn space(&self) -> &DesignSpace {
                &self.stage.space
            }

            /// The chosen (minimum-power) design point.
            pub fn chosen_point(&self) -> &DesignPoint {
                self.stage
                    .space
                    .min_power_point()
                    .expect("synthesize never returns an empty space")
            }

            /// The floorplan-realized design.
            pub fn design(&self) -> &RealizedDesign {
                &self.stage.design
            }

            /// Runs the island-shutdown experiment on the realized
            /// topology with engine parameters `sim_cfg`.
            ///
            /// # Errors
            ///
            /// Unresolvable island choices (out of range, always-on, or no
            /// gateable island for `Auto`).
            pub fn run_shutdown(
                &self,
                sim_cfg: &SimConfig,
                plan: &ShutdownPlan,
            ) -> Result<ShutdownReport, Error> {
                let island = Scenario::resolve_shutdown_island(plan, &self.vi)?;
                let outcome = run_shutdown_scenario(
                    &self.spec,
                    &self.vi,
                    &self.stage.design.topology,
                    sim_cfg,
                    &ShutdownScenario {
                        island,
                        stop_at_ns: plan.stop_at_ns,
                        drain_ns: plan.drain_ns,
                        post_gate_ns: plan.post_gate_ns,
                    },
                );
                Ok(ShutdownReport { island, outcome })
            }
        }
    };
}

realized_accessors!(Realized);
realized_accessors!(Simulated);

impl Pipeline<Realized> {
    /// Simulates `horizon_ns` of traffic over the realized design and
    /// advances to [`Simulated`]. Observed activity is priced with the
    /// synthesis power models when the horizon is non-empty.
    pub fn simulate(self, sim_cfg: &SimConfig, horizon_ns: u64) -> Pipeline<Simulated> {
        let mut sim = Simulator::new(&self.spec, &self.stage.design.topology, sim_cfg);
        let stats = sim.run_for_ns(horizon_ns);
        let measured = (stats.elapsed_ps > 0).then(|| {
            measured_power(
                &self.spec,
                &self.stage.design.topology,
                &self.cfg,
                &stats,
                sim_cfg.packet_bytes as f64,
            )
        });
        Pipeline {
            spec: self.spec,
            vi: self.vi,
            cfg: self.cfg,
            stage: Simulated {
                space: self.stage.space,
                design: self.stage.design,
                horizon_ns,
                stats,
                measured,
            },
        }
    }

    /// Freezes this stage into a [`Report`] (no sim/shutdown/frontier
    /// sections; [`Scenario::run`] fills those in as declared).
    pub fn into_report(self, scenario_name: &str) -> Report {
        report_base(
            scenario_name,
            &self.vi,
            &self.stage.space,
            self.stage.design,
        )
    }
}

impl Pipeline<Simulated> {
    /// The simulation statistics (bit-identical to driving
    /// [`Simulator::run_for_ns`] by hand).
    pub fn stats(&self) -> &SimStats {
        &self.stage.stats
    }

    /// Observed activity priced with the synthesis power models (`None`
    /// for an empty horizon).
    pub fn measured(&self) -> Option<&MeasuredPower> {
        self.stage.measured.as_ref()
    }

    /// Freezes this stage into a [`Report`] with the sim section filled.
    pub fn into_report(self, scenario_name: &str) -> Report {
        let sim = SimReport {
            horizon_ns: self.stage.horizon_ns,
            stats: self.stage.stats,
            measured: self.stage.measured,
        };
        let mut report = report_base(
            scenario_name,
            &self.vi,
            &self.stage.space,
            self.stage.design,
        );
        report.sim = Some(sim);
        report
    }
}

fn report_base(
    scenario_name: &str,
    vi: &ViAssignment,
    space: &DesignSpace,
    design: RealizedDesign,
) -> Report {
    let point = space
        .min_power_point()
        .expect("synthesize never returns an empty space")
        .clone();
    Report {
        scenario: scenario_name.to_string(),
        spec_name: space.spec_name.clone(),
        island_count: vi.island_count(),
        explored_points: space.points.len(),
        point,
        realized_metrics: design.metrics.clone(),
        infeasible_links: design.infeasible_links.len(),
        sim: None,
        shutdown: None,
        frontier: None,
        dyn_sweep: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    fn quick_fp() -> FloorplanConfig {
        FloorplanConfig {
            iterations: 2_000,
            ..FloorplanConfig::default()
        }
    }

    #[test]
    fn stages_chain_and_accessors_expose_results() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let synthd = Scenario::for_spec(soc, vi)
            .synthesize(&SynthesisConfig::default())
            .unwrap();
        assert!(!synthd.space().points.is_empty());
        let realized = synthd.floorplan(&quick_fp());
        assert!(realized.design().metrics.noc_dynamic_power().mw() > 0.0);
        let simulated = realized.simulate(&SimConfig::default(), 20_000);
        assert!(simulated.stats().total_delivered_packets() > 0);
        assert!(simulated.measured().is_some());
        let report = simulated.into_report("pipeline test");
        assert_eq!(report.spec_name, "d12_auto");
        assert!(report.sim.is_some());
    }

    #[test]
    fn empty_horizon_skips_power_pricing() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 2).unwrap();
        let simulated = Scenario::for_spec(soc, vi)
            .synthesize(&SynthesisConfig::default())
            .unwrap()
            .floorplan(&quick_fp())
            .simulate(&SimConfig::default(), 0);
        assert!(simulated.measured().is_none());
        assert_eq!(simulated.stats().total_delivered_packets(), 0);
    }

    #[test]
    fn shutdown_runs_from_the_realized_stage() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let realized = Scenario::for_spec(soc, vi)
            .synthesize(&SynthesisConfig::default())
            .unwrap()
            .floorplan(&quick_fp());
        let report = realized
            .run_shutdown(&SimConfig::default(), &ShutdownPlan::default())
            .unwrap();
        assert!(report.outcome.drained_cleanly);
        assert!(realized.vi().can_shutdown(report.island));
    }
}
