//! The workspace-wide error type of the scenario API.
//!
//! Every stage of the pipeline — spec construction, VI partitioning,
//! topology synthesis, JSON ingestion — fails through this one type, so
//! callers of [`crate::Scenario`] handle a single error surface instead
//! of five per-crate ones. Lower layers keep their own precise
//! error enums ([`SpecError`], [`PartitionError`], [`SynthesisError`],
//! [`JsonError`]); this type wraps them losslessly via `From`.

use std::fmt;
use vi_noc_core::SynthesisError;
use vi_noc_soc::{PartitionError, SpecError};
use vi_noc_sweep::json::JsonError;

/// Any failure of the scenario pipeline, from JSON ingestion to synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The SoC spec is structurally invalid.
    Spec(SpecError),
    /// The core→island assignment is invalid or unrealizable.
    Partition(PartitionError),
    /// Topology synthesis failed (invalid input or no feasible design).
    Synthesis(SynthesisError),
    /// The input is not well-formed JSON.
    Json(JsonError),
    /// The JSON is well-formed but does not describe a valid scenario or
    /// report (wrong type, missing member, unknown key, bad value).
    Scenario {
        /// Where in the document the problem sits (e.g. `sim.traffic`).
        context: String,
        /// What went wrong.
        msg: String,
    },
}

impl Error {
    /// Builds a schema-level error at `context`.
    pub fn scenario(context: impl Into<String>, msg: impl Into<String>) -> Self {
        Error::Scenario {
            context: context.into(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Spec(e) => write!(f, "invalid SoC spec: {e}"),
            Error::Partition(e) => write!(f, "invalid VI partition: {e}"),
            Error::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            Error::Json(e) => write!(f, "malformed JSON: {e}"),
            Error::Scenario { context, msg } => write!(f, "scenario {context}: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Spec(e) => Some(e),
            Error::Partition(e) => Some(e),
            Error::Synthesis(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::Scenario { .. } => None,
        }
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Self {
        Error::Spec(e)
    }
}

impl From<PartitionError> for Error {
    fn from(e: PartitionError) -> Self {
        Error::Partition(e)
    }
}

impl From<SynthesisError> for Error {
    fn from(e: SynthesisError) -> Self {
        Error::Synthesis(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_stage_error_with_context() {
        let cases: Vec<(Error, &str)> = vec![
            (SpecError::SelfFlow { flow: 1 }.into(), "spec"),
            (
                PartitionError::EmptyIsland { island: 0 }.into(),
                "partition",
            ),
            (SynthesisError::InvalidSpec("x".into()).into(), "synthesis"),
            (
                JsonError {
                    at: 3,
                    msg: "boom".into(),
                }
                .into(),
                "JSON",
            ),
            (
                Error::scenario("sim.traffic", "unknown kind"),
                "sim.traffic",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn sources_chain_to_the_wrapped_error() {
        use std::error::Error as _;
        let e: Error = SpecError::SelfFlow { flow: 1 }.into();
        assert!(e.source().is_some());
        assert!(Error::scenario("x", "y").source().is_none());
    }
}
