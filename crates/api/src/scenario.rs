//! The declarative experiment description: everything the paper's flow
//! needs — spec, partition, synthesis, floorplan, simulation, shutdown
//! schedule, sweep grid — as one data value.
//!
//! A [`Scenario`] is the unit of work of the `vi-noc` CLI: parsed from
//! JSON ([`Scenario::from_json`]), executed end to end ([`Scenario::run`]),
//! and re-emitted byte-deterministically ([`Scenario::to_json`]). The same
//! type is the programmatic entry point into the typestate pipeline via
//! [`Scenario::for_spec`].

use crate::error::Error;
use crate::pipeline::{Pipeline, Specified};
use crate::report::Report;
use vi_noc_core::SynthesisConfig;
use vi_noc_dynsweep::{run_dynsweep, DynSweepInput, Mode, SimAxes};
use vi_noc_floorplan::FloorplanConfig;
use vi_noc_sim::{ShutdownScenario, SimConfig, TrafficKind};
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, frontier_seeds, parse_frontier_file, run_shard, run_shard_pruned,
    windows_from_frontier, GridConfig, GridDescriptor, RefineParams, Shard, SweepGrid,
};

/// Where the SoC spec comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecSource {
    /// One of the bundled benchmarks (`d12`, `d16`, `d20`, `d26`, `d36`).
    Benchmark(String),
    /// A complete inline spec (custom workloads need no Rust edits).
    Inline(SocSpec),
}

/// How cores are assigned to voltage islands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPlan {
    /// Group by functionality ([`partition::logical_partition`]).
    Logical {
        /// Number of voltage islands.
        islands: usize,
    },
    /// Min-cut clustering of the traffic graph
    /// ([`partition::communication_partition`]).
    Communication {
        /// Number of voltage islands.
        islands: usize,
        /// Partitioner seed.
        seed: u64,
    },
}

impl PartitionPlan {
    /// The provenance tag recorded in sweep checkpoints and reports —
    /// the same format the `sweep` CLI has always used (`logical:6`,
    /// `comm:6:1`), so scenario-driven and flag-driven runs produce
    /// byte-identical grid descriptors.
    pub fn tag(&self) -> String {
        match self {
            PartitionPlan::Logical { islands } => format!("logical:{islands}"),
            PartitionPlan::Communication { islands, seed } => format!("comm:{islands}:{seed}"),
        }
    }
}

/// The flit-level simulation stage of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPlan {
    /// Engine parameters.
    pub config: SimConfig,
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
}

impl Default for SimPlan {
    fn default() -> Self {
        SimPlan {
            config: SimConfig::default(),
            horizon_ns: 200_000,
        }
    }
}

/// Which island a shutdown experiment gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IslandChoice {
    /// The first shutdown-capable island of the partition.
    Auto,
    /// An explicit island index (must be shutdown-capable).
    Index(usize),
}

/// The island-shutdown stage of a scenario (the paper's headline
/// experiment: gate an island mid-run, verify survivors keep flowing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownPlan {
    /// The island to gate.
    pub island: IslandChoice,
    /// Time to stop flows touching the island, ns.
    pub stop_at_ns: u64,
    /// Extra drain time before gating, ns.
    pub drain_ns: u64,
    /// Additional runtime after gating, ns.
    pub post_gate_ns: u64,
}

impl Default for ShutdownPlan {
    fn default() -> Self {
        let s = ShutdownScenario::default();
        ShutdownPlan {
            island: IslandChoice::Auto,
            stop_at_ns: s.stop_at_ns,
            drain_ns: s.drain_ns,
            post_gate_ns: s.post_gate_ns,
        }
    }
}

/// The coarse-to-fine refinement stage of a scenario's sweep: after the
/// coarse grid's frontier is folded, windows are placed around its
/// surviving points ([`vi_noc_sweep::windows_from_frontier`]) and the fine
/// grid is swept only inside them. The report's frontier becomes the
/// refined emission, whose descriptor records the windows.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinePlan {
    /// The fine grid to restrict to windows around the coarse survivors.
    pub grid: GridConfig,
    /// How far each window extends around a surviving point.
    pub params: RefineParams,
}

/// The dynamic-sweep stage of a scenario (requires `sweep`): every design
/// point surviving on the sweep's merged frontier is simulated against the
/// declarative grid of sim configs `loads × traffic × schedules`, through
/// the cluster-and-prune engine of [`vi_noc_dynsweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct DynSweepPlan {
    /// Load-factor axis (each cell overrides the sim stage's load).
    pub loads: Vec<f64>,
    /// Traffic-kind axis.
    pub traffic: Vec<TrafficKind>,
    /// Shutdown-schedule axis; `None` entries are free-running cells.
    pub schedules: Vec<Option<ShutdownPlan>>,
    /// Simulated horizon of free-running cells, ns.
    pub horizon_ns: u64,
    /// Execution mode: `exact` (byte-identical to the naive double loop)
    /// or `clustered` (one representative per cluster, error-bounded
    /// reuse).
    pub mode: Mode,
}

/// A complete experiment, declared as data.
///
/// Build one programmatically, or parse it from JSON
/// ([`Scenario::from_json`]); [`Scenario::run`] executes every declared
/// stage and returns the [`Report`]. The executed pipeline is exactly the
/// hand-chained flow `synthesize` → `realize_on_floorplan` → `Simulator`
/// → `run_shutdown_scenario` → sharded sweep, so its outputs (frontier
/// bytes, `SimStats`) are bit-identical to calling those stages directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Free-form experiment name (report provenance).
    pub name: String,
    /// The SoC under design.
    pub spec: SpecSource,
    /// Core → voltage-island assignment strategy.
    pub partition: PartitionPlan,
    /// Synthesis knobs (paper defaults unless overridden).
    pub synthesis: SynthesisConfig,
    /// Floorplan-realization knobs.
    pub floorplan: FloorplanConfig,
    /// Flit-level simulation stage, if any.
    pub sim: Option<SimPlan>,
    /// Island-shutdown experiment, if any.
    pub shutdown: Option<ShutdownPlan>,
    /// Design-space sweep grid, if any (runs unsharded; use the CLI's
    /// `sweep` subcommand to shard the same grid across processes).
    pub sweep: Option<GridConfig>,
    /// Skip boost chains whose slack certificate proves them dominated
    /// (`vi_noc_sweep::run_shard_pruned`). Exact: the emitted frontier is
    /// byte-identical either way.
    pub sweep_prune: bool,
    /// Route the sweep stage through an in-process worker fleet of this
    /// many workers (`vi-noc-fleet`) instead of the single-threaded
    /// streaming run. Exact: the emitted frontier is byte-identical for
    /// any worker count. `None` (the default) keeps the classic path.
    pub sweep_workers: Option<usize>,
    /// Coarse-to-fine refinement of the sweep, if any (requires `sweep`).
    pub refine: Option<RefinePlan>,
    /// Dynamic simulation sweep over the frontier, if any (requires
    /// `sweep`; runs after refinement when both are declared).
    pub dyn_sweep: Option<DynSweepPlan>,
}

/// Looks up a bundled benchmark spec by its CLI name.
pub fn benchmark_by_name(name: &str) -> Option<SocSpec> {
    match name {
        "d12" => Some(benchmarks::d12_auto()),
        "d16" => Some(benchmarks::d16_settop()),
        "d20" => Some(benchmarks::d20_baseband()),
        "d26" => Some(benchmarks::d26_mobile()),
        "d36" => Some(benchmarks::d36_tablet()),
        _ => None,
    }
}

impl Scenario {
    /// A minimal scenario: named spec + partition, every stage at its
    /// defaults, no sim/shutdown/sweep.
    pub fn new(name: impl Into<String>, spec: SpecSource, partition: PartitionPlan) -> Self {
        Scenario {
            name: name.into(),
            spec,
            partition,
            synthesis: SynthesisConfig::default(),
            floorplan: FloorplanConfig::default(),
            sim: None,
            shutdown: None,
            sweep: None,
            sweep_prune: false,
            sweep_workers: None,
            refine: None,
            dyn_sweep: None,
        }
    }

    /// Enters the typestate pipeline directly from an already-built spec
    /// and island assignment:
    /// `Scenario::for_spec(..).synthesize(..)?.floorplan(..).simulate(..)`.
    pub fn for_spec(spec: SocSpec, vi: ViAssignment) -> Pipeline<Specified> {
        Pipeline::new(spec, vi)
    }

    /// Resolves the spec source into a validated [`SocSpec`].
    ///
    /// # Errors
    ///
    /// Unknown benchmark names and invalid inline specs.
    pub fn resolve_spec(&self) -> Result<SocSpec, Error> {
        let spec = match &self.spec {
            SpecSource::Benchmark(name) => benchmark_by_name(name).ok_or_else(|| {
                Error::scenario(
                    "spec.benchmark",
                    format!("unknown benchmark '{name}' (expected d12|d16|d20|d26|d36)"),
                )
            })?,
            SpecSource::Inline(spec) => spec.clone(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Resolves the partition plan against `spec`.
    ///
    /// # Errors
    ///
    /// Unrealizable island counts ([`vi_noc_soc::PartitionError`]).
    pub fn resolve_partition(&self, spec: &SocSpec) -> Result<ViAssignment, Error> {
        Ok(match self.partition {
            PartitionPlan::Logical { islands } => partition::logical_partition(spec, islands)?,
            PartitionPlan::Communication { islands, seed } => {
                partition::communication_partition(spec, islands, seed)?
            }
        })
    }

    /// Resolves a shutdown plan's island choice against `vi`.
    ///
    /// # Errors
    ///
    /// No gateable island exists (`Auto`), or the explicit island is out of
    /// range or always-on.
    pub fn resolve_shutdown_island(plan: &ShutdownPlan, vi: &ViAssignment) -> Result<usize, Error> {
        match plan.island {
            IslandChoice::Auto => (0..vi.island_count())
                .find(|&j| vi.can_shutdown(j))
                .ok_or_else(|| {
                    Error::scenario(
                        "shutdown.island",
                        "no island of this partition can shut down",
                    )
                }),
            IslandChoice::Index(j) if j >= vi.island_count() => Err(Error::scenario(
                "shutdown.island",
                format!("island {j} out of range 0..{}", vi.island_count()),
            )),
            IslandChoice::Index(j) if !vi.can_shutdown(j) => Err(Error::scenario(
                "shutdown.island",
                format!("island {j} is always-on and cannot be gated"),
            )),
            IslandChoice::Index(j) => Ok(j),
        }
    }

    /// Executes every declared stage: synthesis, floorplan realization,
    /// then — as declared — simulation, the shutdown experiment, and the
    /// design-space sweep. Returns the complete [`Report`].
    ///
    /// # Errors
    ///
    /// Any stage failure, through the unified [`Error`].
    pub fn run(&self) -> Result<Report, Error> {
        self.run_stages(true)
    }

    /// [`Scenario::run`] without the sweep stage (the CLI's `simulate`
    /// subcommand).
    pub fn run_without_sweep(&self) -> Result<Report, Error> {
        self.run_stages(false)
    }

    fn run_stages(&self, with_sweep: bool) -> Result<Report, Error> {
        let spec = self.resolve_spec()?;
        let vi = self.resolve_partition(&spec)?;

        let realized = Scenario::for_spec(spec.clone(), vi.clone())
            .synthesize(&self.synthesis)?
            .floorplan(&self.floorplan);

        // The shutdown experiment drives its own simulator; it reuses the
        // scenario's engine parameters when a sim stage is declared.
        let sim_cfg = self
            .sim
            .as_ref()
            .map(|p| p.config.clone())
            .unwrap_or_default();
        let mut report = if let Some(plan) = &self.sim {
            let simulated = realized.simulate(&plan.config, plan.horizon_ns);
            let shutdown = self
                .shutdown
                .as_ref()
                .map(|sd| simulated.run_shutdown(&sim_cfg, sd))
                .transpose()?;
            let mut report = simulated.into_report(&self.name);
            report.shutdown = shutdown;
            report
        } else {
            let shutdown = self
                .shutdown
                .as_ref()
                .map(|sd| realized.run_shutdown(&sim_cfg, sd))
                .transpose()?;
            let mut report = realized.into_report(&self.name);
            report.shutdown = shutdown;
            report
        };

        if with_sweep {
            if let Some(grid_cfg) = &self.sweep {
                report.frontier = Some(self.run_sweep(&spec, &vi, grid_cfg)?);
                if self.dyn_sweep.is_some() {
                    let frontier = report.frontier.as_deref().expect("just set");
                    report.dyn_sweep = Some(self.run_dyn_sweep(&spec, &vi, frontier)?.table);
                }
            } else if self.refine.is_some() {
                return Err(Error::scenario(
                    "refine",
                    "refinement needs a coarse 'sweep' grid to start from",
                ));
            } else if self.dyn_sweep.is_some() {
                return Err(Error::scenario(
                    "dyn_sweep",
                    "a dynamic sweep needs a 'sweep' grid whose frontier it sweeps",
                ));
            }
        }
        Ok(report)
    }

    /// Runs the scenario's sweep grid unsharded — with slack-certificate
    /// pruning when `sweep_prune` is set — and, when a [`RefinePlan`] is
    /// declared, follows it with the coarse-to-fine refinement stage. The
    /// returned frontier file is byte-identical to the equivalent `sweep
    /// run`/`sweep refine` CLI workflow over the same grids (same
    /// descriptors, same writers). When `sweep_workers` is set, both the
    /// coarse and the refined stage run through an in-process fleet
    /// ([`crate::fleet`]) — with, again, byte-identical emission.
    fn run_sweep(
        &self,
        spec: &SocSpec,
        vi: &ViAssignment,
        grid_cfg: &GridConfig,
    ) -> Result<String, Error> {
        let runner = if self.sweep_prune {
            run_shard_pruned
        } else {
            run_shard
        };
        let coarse_file = if let Some(workers) = self.sweep_workers {
            crate::fleet::run_sweep_via_fleet(self, None, workers)?
        } else {
            let grid = SweepGrid::build(spec, vi, &self.synthesis, grid_cfg);
            let desc = GridDescriptor::for_grid(
                &grid,
                spec.name(),
                &self.partition.tag(),
                self.synthesis.seed,
            );
            let run = runner(spec, vi, &grid, Shard::full(), &self.synthesis);
            frontier_json(&desc, &run)
        };
        let Some(plan) = &self.refine else {
            return Ok(coarse_file);
        };

        // Derive the fine grid's windows from the coarse survivors, just
        // like `sweep refine --frontier-in` would from the emitted file.
        let parsed = parse_frontier_file(&coarse_file)
            .map_err(|e| Error::scenario("refine", format!("coarse frontier: {e}")))?;
        let seeds = frontier_seeds(&parsed)
            .map_err(|e| Error::scenario("refine", format!("coarse frontier: {e}")))?;
        let windows = windows_from_frontier(&seeds, &plan.grid, &plan.params);
        if windows.is_empty() {
            return Err(Error::scenario(
                "refine",
                "no refinement window covers the fine grid (empty coarse frontier, \
                 or every surviving scale is outside 'scale_window')",
            ));
        }
        if let Some(workers) = self.sweep_workers {
            return crate::fleet::run_sweep_via_fleet(self, Some(&windows), workers);
        }
        let fine = SweepGrid::build_windowed(spec, vi, &self.synthesis, &plan.grid, windows);
        let fine_desc = GridDescriptor::for_grid(
            &fine,
            spec.name(),
            &self.partition.tag(),
            self.synthesis.seed,
        );
        let fine_run = runner(spec, vi, &fine, Shard::full(), &self.synthesis);
        Ok(frontier_json(&fine_desc, &fine_run))
    }

    /// Runs the scenario's declared dynamic sweep over an emitted frontier
    /// file. Points are regenerated against the **full** grid the frontier
    /// was swept on — the fine grid when a [`RefinePlan`] is declared
    /// (windowing never renumbers chains), the coarse grid otherwise.
    fn run_dyn_sweep(
        &self,
        spec: &SocSpec,
        vi: &ViAssignment,
        frontier_text: &str,
    ) -> Result<vi_noc_dynsweep::DynSweepRun, Error> {
        let plan = self.dyn_sweep.as_ref().expect("checked by the caller");
        let grid_cfg = match (&self.refine, &self.sweep) {
            (Some(refine), _) => &refine.grid,
            (None, Some(coarse)) => coarse,
            (None, None) => {
                return Err(Error::scenario(
                    "dyn_sweep",
                    "a dynamic sweep needs a 'sweep' grid whose frontier it sweeps",
                ));
            }
        };
        let parsed = parse_frontier_file(frontier_text)
            .map_err(|e| Error::scenario("dyn_sweep", format!("frontier: {e}")))?;
        let grid = SweepGrid::build(spec, vi, &self.synthesis, grid_cfg);
        let schedules: Vec<Option<ShutdownScenario>> = plan
            .schedules
            .iter()
            .map(|s| match s {
                None => Ok(None),
                Some(p) => Ok(Some(ShutdownScenario {
                    island: Scenario::resolve_shutdown_island(p, vi)?,
                    stop_at_ns: p.stop_at_ns,
                    drain_ns: p.drain_ns,
                    post_gate_ns: p.post_gate_ns,
                })),
            })
            .collect::<Result<_, Error>>()?;
        let axes = SimAxes {
            loads: plan.loads.clone(),
            traffic: plan.traffic.clone(),
            schedules,
            horizon_ns: plan.horizon_ns,
        };
        let sim = self
            .sim
            .as_ref()
            .map(|p| p.config.clone())
            .unwrap_or_default();
        let tag = self.partition.tag();
        let input = DynSweepInput {
            spec,
            vi,
            cfg: &self.synthesis,
            sim: &sim,
            grid: &grid,
            partition: &tag,
            frontier: &parsed,
        };
        run_dynsweep(&input, &axes, plan.mode).map_err(|e| Error::scenario("dyn_sweep", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_resolve() {
        for name in ["d12", "d16", "d20", "d26", "d36"] {
            assert!(benchmark_by_name(name).is_some(), "{name}");
        }
        assert!(benchmark_by_name("d99").is_none());
    }

    #[test]
    fn partition_tags_match_the_sweep_cli_format() {
        assert_eq!(PartitionPlan::Logical { islands: 6 }.tag(), "logical:6");
        assert_eq!(
            PartitionPlan::Communication {
                islands: 4,
                seed: 7
            }
            .tag(),
            "comm:4:7"
        );
    }

    #[test]
    fn unknown_benchmark_is_a_scenario_error() {
        let s = Scenario::new(
            "x",
            SpecSource::Benchmark("d99".into()),
            PartitionPlan::Logical { islands: 2 },
        );
        let err = s.resolve_spec().unwrap_err();
        assert!(err.to_string().contains("unknown benchmark"));
    }

    #[test]
    fn shutdown_island_resolution_rejects_always_on() {
        let spec = benchmark_by_name("d12").unwrap();
        let s = Scenario::new(
            "x",
            SpecSource::Benchmark("d12".into()),
            PartitionPlan::Logical { islands: 4 },
        );
        let vi = s.resolve_partition(&spec).unwrap();
        let auto = Scenario::resolve_shutdown_island(&ShutdownPlan::default(), &vi).unwrap();
        assert!(vi.can_shutdown(auto));
        let always_on = (0..vi.island_count())
            .find(|&j| !vi.can_shutdown(j))
            .unwrap();
        let plan = ShutdownPlan {
            island: IslandChoice::Index(always_on),
            ..ShutdownPlan::default()
        };
        assert!(Scenario::resolve_shutdown_island(&plan, &vi).is_err());
        let plan = ShutdownPlan {
            island: IslandChoice::Index(99),
            ..ShutdownPlan::default()
        };
        assert!(Scenario::resolve_shutdown_island(&plan, &vi).is_err());
    }
}
