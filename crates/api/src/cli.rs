//! Implementation of the `vi-noc` CLI (and the back-compat `sweep`
//! binary, which forwards to the `sweep` subcommand here).
//!
//! ```text
//! vi-noc run      SCENARIO.json [--out FILE] [--frontier-out FILE]
//! vi-noc simulate SCENARIO.json [--out FILE]
//! vi-noc report   REPORT.json
//! vi-noc sweep    run|merge|info ...
//! vi-noc fleet    serve|work|run ...
//! vi-noc dynsweep run|check ...
//! ```
//!
//! `run` executes every stage a scenario declares and writes the report
//! JSON; `simulate` skips the sweep stage; `report` pretty-prints a report
//! file; `sweep` is the sharded design-space workflow (one shard per
//! process), extended with `--scenario` (grid + configs from a scenario
//! file), `--resume` and `--checkpoint-every` (preemptible shards);
//! `fleet` is the elastic alternative to static shards — a coordinator
//! leases chain ranges to workers that can join, die, and be replaced
//! mid-sweep, with the frontier folded byte-identically to `sweep run
//! --frontier`; `dynsweep` runs a scenario's dynamic simulation sweep
//! (`run`, with `--mode` overriding the declared engine mode) and
//! cross-checks a clustered table against its exact oracle (`check`).

use crate::error::Error;
use crate::fleet::{job_payload, ScenarioJobResolver};
use crate::report::REPORT_FORMAT;
use crate::scenario::{benchmark_by_name, PartitionPlan, Scenario};
use std::time::Instant;
use vi_noc_core::SynthesisConfig;
use vi_noc_dynsweep::{parse_table, Mode, Provenance};
use vi_noc_fleet::FleetConfig;
use vi_noc_soc::{partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_progress_json, frontier_seeds, json, merge_checkpoints, parse_frontier_file,
    parse_shard_checkpoint, resume_shard, resume_shard_pruned, shard_progress_json,
    validate_frontier_source, windows_from_frontier, GridConfig, GridDescriptor, RefineParams,
    Shard, ShardProgress, SweepGrid,
};

/// Top-level usage text of the `vi-noc` binary.
pub const USAGE: &str = "\
usage:
  vi-noc run      SCENARIO.json [--out FILE] [--frontier-out FILE]
  vi-noc simulate SCENARIO.json [--out FILE]
  vi-noc report   REPORT.json
  vi-noc sweep    run|merge|info ...   (see `vi-noc sweep` for details)
  vi-noc fleet    serve|work|run ...   (see `vi-noc fleet` for details)
  vi-noc dynsweep run|check ...        (see `vi-noc dynsweep` for details)";

/// Usage text of the `sweep` subcommand / binary.
pub const SWEEP_USAGE: &str = "\
usage:
  sweep run    --spec <d12|d16|d20|d26|d36> --islands K [--partition logical|comm]
               [--comm-seed S] [--max-boost B] [--scales 1.0,1.15] [--max-mid M]
               | --scenario FILE
               [--prune] [--shard I/N] [--seq] [--frontier] [--resume]
               [--checkpoint-every C] --out FILE
  sweep refine --frontier-in COARSE.json (--spec ... --islands K | --scenario FILE)
               [fine grid flags as in run] [--boost-radius B] [--base-radius R]
               [--scale-window W] [--prune] [--shard I/N] [--seq] [--frontier]
               [--resume] [--checkpoint-every C] --out FILE
  sweep merge  SHARD.json... --out FILE
  sweep info   (--spec ... --islands K [grid flags] | --scenario FILE)";

/// Usage text of the `fleet` subcommand.
pub const FLEET_USAGE: &str = "\
usage:
  fleet serve --scenario FILE [--listen ADDR] [--addr-file FILE] [--out FILE]
              [--lease-chunk N] [--lease-timeout-ms T] [--checkpoint-every C]
              [--verbose]
  fleet work  --connect HOST:PORT [--throttle-ms T]
  fleet run   --scenario FILE --workers N [--out FILE]
              [--lease-chunk N] [--lease-timeout-ms T] [--checkpoint-every C]
              [--verbose]";

/// Usage text of the `dynsweep` subcommand.
pub const DYNSWEEP_USAGE: &str = "\
usage:
  dynsweep run   --scenario FILE [--mode exact|clustered] [--out FILE]
  dynsweep check EXACT.json CLUSTERED.json";

/// Entry point of the `vi-noc` binary.
///
/// # Errors
///
/// A printable message; the binary appends the usage text.
pub fn vi_noc_cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], true),
        Some("simulate") => cmd_run(&args[1..], false),
        Some("report") => cmd_report(&args[1..]),
        Some("sweep") => sweep_cli(&args[1..]),
        Some("fleet") => fleet_cli(&args[1..]),
        Some("dynsweep") => dynsweep_cli(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write_out(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        None | Some("-") => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}")),
    }
}

// --- run / simulate ------------------------------------------------------

fn cmd_run(args: &[String], with_sweep: bool) -> Result<(), String> {
    let mut scenario_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut frontier_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--frontier-out" if with_sweep => {
                frontier_out = Some(it.next().ok_or("--frontier-out needs a value")?.clone())
            }
            path if !path.starts_with('-') && scenario_path.is_none() => {
                scenario_path = Some(path.to_string())
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let path = scenario_path.ok_or("a scenario file is required")?;
    let scenario = Scenario::from_json(&read_file(&path)?)?;
    eprintln!("vi-noc: running scenario '{}' from {path}", scenario.name);
    let start = Instant::now();
    let report = if with_sweep {
        scenario.run()
    } else {
        scenario.run_without_sweep()
    }?;
    eprintln!("vi-noc: done in {:.2?}", start.elapsed());
    eprint!("{}", report.summary());
    if let Some(fpath) = frontier_out {
        let frontier = report
            .frontier
            .as_ref()
            .ok_or("--frontier-out requires the scenario to declare a sweep grid")?;
        write_out(Some(&fpath), frontier)?;
    }
    write_out(out.as_deref(), &report.to_json())
}

// --- report --------------------------------------------------------------

fn cmd_report(args: &[String]) -> Result<(), String> {
    let path = match args {
        [path] => path,
        _ => return Err("report takes exactly one REPORT.json argument".to_string()),
    };
    let doc = json::parse(&read_file(path)?).map_err(|e| e.to_string())?;
    let format = doc
        .get("format")
        .and_then(|v| v.as_str())
        .ok_or("not a vi-noc report file (no 'format' member)")?;
    if format != REPORT_FORMAT {
        return Err(format!("'{format}' is not '{REPORT_FORMAT}'"));
    }
    let str_field = |k: &str| doc.get(k).and_then(|v| v.as_str()).unwrap_or("?");
    let num_field = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    println!(
        "report: scenario '{}' — {} @ {} islands, {} design point(s) explored",
        str_field("scenario"),
        str_field("spec_name"),
        num_field("island_count"),
        num_field("explored_points"),
    );
    if let Some(metrics) = doc.get("point").and_then(|p| p.get("metrics")) {
        let mw = metrics
            .get("power_mw")
            .and_then(|p| p.get("total"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let lat = metrics
            .get("avg_latency_cycles")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        println!("  chosen point: {mw:.1} mW, {lat:.2} cycles avg zero-load latency");
    }
    if let Some(realized) = doc.get("realized").and_then(|r| r.get("metrics")) {
        let mw = realized
            .get("power_mw")
            .and_then(|p| p.get("total"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        println!("  floorplan-realized: {mw:.1} mW with Manhattan wires");
    }
    if let Some(sim) = doc.get("sim") {
        let horizon = sim.get("horizon_ns").and_then(|v| v.as_u64()).unwrap_or(0);
        let delivered = sim
            .get("stats")
            .and_then(|s| s.get("total_delivered_packets"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        println!("  simulated {horizon} ns: {delivered} packets delivered");
    }
    if let Some(sd) = doc.get("shutdown") {
        println!(
            "  shutdown: island {} gated, drained cleanly = {}, {} survivor packets after",
            sd.get("island").and_then(|v| v.as_u64()).unwrap_or(0),
            sd.get("drained_cleanly")
                .map(|v| matches!(v, json::Value::Bool(true)))
                .unwrap_or(false),
            sd.get("survivors_after")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
        );
    }
    if let Some(frontier) = doc.get("frontier") {
        let n = frontier
            .get("frontier")
            .and_then(|v| v.as_arr())
            .map(|a| a.len())
            .unwrap_or(0);
        println!("  sweep frontier: {n} undominated point(s)");
    }
    Ok(())
}

// --- sweep ---------------------------------------------------------------

/// Entry point of the `sweep` subcommand (and the standalone `sweep`
/// binary, which is a thin wrapper over this).
///
/// # Errors
///
/// A printable message; the binaries append [`SWEEP_USAGE`].
pub fn sweep_cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => sweep_run(&args[1..]),
        Some("refine") => sweep_refine(&args[1..]),
        Some("merge") => sweep_merge(&args[1..]),
        Some("info") => sweep_info(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

/// Options shared by `sweep run` and `sweep info`.
#[derive(Debug)]
struct SweepOpts {
    spec: SocSpec,
    vi: ViAssignment,
    partition_tag: String,
    grid_cfg: GridConfig,
    cfg: SynthesisConfig,
    shard: Shard,
    prune: bool,
    frontier: bool,
    resume: bool,
    checkpoint_every: Option<u64>,
    out: Option<String>,
}

fn parse_sweep_opts(args: &[String]) -> Result<SweepOpts, String> {
    let mut scenario_path: Option<String> = None;
    let mut spec_name: Option<String> = None;
    let mut islands: Option<usize> = None;
    let mut partition_kind: Option<String> = None;
    let mut comm_seed: Option<u64> = None;
    let mut grid_flags: Vec<(String, String)> = Vec::new();
    let mut seq = false;
    let mut shard = Shard::full();
    let mut prune = false;
    let mut frontier = false;
    let mut resume = false;
    let mut checkpoint_every: Option<u64> = None;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => scenario_path = Some(value("--scenario")?.clone()),
            "--spec" => spec_name = Some(value("--spec")?.clone()),
            "--islands" => {
                islands = Some(
                    value("--islands")?
                        .parse()
                        .map_err(|_| "bad --islands value")?,
                )
            }
            "--partition" => partition_kind = Some(value("--partition")?.clone()),
            "--comm-seed" => {
                comm_seed = Some(
                    value("--comm-seed")?
                        .parse()
                        .map_err(|_| "bad --comm-seed value")?,
                )
            }
            "--max-boost" | "--scales" | "--max-mid" => {
                grid_flags.push((arg.clone(), value(arg)?.clone()))
            }
            "--shard" => shard = Shard::parse(value("--shard")?)?,
            "--prune" => prune = true,
            "--seq" => seq = true,
            "--frontier" => frontier = true,
            "--resume" => resume = true,
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "bad --checkpoint-every value")?,
                )
            }
            "--out" => out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let (spec, vi, partition_tag, mut grid_cfg, mut cfg) = if let Some(path) = scenario_path {
        // The scenario owns spec and partition; silently ignoring these
        // flags would run a different grid than the user asked for.
        if spec_name.is_some()
            || islands.is_some()
            || partition_kind.is_some()
            || comm_seed.is_some()
        {
            return Err(
                "--scenario and --spec/--islands/--partition/--comm-seed are mutually exclusive"
                    .to_string(),
            );
        }
        let scenario = Scenario::from_json(&read_file(&path)?)?;
        let spec = scenario.resolve_spec()?;
        let vi = scenario.resolve_partition(&spec)?;
        let grid = scenario
            .sweep
            .clone()
            .ok_or_else(|| format!("scenario '{}' declares no sweep grid", scenario.name))?;
        // The scenario may opt into pruning for every process of the sweep.
        prune |= scenario.sweep_prune;
        (
            spec,
            vi,
            scenario.partition.tag(),
            grid,
            scenario.synthesis.clone(),
        )
    } else {
        let spec_name = spec_name.ok_or("--spec (or --scenario) is required")?;
        let spec =
            benchmark_by_name(&spec_name).ok_or_else(|| format!("unknown spec '{spec_name}'"))?;
        let k = islands.ok_or("--islands is required")?;
        let seed = comm_seed.unwrap_or(1);
        let (vi, tag) = match partition_kind.as_deref().unwrap_or("logical") {
            "logical" => (
                partition::logical_partition(&spec, k).map_err(|e| e.to_string())?,
                PartitionPlan::Logical { islands: k }.tag(),
            ),
            "comm" => (
                partition::communication_partition(&spec, k, seed).map_err(|e| e.to_string())?,
                PartitionPlan::Communication { islands: k, seed }.tag(),
            ),
            other => return Err(format!("unknown partition '{other}'")),
        };
        (
            spec,
            vi,
            tag,
            GridConfig::default(),
            SynthesisConfig::default(),
        )
    };

    // Grid flags refine the base grid (scenario-provided or default).
    for (flag, value) in grid_flags {
        match flag.as_str() {
            "--max-boost" => {
                grid_cfg.max_boost = value.parse().map_err(|_| "bad --max-boost value")?
            }
            "--scales" => {
                grid_cfg.freq_scales = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad scale '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--max-mid" => {
                grid_cfg.max_intermediate = value.parse().map_err(|_| "bad --max-mid value")?
            }
            _ => unreachable!("only grid flags collected"),
        }
    }
    if seq {
        cfg.parallel = false;
    }
    if grid_cfg.freq_scales.is_empty()
        || grid_cfg
            .freq_scales
            .iter()
            .any(|&s| !s.is_finite() || s < 1.0)
    {
        return Err("--scales must be a non-empty list of factors >= 1.0".to_string());
    }
    if frontier && shard != Shard::full() {
        return Err("--frontier requires the unsharded run (--shard 0/1)".to_string());
    }
    if resume && out.as_deref().is_none_or(|o| o == "-") {
        return Err("--resume needs --out FILE (the checkpoint to resume from)".to_string());
    }
    if checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be at least 1".to_string());
    }
    if checkpoint_every.is_some() && out.as_deref().is_none_or(|o| o == "-") {
        return Err("--checkpoint-every needs --out FILE".to_string());
    }
    Ok(SweepOpts {
        spec,
        vi,
        partition_tag,
        grid_cfg,
        cfg,
        shard,
        prune,
        frontier,
        resume,
        checkpoint_every,
        out,
    })
}

fn sweep_run(args: &[String]) -> Result<(), String> {
    let opts = parse_sweep_opts(args)?;
    let grid = SweepGrid::build(&opts.spec, &opts.vi, &opts.cfg, &opts.grid_cfg);
    drive_sweep(&opts, &grid)
}

/// Builds the refinement windows of the requested fine grid around a
/// merged coarse frontier, then sweeps the windowed grid exactly like
/// `sweep run` (same sharding, pruning, resume and emission flags).
fn sweep_refine(args: &[String]) -> Result<(), String> {
    // The refine-specific flags are peeled off here; everything else is the
    // `sweep run` surface, fine-grid flags included.
    let mut frontier_in: Option<String> = None;
    let mut params = RefineParams::default();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--frontier-in" => frontier_in = Some(value("--frontier-in")?.clone()),
            "--boost-radius" => {
                params.boost_radius = value("--boost-radius")?
                    .parse()
                    .map_err(|_| "bad --boost-radius value")?
            }
            "--base-radius" => {
                params.base_radius = value("--base-radius")?
                    .parse()
                    .map_err(|_| "bad --base-radius value")?
            }
            "--scale-window" => {
                let w: f64 = value("--scale-window")?
                    .parse()
                    .map_err(|_| "bad --scale-window value")?;
                if !w.is_finite() || w < 0.0 {
                    return Err("--scale-window must be a finite factor >= 0".to_string());
                }
                params.scale_window = w;
            }
            other => rest.push(other.to_string()),
        }
    }
    let opts = parse_sweep_opts(&rest)?;
    let path = frontier_in.ok_or("--frontier-in COARSE.json is required")?;
    let parsed = parse_frontier_file(&read_file(&path)?).map_err(|e| format!("{path}: {e}"))?;
    // Refining a frontier of a different spec, partition or seed would
    // window the fine grid around points of a different design space.
    validate_frontier_source(
        &parsed,
        opts.spec.name(),
        &opts.partition_tag,
        opts.cfg.seed,
    )
    .map_err(|e| format!("{path}: {e}"))?;
    let seeds = frontier_seeds(&parsed).map_err(|e| format!("{path}: {e}"))?;
    let windows = windows_from_frontier(&seeds, &opts.grid_cfg, &params);
    if windows.is_empty() {
        return Err(format!(
            "{path}: no refinement window covers the fine grid (empty frontier, or every \
             surviving scale is outside --scale-window)"
        ));
    }
    eprintln!(
        "sweep refine: {} window(s) around {} surviving point(s) of {path}",
        windows.len(),
        seeds.len()
    );
    let grid = SweepGrid::build_windowed(&opts.spec, &opts.vi, &opts.cfg, &opts.grid_cfg, windows);
    drive_sweep(&opts, &grid)
}

/// The shared shard driver of `sweep run` and `sweep refine`: resume,
/// periodic checkpoints, optional pruning, final emission.
fn drive_sweep(opts: &SweepOpts, grid: &SweepGrid) -> Result<(), String> {
    let desc = GridDescriptor::for_grid(grid, opts.spec.name(), &opts.partition_tag, opts.cfg.seed);
    eprintln!(
        "sweep run: {} ({}), grid {} chains / {} candidates, shard {}{}",
        desc.spec_name,
        desc.partition,
        grid.num_active_chains(),
        grid.num_candidates(),
        opts.shard,
        if opts.prune { ", slack pruning on" } else { "" }
    );

    // Restore a previous (possibly partial) checkpoint when resuming.
    let mut progress = ShardProgress::new();
    if opts.resume {
        let path = opts.out.as_deref().expect("validated by parse_sweep_opts");
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let parsed =
                    parse_shard_checkpoint(&text).map_err(|e| format!("resuming {path}: {e}"))?;
                if parsed.grid.to_json() != desc.to_json() {
                    return Err(format!(
                        "resuming {path}: checkpoint describes a different grid"
                    ));
                }
                if parsed.shard != opts.shard {
                    return Err(format!(
                        "resuming {path}: checkpoint covers shard {}, not {}",
                        parsed.shard, opts.shard
                    ));
                }
                progress = parsed.to_progress();
                eprintln!(
                    "sweep run: resuming shard {} from {path} at {}/{} chains",
                    opts.shard,
                    progress.chains_done,
                    opts.shard.stripe_len(grid.num_chains())
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("sweep run: no checkpoint at {path}, starting fresh");
            }
            Err(e) => return Err(format!("reading {path}: {e}")),
        }
    }

    let start = Instant::now();
    let resume = if opts.prune {
        resume_shard_pruned
    } else {
        resume_shard
    };
    loop {
        let finished = resume(
            &opts.spec,
            &opts.vi,
            grid,
            opts.shard,
            &opts.cfg,
            &mut progress,
            opts.checkpoint_every,
        );
        if finished {
            break;
        }
        // Periodic checkpoint so a killed process loses at most one batch.
        let path = opts.out.as_deref().expect("validated by parse_sweep_opts");
        std::fs::write(path, shard_progress_json(&desc, opts.shard, &progress))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "sweep run: checkpoint at {}/{} chains -> {path}",
            progress.chains_done,
            opts.shard.stripe_len(grid.num_chains())
        );
    }
    let elapsed = start.elapsed();
    eprintln!(
        "sweep run: shard {} done in {elapsed:.2?}: {} chains ({} skipped by slack pruning), \
         {} feasible / {} duplicate / {} infeasible candidates, {} frontier points",
        opts.shard,
        progress.stats.chains,
        progress.pruned_chains,
        progress.stats.feasible,
        progress.stats.duplicates,
        progress.stats.infeasible,
        progress.frontier.len()
    );
    let text = if opts.frontier {
        frontier_progress_json(&desc, &progress)
    } else {
        shard_progress_json(&desc, opts.shard, &progress)
    };
    write_out(opts.out.as_deref(), &text)
}

fn sweep_merge(args: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return Err("merge needs at least one checkpoint file".to_string());
    }
    let contents: Vec<String> = files
        .iter()
        .map(|p| read_file(p))
        .collect::<Result<_, _>>()?;
    let merged = merge_checkpoints(&contents)?;
    eprintln!(
        "sweep merge: {} shard file(s) -> {} frontier bytes",
        files.len(),
        merged.len()
    );
    write_out(out.as_deref(), &merged)
}

fn sweep_info(args: &[String]) -> Result<(), String> {
    let opts = parse_sweep_opts(args)?;
    let grid = SweepGrid::build(&opts.spec, &opts.vi, &opts.cfg, &opts.grid_cfg);
    println!("spec:            {}", opts.spec.name());
    println!("partition:       {}", opts.partition_tag);
    println!("max boost:       {}", opts.grid_cfg.max_boost);
    println!("freq scales:     {:?}", opts.grid_cfg.freq_scales);
    println!("max mid:         {}", opts.grid_cfg.max_intermediate);
    println!("chain ids:       {}", grid.num_chains());
    println!("active chains:   {}", grid.num_active_chains());
    println!("candidates:      {}", grid.num_candidates());
    println!("chain length:    {}", grid.chain_len());
    Ok(())
}

// --- fleet ---------------------------------------------------------------

/// Entry point of the `fleet` subcommand: a scenario's sweep grid run by a
/// coordinator + worker fleet over TCP, folding the frontier byte-identically
/// to `sweep run --scenario FILE --frontier`.
///
/// # Errors
///
/// A printable message; the binary appends [`FLEET_USAGE`].
pub fn fleet_cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("serve") => fleet_serve(&args[1..]),
        Some("work") => fleet_work(&args[1..]),
        Some("run") => fleet_run(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

/// Applies one of the shared coordinator knobs (`--lease-chunk`,
/// `--lease-timeout-ms`, `--checkpoint-every`) to `cfg`.
fn apply_fleet_flag(cfg: &mut FleetConfig, flag: &str, value: &str) -> Result<(), String> {
    let parsed: u64 = value.parse().map_err(|_| format!("bad {flag} value"))?;
    match flag {
        "--lease-timeout-ms" => cfg.lease_timeout = std::time::Duration::from_millis(parsed),
        _ if parsed == 0 => return Err(format!("{flag} must be at least 1")),
        "--lease-chunk" => cfg.lease_chunk = parsed,
        "--checkpoint-every" => cfg.checkpoint_every = parsed,
        _ => unreachable!("only fleet flags dispatched"),
    }
    Ok(())
}

/// Loads the scenario behind `--scenario` and checks it declares a sweep
/// grid — the one thing a fleet can run.
fn fleet_scenario(path: Option<String>) -> Result<Scenario, String> {
    let path = path.ok_or("--scenario FILE is required")?;
    let scenario = Scenario::from_json(&read_file(&path)?)?;
    if scenario.sweep.is_none() {
        return Err(format!(
            "scenario '{}' declares no sweep grid",
            scenario.name
        ));
    }
    Ok(scenario)
}

fn fleet_serve(args: &[String]) -> Result<(), String> {
    let mut scenario_path: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut addr_file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cfg = FleetConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => scenario_path = Some(value("--scenario")?.clone()),
            "--listen" => listen = value("--listen")?.clone(),
            "--addr-file" => addr_file = Some(value("--addr-file")?.clone()),
            "--out" => out = Some(value("--out")?.clone()),
            "--verbose" => cfg.verbose = true,
            "--lease-chunk" | "--lease-timeout-ms" | "--checkpoint-every" => {
                apply_fleet_flag(&mut cfg, arg, value(arg)?)?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let scenario = fleet_scenario(scenario_path)?;
    let resolver: std::sync::Arc<dyn vi_noc_fleet::JobResolver> =
        std::sync::Arc::new(ScenarioJobResolver);
    let handle = vi_noc_fleet::start_coordinator(&listen, resolver, cfg)?;
    eprintln!(
        "fleet serve: scenario '{}' on {} — join with `vi-noc fleet work --connect {}`",
        scenario.name,
        handle.addr(),
        handle.addr()
    );
    // The resolved address lets scripts bind port 0 and still find us.
    if let Some(path) = &addr_file {
        std::fs::write(path, format!("{}\n", handle.addr()))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    let start = Instant::now();
    let result = handle.submit(&job_payload(&scenario, None));
    handle.shutdown();
    let frontier = result?;
    eprintln!("fleet serve: frontier folded in {:.2?}", start.elapsed());
    write_out(out.as_deref(), &frontier)
}

fn fleet_work(args: &[String]) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut opts = vi_noc_fleet::WorkerOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")?.clone()),
            "--throttle-ms" => {
                let ms: u64 = value("--throttle-ms")?
                    .parse()
                    .map_err(|_| "bad --throttle-ms value")?;
                opts.throttle = std::time::Duration::from_millis(ms);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let connect = connect.ok_or("--connect HOST:PORT is required")?;
    let addr = std::net::ToSocketAddrs::to_socket_addrs(connect.as_str())
        .map_err(|e| format!("resolving {connect}: {e}"))?
        .next()
        .ok_or_else(|| format!("{connect} resolves to no address"))?;
    let stats = vi_noc_fleet::run_worker(addr, &ScenarioJobResolver, &opts)?;
    eprintln!(
        "fleet work: {} lease(s) done, {} delta(s) acked, {} abandoned",
        stats.leases, stats.deltas, stats.abandoned
    );
    Ok(())
}

fn fleet_run(args: &[String]) -> Result<(), String> {
    let mut scenario_path: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut cfg = FleetConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => scenario_path = Some(value("--scenario")?.clone()),
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "bad --workers value")?,
                )
            }
            "--out" => out = Some(value("--out")?.clone()),
            "--verbose" => cfg.verbose = true,
            "--lease-chunk" | "--lease-timeout-ms" | "--checkpoint-every" => {
                apply_fleet_flag(&mut cfg, arg, value(arg)?)?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let scenario = fleet_scenario(scenario_path)?;
    let workers = workers.ok_or("--workers N is required")?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let start = Instant::now();
    let frontier = crate::fleet::run_local_fleet(&job_payload(&scenario, None), workers, cfg)?;
    eprintln!(
        "fleet run: frontier folded by {workers} worker(s) in {:.2?}",
        start.elapsed()
    );
    write_out(out.as_deref(), &frontier)
}

// --- dynsweep ------------------------------------------------------------

/// Entry point of the `dynsweep` subcommand: runs a scenario's declared
/// dynamic sweep (optionally overriding the engine mode), or cross-checks
/// a clustered result table against its exact oracle.
///
/// # Errors
///
/// A printable message; the binary appends [`DYNSWEEP_USAGE`].
pub fn dynsweep_cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => dynsweep_run(&args[1..]),
        Some("check") => dynsweep_check(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

fn dynsweep_run(args: &[String]) -> Result<(), String> {
    let mut scenario_path: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => scenario_path = Some(value("--scenario")?.clone()),
            "--mode" => mode = Some(value("--mode")?.parse()?),
            "--out" => out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let path = scenario_path.ok_or("--scenario FILE is required")?;
    let mut scenario = Scenario::from_json(&read_file(&path)?)?;
    let Some(plan) = scenario.dyn_sweep.as_mut() else {
        return Err(format!(
            "scenario '{}' declares no dyn_sweep stage",
            scenario.name
        ));
    };
    if let Some(m) = mode {
        plan.mode = m;
    }
    let mode = plan.mode;
    eprintln!("dynsweep run: scenario '{}' in {mode} mode", scenario.name);
    let start = Instant::now();
    let report = scenario.run()?;
    let table = report.dyn_sweep.expect("dyn_sweep stage declared");
    let parsed =
        parse_table(&table).map_err(|e| format!("internal: emitted table does not parse: {e}"))?;
    let count =
        |p: fn(&Provenance) -> bool| parsed.cells.iter().filter(|c| p(&c.provenance)).count();
    eprintln!(
        "dynsweep run: {} point(s) x {} sim config(s) = {} cell(s) in {:.2?}: \
         {} exact, {} reused, {} bounded",
        parsed.points.len(),
        parsed.axes.cells_per_point(),
        parsed.cells.len(),
        start.elapsed(),
        count(|p| matches!(p, Provenance::Exact)),
        count(|p| matches!(p, Provenance::Reused(_))),
        count(|p| matches!(p, Provenance::Bounded(_))),
    );
    write_out(out.as_deref(), &table)
}

/// Relative deviation between a measured value and its oracle, on the
/// scale of the larger magnitude (0 when both are 0).
fn rel_dev(a: f64, b: f64) -> f64 {
    let m = a.abs().max(b.abs());
    if m == 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

/// Cross-checks a clustered table against the exact table of the same
/// scenario: reused cells must be stat-identical to their exact oracle,
/// bounded cells must deviate by at most their reported bound.
fn dynsweep_check(args: &[String]) -> Result<(), String> {
    let [epath, cpath] = args else {
        return Err("check takes exactly EXACT.json CLUSTERED.json".to_string());
    };
    let exact = parse_table(&read_file(epath)?).map_err(|e| format!("{epath}: {e}"))?;
    let clustered = parse_table(&read_file(cpath)?).map_err(|e| format!("{cpath}: {e}"))?;
    if exact.mode != Mode::Exact {
        return Err(format!("{epath}: mode is '{}', not 'exact'", exact.mode));
    }
    if clustered.mode != Mode::Clustered {
        return Err(format!(
            "{cpath}: mode is '{}', not 'clustered'",
            clustered.mode
        ));
    }
    if exact.spec_name != clustered.spec_name
        || exact.axes != clustered.axes
        || exact.points != clustered.points
    {
        return Err(
            "the two tables cover different grids (spec, axes, or points differ)".to_string(),
        );
    }
    let mut reused = 0usize;
    let mut bounded = 0usize;
    let mut max_dev = 0.0f64;
    let mut min_headroom = f64::INFINITY;
    for (i, (e, c)) in exact.cells.iter().zip(&clustered.cells).enumerate() {
        match &c.provenance {
            // Representatives and exact-key reuses must be byte-level
            // equal to a fresh simulation — i.e. to the exact table.
            Provenance::Exact => {
                if c.stats != e.stats {
                    return Err(format!(
                        "cells[{i}]: simulated stats differ from the exact table's"
                    ));
                }
            }
            Provenance::Reused(_) => {
                reused += 1;
                if c.stats != e.stats {
                    return Err(format!(
                        "cells[{i}]: reused stats differ from the exact table's \
                         (exact-key reuse must be invisible)"
                    ));
                }
            }
            Provenance::Bounded(bound) => {
                bounded += 1;
                let dev = rel_dev(c.stats.delivered as f64, e.stats.delivered as f64)
                    .max(rel_dev(c.stats.avg_latency_ps, e.stats.avg_latency_ps))
                    .max(rel_dev(c.stats.power_mw, e.stats.power_mw));
                if dev > *bound {
                    return Err(format!(
                        "cells[{i}]: observed relative deviation {dev:.4} exceeds the \
                         reported bound {bound:.4}"
                    ));
                }
                max_dev = max_dev.max(dev);
                min_headroom = min_headroom.min(bound - dev);
            }
        }
    }
    println!(
        "dynsweep check: {} cell(s) consistent — {reused} reused stat-identical, \
         {bounded} bounded within bounds (max observed deviation {max_dev:.4}, \
         min headroom {})",
        clustered.cells.len(),
        if min_headroom.is_finite() {
            format!("{min_headroom:.4}")
        } else {
            "n/a".to_string()
        }
    );
    Ok(())
}

// Lets the String-error CLI functions apply `?` directly to API results.
impl From<Error> for String {
    fn from(e: Error) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_are_reported() {
        let err = vi_noc_cli(&["explode".to_string()]).unwrap_err();
        assert!(err.contains("explode"));
        assert!(sweep_cli(&[]).is_err());
    }

    #[test]
    fn sweep_opts_validate_flag_combinations() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        // --frontier with a real shard is rejected.
        let err =
            parse_sweep_opts(&args("--spec d12 --islands 4 --shard 1/3 --frontier")).unwrap_err();
        assert!(err.contains("--frontier"));
        // --resume without --out is rejected.
        let err = parse_sweep_opts(&args("--spec d12 --islands 4 --resume")).unwrap_err();
        assert!(err.contains("--resume"));
        // --scenario owns spec AND partition: every overridden flag is
        // rejected rather than silently ignored.
        for conflicting in [
            "--scenario x.json --spec d12 --islands 4",
            "--scenario x.json --partition comm",
            "--scenario x.json --comm-seed 7",
        ] {
            let err = parse_sweep_opts(&args(conflicting)).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{conflicting}: {err}");
        }
        // The classic flag surface still parses.
        let opts = parse_sweep_opts(&args(
            "--spec d12 --islands 4 --max-boost 1 --shard 0/2 --seq",
        ))
        .unwrap();
        assert_eq!(opts.grid_cfg.max_boost, 1);
        assert!(!opts.cfg.parallel);
        assert_eq!(opts.shard, Shard::new(0, 2).unwrap());
        // Slack pruning is off unless asked for.
        assert!(!opts.prune);
        let opts = parse_sweep_opts(&args("--spec d12 --islands 4 --prune")).unwrap();
        assert!(opts.prune);
    }

    #[test]
    fn sweep_refine_validates_its_flags() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        // The coarse frontier is mandatory.
        let err = sweep_refine(&args("--spec d12 --islands 4")).unwrap_err();
        assert!(err.contains("--frontier-in"), "{err}");
        // Radii must be numbers; the window must be a finite non-negative float.
        let err = sweep_refine(&args(
            "--frontier-in f.json --spec d12 --islands 4 --boost-radius x",
        ))
        .unwrap_err();
        assert!(err.contains("--boost-radius"), "{err}");
        let err = sweep_refine(&args(
            "--frontier-in f.json --spec d12 --islands 4 --scale-window -1",
        ))
        .unwrap_err();
        assert!(err.contains("--scale-window"), "{err}");
        // A missing frontier file fails with the path in the message.
        let err = sweep_refine(&args(
            "--frontier-in /nonexistent/f.json --spec d12 --islands 4",
        ))
        .unwrap_err();
        assert!(err.contains("/nonexistent/f.json"), "{err}");
    }
}
