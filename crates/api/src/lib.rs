//! The unified scenario API: one typed entry point from SoC spec to
//! shutdown-aware simulation.
//!
//! The paper's flow is a single conceptual pipeline — VI-partitioned SoC
//! spec → topology synthesis → floorplan-aware realization → flit-level
//! simulation with island shutdown — and this crate exposes it as one
//! surface instead of seven crates of hand-chained calls:
//!
//! * [`Scenario`] — a complete experiment **as data**: spec (bundled
//!   benchmark or inline custom SoC), partition strategy, synthesis /
//!   floorplan / simulation configs, shutdown schedule, sweep grid.
//!   Parsed from JSON ([`Scenario::from_json`]), executed end to end
//!   ([`Scenario::run`]), re-emitted byte-deterministically
//!   ([`Scenario::to_json`]) — so new workloads need no Rust edits.
//! * [`Pipeline`] — the typestate builder behind it:
//!   `Scenario::for_spec(..).synthesize(..)?.floorplan(..).simulate(..)`.
//!   Stages are types; the compiler rejects out-of-order flows.
//! * [`Report`] — everything a run produced, with a byte-deterministic
//!   JSON emission (`Report::to_json`) and a terminal summary.
//! * [`Error`] — the workspace-wide error type every stage fails through.
//! * [`cli`] — the implementation of the `vi-noc` binary (`run`,
//!   `simulate`, `sweep`, `report`, `fleet`) and the back-compat `sweep`
//!   binary.
//! * [`fleet`] — scenario documents as `vi-noc-fleet` job payloads: a
//!   scenario's sweep runs on a coordinator + worker fleet
//!   (`sweep_workers`, or the `fleet` CLI) with byte-identical frontier
//!   emission.
//!
//! Everything here composes the existing stage functions
//! (`vi_noc_core::synthesize`, `realize_on_floorplan`,
//! `vi_noc_sim::Simulator`, the `vi-noc-sweep` shard runner) without
//! reimplementing them, so pipeline outputs — design spaces, `SimStats`,
//! frontier bytes — are bit-identical to hand-chained calls
//! (`crates/api/tests/byte_identity.rs` pins this on D26).

#![warn(missing_docs)]

pub mod cli;
mod error;
pub mod fleet;
mod ingest;
mod pipeline;
mod report;
mod scenario;

pub use error::Error;
pub use ingest::SCENARIO_FORMAT;
pub use pipeline::{Pipeline, Realized, Simulated, Specified, Synthesized};
pub use report::{Report, ShutdownReport, SimReport, REPORT_FORMAT};
pub use scenario::{
    benchmark_by_name, DynSweepPlan, IslandChoice, PartitionPlan, RefinePlan, Scenario,
    ShutdownPlan, SimPlan, SpecSource,
};
