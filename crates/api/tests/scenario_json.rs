//! Scenario JSON round-trips and parser error paths.
//!
//! The core property: `Scenario::from_json(s.to_json()) == s` exactly, for
//! random synthetic SoCs and stage configurations — emission writes every
//! field in storage units with shortest-round-trip numbers, so nothing is
//! lost. Plus error-path coverage for the serde-free JSON parser the
//! ingestion is built on (truncated input, duplicate keys, non-finite
//! numbers).

use proptest::prelude::*;
use vi_noc_api::{
    DynSweepPlan, IslandChoice, PartitionPlan, RefinePlan, Scenario, ShutdownPlan, SimPlan,
    SpecSource,
};
use vi_noc_core::SynthesisConfig;
use vi_noc_dynsweep::Mode;
use vi_noc_floorplan::FloorplanConfig;
use vi_noc_models::Technology;
use vi_noc_sim::TrafficKind;
use vi_noc_soc::{generate_synthetic, SyntheticConfig};
use vi_noc_sweep::{json, GridConfig, RefineParams};

fn arb_spec() -> impl Strategy<Value = SpecSource> {
    (0usize..5, 4usize..24, 0u64..1000).prop_map(|(pick, n_cores, seed)| match pick {
        0 => SpecSource::Benchmark("d12".into()),
        1 => SpecSource::Benchmark("d26".into()),
        _ => SpecSource::Inline(generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        })),
    })
}

fn arb_partition() -> impl Strategy<Value = PartitionPlan> {
    (0usize..2, 1usize..5, 0u64..100).prop_map(|(pick, islands, seed)| match pick {
        0 => PartitionPlan::Logical { islands },
        _ => PartitionPlan::Communication { islands, seed },
    })
}

fn arb_synthesis() -> impl Strategy<Value = SynthesisConfig> {
    (
        0.05f64..0.95,
        0u64..1_000_000,
        proptest::bool::ANY,
        0usize..3,
    )
        .prop_map(|(alpha, seed, parallel, tech)| SynthesisConfig {
            alpha,
            seed,
            parallel,
            technology: match tech {
                0 => Technology::cmos_65nm(),
                1 => Technology::cmos_90nm(),
                _ => {
                    // A custom node exercises the inline-object emission.
                    Technology {
                        vdd_v: 0.8 + alpha / 10.0,
                        node_nm: 45.0,
                        ..Technology::cmos_65nm()
                    }
                }
            },
            ..SynthesisConfig::default()
        })
}

fn arb_floorplan() -> impl Strategy<Value = FloorplanConfig> {
    (1_000usize..30_000, 1usize..4, 0u64..1000).prop_map(|(iterations, restarts, seed)| {
        FloorplanConfig {
            iterations,
            restarts,
            seed,
            ..FloorplanConfig::default()
        }
    })
}

fn arb_sim() -> impl Strategy<Value = Option<SimPlan>> {
    (0usize..3, 0.05f64..1.5, 1u64..500_000, proptest::bool::ANY).prop_map(
        |(pick, load_factor, horizon_ns, batching)| match pick {
            0 => None,
            p => {
                let mut plan = SimPlan::default();
                plan.config.traffic = if p == 1 {
                    TrafficKind::Cbr
                } else {
                    TrafficKind::Poisson
                };
                plan.config.load_factor = load_factor;
                plan.config.batching = batching;
                plan.horizon_ns = horizon_ns;
                Some(plan)
            }
        },
    )
}

fn arb_shutdown() -> impl Strategy<Value = Option<ShutdownPlan>> {
    (0usize..3, 0usize..6, 1u64..100_000).prop_map(|(pick, island, stop_at_ns)| match pick {
        0 => None,
        p => Some(ShutdownPlan {
            island: if p == 1 {
                IslandChoice::Auto
            } else {
                IslandChoice::Index(island)
            },
            stop_at_ns,
            ..ShutdownPlan::default()
        }),
    })
}

fn arb_sweep() -> impl Strategy<Value = Option<GridConfig>> {
    (0usize..3, 0usize..3, 0usize..5, 1.0f64..1.5).prop_map(
        |(pick, max_boost, max_intermediate, scale)| match pick {
            0 => None,
            p => Some(GridConfig {
                max_boost,
                max_intermediate,
                freq_scales: if p == 1 { vec![1.0] } else { vec![1.0, scale] },
            }),
        },
    )
}

fn arb_refine() -> impl Strategy<Value = Option<RefinePlan>> {
    (0usize..3, 0usize..3, 0usize..4, 0.0f64..0.6).prop_map(
        |(pick, boost_radius, base_radius, scale_window)| match pick {
            0 => None,
            p => Some(RefinePlan {
                grid: GridConfig {
                    max_boost: boost_radius + 1,
                    max_intermediate: base_radius,
                    freq_scales: if p == 1 {
                        vec![1.0]
                    } else {
                        vec![1.0, 1.0 + scale_window]
                    },
                },
                params: RefineParams {
                    boost_radius,
                    base_radius,
                    scale_window,
                },
            }),
        },
    )
}

fn arb_dyn_sweep() -> impl Strategy<Value = Option<DynSweepPlan>> {
    (
        0usize..3,
        0.1f64..1.5,
        1u64..50_000,
        proptest::bool::ANY,
        arb_shutdown(),
    )
        .prop_map(|(pick, load, horizon_ns, clustered, sched)| match pick {
            0 => None,
            p => Some(DynSweepPlan {
                loads: if p == 1 {
                    vec![load]
                } else {
                    vec![load, load + 0.25]
                },
                traffic: if p == 1 {
                    vec![TrafficKind::Cbr]
                } else {
                    vec![TrafficKind::Cbr, TrafficKind::Poisson]
                },
                schedules: if p == 1 {
                    vec![None]
                } else {
                    vec![None, sched]
                },
                horizon_ns,
                mode: if clustered {
                    Mode::Clustered
                } else {
                    Mode::Exact
                },
            }),
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (arb_spec(), arb_partition(), arb_synthesis()),
        (arb_floorplan(), arb_sim(), arb_shutdown(), arb_sweep()),
        (
            proptest::bool::ANY,
            (0usize..4, 1usize..9).prop_map(|(pick, n)| (pick != 0).then_some(n)),
            arb_refine(),
            arb_dyn_sweep(),
        ),
        0u64..u64::MAX,
    )
        .prop_map(
            |(
                (spec, partition, synthesis),
                (floorplan, sim, shutdown, sweep),
                (sweep_prune, sweep_workers, refine, dyn_sweep),
                tag,
            )| Scenario {
                name: format!("prop scenario {tag}"),
                spec,
                partition,
                synthesis,
                floorplan,
                sim,
                shutdown,
                // Refinement or a dynamic sweep without a coarse grid is
                // rejected at ingestion, so it never round-trips; keep the
                // members consistent.
                refine: if sweep.is_some() { refine } else { None },
                dyn_sweep: if sweep.is_some() { dyn_sweep } else { None },
                sweep,
                sweep_prune,
                sweep_workers,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: serialization loses nothing, exactly.
    #[test]
    fn scenario_json_round_trips_exactly(scenario in arb_scenario()) {
        let json = scenario.to_json();
        let back = Scenario::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{json}")))?;
        prop_assert_eq!(&back, &scenario);
        // Emission is a fixed point of parse -> emit.
        prop_assert_eq!(back.to_json(), json);
    }

    /// Any strict truncation of an emitted scenario is rejected, never
    /// mis-parsed or panicked on. (The last two bytes are a closing `}`
    /// and a trailing newline; only cuts before them are malformed.)
    #[test]
    fn truncated_scenarios_are_rejected(scenario in arb_scenario(), frac in 1usize..10) {
        let json = scenario.to_json();
        let cut = json.len() * frac / 10;
        if cut < json.len() - 2 {
            prop_assert!(Scenario::from_json(&json[..cut]).is_err(), "cut at {cut}");
        }
    }
}

// --- Error paths of the serde-free parser itself ------------------------

#[test]
fn parser_rejects_truncations_of_a_real_document() {
    let doc = Scenario::new(
        "trunc",
        SpecSource::Benchmark("d12".into()),
        PartitionPlan::Logical { islands: 2 },
    )
    .to_json();
    // Every strict prefix that drops more than the trailing newline and
    // closing brace must fail to parse.
    for cut in 0..doc.len().saturating_sub(2) {
        assert!(
            json::parse(&doc[..cut]).is_err(),
            "prefix of {cut} bytes unexpectedly parsed"
        );
    }
}

#[test]
fn parser_rejects_duplicate_keys_everywhere() {
    for bad in [
        r#"{"name":"a","name":"b"}"#,
        r#"{"sim":{"seed":1,"seed":2}}"#,
        r#"[{"x":1},{"y":1,"y":2}]"#,
    ] {
        let err = json::parse(bad).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{bad}: {err}");
    }
    // And through scenario ingestion, with the parse offset attached.
    let err = Scenario::from_json(r#"{"name":"x","name":"y"}"#).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn parser_rejects_non_finite_numbers() {
    for bad in ["1e999", "-1e999", r#"{"alpha":1e999}"#, "[1e400]"] {
        assert!(json::parse(bad).is_err(), "{bad}");
    }
    // A scenario smuggling an over-range literal is rejected at parse, so
    // non-finite values can never reach the synthesis math.
    let err = Scenario::from_json(
        r#"{"name":"x","spec":{"benchmark":"d12"},"partition":{"kind":"logical","islands":2},"synthesis":{"alpha":1e999}}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("non-finite"), "{err}");
}

#[test]
fn committed_example_scenarios_parse_and_round_trip() {
    for (name, text) in [
        (
            "d26_baseline",
            include_str!("../../../scenarios/d26_baseline.json"),
        ),
        (
            "d26_overclocked_fine",
            include_str!("../../../scenarios/d26_overclocked_fine.json"),
        ),
        (
            "d26_shutdown_stress",
            include_str!("../../../scenarios/d26_shutdown_stress.json"),
        ),
        (
            "d26_dynamic_grid",
            include_str!("../../../scenarios/d26_dynamic_grid.json"),
        ),
    ] {
        let scenario = Scenario::from_json(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(back, scenario, "{name}");
        // Committed scenarios must resolve against the bundled benchmarks.
        let spec = scenario
            .resolve_spec()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        scenario
            .resolve_partition(&spec)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
