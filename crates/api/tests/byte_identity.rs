//! The redesign's acceptance criterion: a complete experiment driven
//! through the `Scenario` API produces outputs **bit-identical** to the
//! pre-redesign hand-chained pipeline on D26 — same design point, same
//! realized metrics, same `SimStats`, same shutdown outcome, and the same
//! frontier bytes the `sweep` CLI emits for the same grid.

use vi_noc_api::Scenario;
use vi_noc_core::{realize_on_floorplan, synthesize, SynthesisConfig};
use vi_noc_floorplan::FloorplanConfig;
use vi_noc_sim::{run_shutdown_scenario, ShutdownScenario, SimConfig, Simulator, TrafficKind};
use vi_noc_soc::{benchmarks, partition};
use vi_noc_sweep::{frontier_json, run_shard, GridConfig, GridDescriptor, Shard, SweepGrid};

#[test]
fn scenario_run_matches_the_hand_chained_pipeline_on_d26() {
    // The committed baseline scenario, exactly as the CLI runs it.
    let scenario =
        Scenario::from_json(include_str!("../../../scenarios/d26_baseline.json")).unwrap();
    let report = scenario.run().unwrap();

    // The pre-redesign flow, chained by hand (this is what
    // `examples/simulate.rs` did before the API existed).
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let space = synthesize(&soc, &vi, &cfg).unwrap();
    let point = space.min_power_point().unwrap();
    let realized = realize_on_floorplan(&soc, &vi, point, &FloorplanConfig::default(), &cfg);
    let sim_cfg = SimConfig {
        traffic: TrafficKind::Cbr,
        load_factor: 0.8,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&soc, &realized.topology, &sim_cfg);
    let stats = sim.run_for_ns(200_000);

    // Design space and chosen point: identical.
    assert_eq!(report.explored_points, space.points.len());
    assert_eq!(report.point, *point);
    assert_eq!(report.realized_metrics, realized.metrics);
    assert_eq!(report.infeasible_links, realized.infeasible_links.len());

    // Simulation statistics: bit-identical.
    let sim_report = report.sim.as_ref().expect("scenario declares a sim stage");
    assert_eq!(sim_report.stats, stats);

    // Shutdown outcome: identical to driving run_shutdown_scenario by hand
    // on the first gateable island.
    let island = (0..vi.island_count())
        .find(|&j| vi.can_shutdown(j))
        .unwrap();
    let outcome = run_shutdown_scenario(
        &soc,
        &vi,
        &realized.topology,
        &sim_cfg,
        &ShutdownScenario {
            island,
            ..ShutdownScenario::default()
        },
    );
    let shutdown = report.shutdown.as_ref().expect("scenario gates an island");
    assert_eq!(shutdown.island, island);
    assert_eq!(shutdown.outcome, outcome);

    // Frontier: byte-identical to the sweep subsystem's unsharded emission
    // over the same grid (what `sweep run --frontier` writes).
    let grid_cfg = GridConfig {
        max_boost: 0,
        freq_scales: vec![1.0],
        max_intermediate: 4,
    };
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:6", cfg.seed);
    let run = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
    let frontier = frontier_json(&desc, &run);
    assert_eq!(
        report.frontier.as_deref(),
        Some(frontier.as_str()),
        "scenario frontier bytes differ from the sweep CLI's"
    );
}

#[test]
fn typestate_pipeline_matches_the_hand_chained_stages() {
    // The programmatic surface must be exactly as exact as the data-driven
    // one — same stages, same outputs, on a smaller benchmark.
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).unwrap();
    let cfg = SynthesisConfig::default();
    let fp_cfg = FloorplanConfig {
        iterations: 4_000,
        ..FloorplanConfig::default()
    };
    let sim_cfg = SimConfig::default();

    let simulated = Scenario::for_spec(soc.clone(), vi.clone())
        .synthesize(&cfg)
        .unwrap()
        .floorplan(&fp_cfg)
        .simulate(&sim_cfg, 50_000);

    let space = synthesize(&soc, &vi, &cfg).unwrap();
    assert_eq!(*simulated.space(), space);
    let point = space.min_power_point().unwrap();
    let realized = realize_on_floorplan(&soc, &vi, point, &fp_cfg, &cfg);
    assert_eq!(simulated.design().metrics, realized.metrics);
    assert_eq!(simulated.design().topology, realized.topology);
    let mut sim = Simulator::new(&soc, &realized.topology, &sim_cfg);
    assert_eq!(*simulated.stats(), sim.run_for_ns(50_000));
}
