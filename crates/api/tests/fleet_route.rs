//! Scenario sweeps routed through the worker fleet (`sweep_workers`)
//! must emit the same frontier files, byte for byte, as the classic
//! single-process path — for the coarse grid and for the windowed
//! refinement stage.

use vi_noc_api::fleet::{job_payload, ScenarioJobResolver};
use vi_noc_api::{PartitionPlan, RefinePlan, Scenario, SpecSource};
use vi_noc_fleet::JobResolver;
use vi_noc_sweep::{GridConfig, RefineParams};

fn base_scenario() -> Scenario {
    let mut s = Scenario::new(
        "fleet-route",
        SpecSource::Benchmark("d12".into()),
        PartitionPlan::Logical { islands: 4 },
    );
    s.synthesis.parallel = false;
    s.floorplan.iterations = 200;
    s.floorplan.restarts = 1;
    s.sweep = Some(GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.1],
        max_intermediate: 2,
    });
    s
}

fn refined_scenario() -> Scenario {
    let mut s = base_scenario();
    s.refine = Some(RefinePlan {
        grid: GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0, 1.05, 1.1],
            max_intermediate: 2,
        },
        params: RefineParams {
            boost_radius: 1,
            base_radius: 2,
            scale_window: 1.0,
        },
    });
    s
}

#[test]
fn a_fleet_routed_sweep_reproduces_the_direct_frontier_bytes() {
    let direct = base_scenario().run().unwrap().frontier.unwrap();
    let mut fleet = base_scenario();
    fleet.sweep_workers = Some(2);
    let folded = fleet.run().unwrap().frontier.unwrap();
    assert_eq!(folded, direct);
}

#[test]
fn a_fleet_routed_refinement_reproduces_the_direct_frontier_bytes() {
    let direct = refined_scenario().run().unwrap().frontier.unwrap();
    let mut fleet = refined_scenario();
    fleet.sweep_workers = Some(2);
    let folded = fleet.run().unwrap().frontier.unwrap();
    assert_eq!(folded, direct);
}

#[test]
fn job_payloads_resolve_and_malformed_ones_are_rejected() {
    let job = ScenarioJobResolver
        .resolve(&job_payload(&base_scenario(), None))
        .unwrap();
    assert_eq!(job.desc.spec_name, "d12_auto");
    assert_eq!(job.desc.partition, "logical:4");
    assert!(!job.prune);

    let err = ScenarioJobResolver
        .resolve("{\"bogus\":1}")
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, "job payload: unknown member 'bogus'");

    let mut bare = base_scenario();
    bare.sweep = None;
    let err = ScenarioJobResolver
        .resolve(&job_payload(&bare, None))
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, "scenario 'fleet-route' declares no sweep grid");

    // Windows only make sense against a scenario with a refine stage.
    let with_windows = format!(
        "{{\"scenario\":{},\"windows\":[]}}",
        base_scenario().to_json().trim_end()
    );
    let err = ScenarioJobResolver
        .resolve(&with_windows)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(
        err,
        "job payload: 'windows' given but the scenario declares no 'refine' stage"
    );
}
