//! Malformed-input corpus for the `vi-noc-dynsweep-v1` table parser:
//! every fixture under `tests/corpus/` is a real emitted table (a d12
//! single-point dynamic sweep, one free-running and one gated cell) with
//! one deliberate defect, and `parse_table` must reject it with a
//! path-contexted error naming that defect. The two `valid_*` fixtures
//! pin that the corpus base itself still parses — if the format evolves,
//! regenerate the corpus rather than letting the negative cases rot into
//! testing yesterday's format.

use vi_noc_dynsweep::{parse_table, Mode, Provenance};

/// Table fixtures: (name, contents, substring the error must contain).
const CASES: &[(&str, &str, &str)] = &[
    (
        "wrong_format",
        include_str!("corpus/wrong_format.json"),
        "table: format 'vi-noc-dynsweep-v9' is not 'vi-noc-dynsweep-v1'",
    ),
    (
        "bad_mode",
        include_str!("corpus/bad_mode.json"),
        "table: mode 'fuzzy' is not 'exact' or 'clustered'",
    ),
    (
        "truncated_table",
        include_str!("corpus/truncated_table.json"),
        "JSON error at byte",
    ),
    (
        "bad_load_axis",
        include_str!("corpus/bad_load_axis.json"),
        "axes: 'loads' must be a non-empty array of positive finite numbers",
    ),
    (
        "short_signature",
        include_str!("corpus/short_signature.json"),
        "points[0]: 'island_signature' is not a 16-hex-digit string",
    ),
    (
        "cell_out_of_order",
        include_str!("corpus/cell_out_of_order.json"),
        "cells[0]: cell is out of canonical order",
    ),
    (
        "missing_shutdown_stats",
        include_str!("corpus/missing_shutdown_stats.json"),
        "cells[1]: gated cell is missing 'shutdown' stats",
    ),
    (
        "clusters_in_exact",
        include_str!("corpus/clusters_in_exact.json"),
        "table: 'clusters' is not allowed in an exact-mode table",
    ),
    (
        "reused_in_exact",
        include_str!("corpus/reused_in_exact.json"),
        "cells[0]: provenance 'reused' is not allowed in an exact-mode table",
    ),
    (
        "unknown_member",
        include_str!("corpus/unknown_member.json"),
        "table: unknown member 'comment'",
    ),
    (
        "missing_cluster_member",
        include_str!("corpus/missing_cluster_member.json"),
        "cells[0]: missing 'cluster' in a clustered-mode table",
    ),
    (
        "dangling_representative",
        include_str!("corpus/dangling_representative.json"),
        "clusters[1]: representative 9 is outside the 2-cell table",
    ),
];

#[test]
fn the_corpus_base_tables_parse_cleanly() {
    let exact =
        parse_table(include_str!("corpus/valid_exact.json")).expect("valid exact fixture parses");
    assert_eq!(exact.mode, Mode::Exact);
    assert_eq!(exact.cells.len(), 2);
    assert!(exact
        .cells
        .iter()
        .all(|c| c.provenance == Provenance::Exact));

    let clustered = parse_table(include_str!("corpus/valid_clustered.json"))
        .expect("valid clustered fixture parses");
    assert_eq!(clustered.mode, Mode::Clustered);
    assert_eq!(clustered.clusters.len(), 2);
}

#[test]
fn every_malformed_table_is_rejected_with_its_pinned_message() {
    for (name, text, needle) in CASES {
        let err = parse_table(text)
            .map(|_| ())
            .expect_err(&format!("{name}: parsed despite its defect"));
        assert!(
            err.contains(needle),
            "{name}: error {err:?} does not contain {needle:?}"
        );
    }
}
