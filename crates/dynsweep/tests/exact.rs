//! Differential suite for the dynsweep engine: `Mode::Exact` must be
//! byte-identical to the naive per-(point, sim-config) double loop on
//! real and synthetic SoCs, cluster/identity keys must be deterministic
//! functions of their features, and every `reused` cell of a clustered
//! table must cite an in-table representative whose exact identity key is
//! identical to its own.

use proptest::prelude::*;
use vi_noc_core::SynthesisConfig;
use vi_noc_dynsweep::{
    cluster_id, cluster_key, exact_key, load_bucket, parse_table, run_dynsweep, run_naive,
    schedule_canon, DynSweepInput, Mode, Provenance, SimAxes,
};
use vi_noc_sim::{ShutdownScenario, SimConfig, TrafficKind};
use vi_noc_soc::{benchmarks, generate_synthetic, partition, SocSpec, SyntheticConfig};
use vi_noc_sweep::{
    frontier_json, parse_frontier_file, run_shard, GridConfig, GridDescriptor, ParsedFrontier,
    Shard, SweepGrid,
};

/// Sweeps `spec` at `islands`, builds the frontier file, and returns
/// everything `run_dynsweep` needs.
fn fixture(
    spec: SocSpec,
    islands: usize,
) -> (
    SocSpec,
    vi_noc_soc::ViAssignment,
    SynthesisConfig,
    SweepGrid,
    ParsedFrontier,
    String,
) {
    let vi = partition::logical_partition(&spec, islands).unwrap();
    let cfg = SynthesisConfig::default();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 2,
    };
    let grid = SweepGrid::build(&spec, &vi, &cfg, &grid_cfg);
    let tag = format!("logical:{islands}");
    let desc = GridDescriptor::for_grid(&grid, spec.name(), &tag, cfg.seed);
    let run = run_shard(&spec, &vi, &grid, Shard::full(), &cfg);
    let frontier = parse_frontier_file(&frontier_json(&desc, &run)).unwrap();
    (spec, vi, cfg, grid, frontier, tag)
}

/// A schedule gating the first shutdown-capable island, if any.
fn gating_schedule(vi: &vi_noc_soc::ViAssignment) -> Option<ShutdownScenario> {
    (0..vi.island_count())
        .find(|&i| vi.can_shutdown(i))
        .map(|island| ShutdownScenario {
            island,
            stop_at_ns: 2_000,
            drain_ns: 1_500,
            post_gate_ns: 3_000,
        })
}

/// Exact-mode bytes equal the naive double loop's, for one fixture.
fn assert_exact_is_naive(spec: SocSpec, islands: usize, axes: &SimAxes) {
    let (spec, vi, cfg, grid, frontier, tag) = fixture(spec, islands);
    let input = DynSweepInput {
        spec: &spec,
        vi: &vi,
        cfg: &cfg,
        sim: &SimConfig::default(),
        grid: &grid,
        partition: &tag,
        frontier: &frontier,
    };
    let naive = run_naive(&input, axes).unwrap();
    let run = run_dynsweep(&input, axes, Mode::Exact).unwrap();
    assert_eq!(
        run.table.as_bytes(),
        naive.as_bytes(),
        "exact mode diverged from the naive double loop for {}",
        spec.name()
    );
    let parsed = parse_table(&run.table).unwrap();
    assert_eq!(parsed.cells.len(), run.cells);
    assert!(parsed
        .cells
        .iter()
        .all(|c| c.provenance == Provenance::Exact));
}

#[test]
fn exact_mode_is_the_naive_double_loop_on_d12() {
    let axes = SimAxes {
        loads: vec![0.5, 0.9, 1.2],
        traffic: vec![TrafficKind::Cbr, TrafficKind::Poisson],
        schedules: vec![None],
        horizon_ns: 4_000,
    };
    assert_exact_is_naive(benchmarks::d12_auto(), 4, &axes);
}

#[test]
fn exact_mode_is_the_naive_double_loop_under_gating() {
    let spec = benchmarks::d12_auto();
    let vi = partition::logical_partition(&spec, 4).unwrap();
    let sched = gating_schedule(&vi).expect("d12 at 4 islands has a gateable island");
    let axes = SimAxes {
        loads: vec![0.7],
        traffic: vec![TrafficKind::Cbr],
        schedules: vec![None, Some(sched)],
        horizon_ns: 6_000,
    };
    assert_exact_is_naive(spec, 4, &axes);
}

#[test]
fn exact_mode_is_the_naive_double_loop_on_synthetic_socs() {
    for (n_cores, seed, islands) in [(8, 11, 2), (14, 7, 3)] {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        });
        let axes = SimAxes {
            loads: vec![0.6, 1.1],
            traffic: vec![TrafficKind::Poisson],
            schedules: vec![None],
            horizon_ns: 4_000,
        };
        assert_exact_is_naive(spec, islands, &axes);
    }
}

#[test]
fn reused_cells_cite_an_in_table_representative_with_an_identical_exact_key() {
    // A duplicated load value forces exact-key collisions: the duplicate
    // cells must come back `reused`, never re-simulated.
    let (spec, vi, cfg, grid, frontier, tag) = fixture(benchmarks::d12_auto(), 4);
    let input = DynSweepInput {
        spec: &spec,
        vi: &vi,
        cfg: &cfg,
        sim: &SimConfig::default(),
        grid: &grid,
        partition: &tag,
        frontier: &frontier,
    };
    let axes = SimAxes {
        loads: vec![0.7, 0.7, 1.2],
        traffic: vec![TrafficKind::Cbr],
        schedules: vec![None],
        horizon_ns: 4_000,
    };
    let run = run_dynsweep(&input, &axes, Mode::Clustered).unwrap();
    assert!(run.reused > 0, "duplicated loads produced no reused cells");
    let table = parse_table(&run.table).unwrap();

    for (i, cell) in table.cells.iter().enumerate() {
        let Provenance::Reused(id) = &cell.provenance else {
            continue;
        };
        // The cited cluster exists and the cell belongs to it.
        let cluster = table
            .clusters
            .iter()
            .find(|c| &c.id == id)
            .unwrap_or_else(|| panic!("cells[{i}] cites unknown cluster {id}"));
        assert_eq!(cell.cluster.as_ref(), Some(id), "cells[{i}]");
        // The representative is an in-table simulated cell...
        let rep = &table.cells[cluster.representative];
        assert_eq!(rep.provenance, Provenance::Exact, "cells[{i}]'s rep");
        // ...with an identical exact identity key: same design point, and
        // bit-equal sim config on every axis the key hashes.
        assert_eq!(rep.point, cell.point, "cells[{i}]");
        assert_eq!(rep.load.to_bits(), cell.load.to_bits(), "cells[{i}]");
        assert_eq!(rep.traffic, cell.traffic, "cells[{i}]");
        assert_eq!(
            schedule_canon(&table.axes.schedules[rep.schedule]),
            schedule_canon(&table.axes.schedules[cell.schedule]),
            "cells[{i}]"
        );
        // Identical exact keys mean identical simulations: stats match.
        assert_eq!(rep.stats, cell.stats, "cells[{i}]");
    }

    // Bounded cells are the complement: their reuse crossed exact keys,
    // and each carries a strictly positive bound.
    for (i, cell) in table.cells.iter().enumerate() {
        if let Provenance::Bounded(bound) = cell.provenance {
            assert!(bound > 0.0, "cells[{i}]: bound {bound} is not positive");
        }
    }
}

fn arb_schedule() -> impl Strategy<Value = Option<ShutdownScenario>> {
    (0usize..3, 0usize..4, 1u64..10_000).prop_map(|(pick, island, stop)| {
        (pick != 0).then_some(ShutdownScenario {
            island,
            stop_at_ns: stop,
            drain_ns: stop / 2 + 1,
            post_gate_ns: stop + 500,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cluster and exact keys are pure functions of their features:
    /// rebuilding from the same inputs yields the same strings, loads in
    /// the same bucket cluster together, and any differing feature splits
    /// the cluster key.
    #[test]
    fn keys_are_deterministic_functions_of_their_features(
        sig in 0u64..u64::MAX,
        fp in 0u64..u64::MAX,
        load_a in 0.05f64..2.0,
        load_b in 0.05f64..2.0,
        poisson in proptest::bool::ANY,
        sched in arb_schedule(),
        point_tag in 0u64..u64::MAX,
    ) {
        let point_json = format!("{{\"chain_id\":{point_tag}}}");
        let traffic = if poisson { TrafficKind::Poisson } else { TrafficKind::Cbr };
        let key = cluster_key(sig, fp, load_a, traffic, &sched);
        prop_assert_eq!(&key, &cluster_key(sig, fp, load_a, traffic, &sched));
        prop_assert_eq!(cluster_id(&key), cluster_id(&key));
        prop_assert_eq!(cluster_id(&key).len(), 16);
        prop_assert!(cluster_id(&key).chars().all(|c| c.is_ascii_hexdigit()));

        // Same-bucket loads share the key; different buckets never do.
        let other = cluster_key(sig, fp, load_b, traffic, &sched);
        prop_assert_eq!(
            key == other,
            load_bucket(load_a) == load_bucket(load_b),
            "buckets {} vs {}", load_bucket(load_a), load_bucket(load_b)
        );
        // Any differing structural feature splits the key.
        prop_assert_ne!(&key, &cluster_key(sig ^ 1, fp, load_a, traffic, &sched));
        prop_assert_ne!(&key, &cluster_key(sig, fp ^ 1, load_a, traffic, &sched));

        // Exact keys are deterministic and sensitive to the point identity.
        let ek = exact_key(&point_json, load_a, traffic, &sched);
        prop_assert_eq!(&ek, &exact_key(&point_json, load_a, traffic, &sched));
        let other_point = format!("{point_json}x");
        prop_assert_ne!(&ek, &exact_key(&other_point, load_a, traffic, &sched));
    }
}
