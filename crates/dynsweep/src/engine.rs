//! The dynamic-sweep engine: regenerate frontier points, enumerate the
//! cell grid, cluster, simulate representatives, emit the result table.

use crate::axes::{Mode, SimAxes};
use crate::cluster::{cluster_id, cluster_key, error_bound, exact_key};
use crate::table::{write_table, CellStats, ClusterRec, Provenance, TableCellRec, TablePoint};
use rayon::prelude::*;
use std::collections::HashMap;
use vi_noc_core::{
    design_point_json, flow_fingerprint, island_signature, DesignPoint, SynthesisConfig,
};
use vi_noc_sim::{measured_power, run_dynamic_cell, SimConfig};
use vi_noc_soc::{SocSpec, ViAssignment};
use vi_noc_sweep::json::Value;
use vi_noc_sweep::{entry_coords, regenerate_point, GridDescriptor, ParsedFrontier, SweepGrid};

/// Everything a dynamic sweep runs against. The grid must be the **full**
/// (unwindowed) grid of the scenario the frontier came from — refined
/// frontiers regenerate correctly against it because windowing never
/// renumbers chains.
pub struct DynSweepInput<'a> {
    /// The SoC being swept.
    pub spec: &'a SocSpec,
    /// Its voltage-island partition.
    pub vi: &'a ViAssignment,
    /// The synthesis config the sweep ran under (seed, α, technology,
    /// `parallel` — which also gates the rayon fan-out here).
    pub cfg: &'a SynthesisConfig,
    /// Base sim config; each cell overrides `load_factor` and `traffic`.
    pub sim: &'a SimConfig,
    /// The scenario's full sweep grid.
    pub grid: &'a SweepGrid,
    /// Partition tag of the scenario (e.g. `logical:6`) — part of the
    /// grid-descriptor cross-check.
    pub partition: &'a str,
    /// The parsed merged frontier whose points are swept.
    pub frontier: &'a ParsedFrontier,
}

/// Result of one dynamic sweep: the serialized table plus counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynSweepRun {
    /// The `vi-noc-dynsweep-v1` result table, byte-deterministic.
    pub table: String,
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells actually simulated (cluster/dedup representatives).
    pub simulated: usize,
    /// Cells that reused a representative with an identical exact key.
    pub reused: usize,
    /// Cells that reused a representative across differing exact keys.
    pub bounded: usize,
}

/// One regenerated frontier point with its precomputed cell features.
struct PointMeta {
    ordinal: u64,
    chain_id: u64,
    power_mw: f64,
    latency_cycles: f64,
    island_sig: u64,
    flow_fp: u64,
    point_json: String,
    point: DesignPoint,
}

/// Checks the frontier's embedded grid descriptor against the scenario's
/// grid, ignoring refinement windows (a refined frontier is a valid sweep
/// source for the full grid it was refined from).
fn check_grid(input: &DynSweepInput) -> Result<(), String> {
    let expect = GridDescriptor::for_grid(
        input.grid,
        input.spec.name(),
        input.partition,
        input.cfg.seed,
    );
    debug_assert!(expect.windows.is_empty(), "dynsweep grids are unwindowed");
    let actual = match &input.frontier.grid {
        Value::Obj(members) => Value::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "windows")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    if actual.to_json() != expect.to_json() {
        return Err("frontier grid does not match the scenario's grid".to_string());
    }
    Ok(())
}

/// Regenerates every frontier point and cross-checks its metrics bit-wise
/// against the entry's recorded key fields.
fn regenerate_points(input: &DynSweepInput) -> Result<Vec<PointMeta>, String> {
    let flow_fp = flow_fingerprint(input.spec);
    let make = |i: usize, value: &Value| -> Result<PointMeta, String> {
        let coords = entry_coords(value).map_err(|e| format!("frontier[{i}]: {e}"))?;
        let point = regenerate_point(
            input.spec,
            input.vi,
            input.grid,
            input.cfg,
            coords.chain_id,
            coords.ordinal,
        )
        .map_err(|e| format!("frontier[{i}]: {e}"))?;
        let power = point.metrics.noc_dynamic_power().mw();
        let latency = point.metrics.avg_latency_cycles;
        if power.to_bits() != coords.power_mw.to_bits()
            || latency.to_bits() != coords.latency_cycles.to_bits()
        {
            return Err(format!(
                "frontier[{i}]: regenerated point does not match the frontier entry — \
                 is this frontier from a different scenario?"
            ));
        }
        Ok(PointMeta {
            ordinal: coords.ordinal,
            chain_id: coords.chain_id,
            power_mw: coords.power_mw,
            latency_cycles: coords.latency_cycles,
            island_sig: island_signature(&point.topology),
            flow_fp,
            point_json: design_point_json(&point),
            point,
        })
    };
    let indexed: Vec<(usize, &Value)> = input
        .frontier
        .entries
        .iter()
        .enumerate()
        .map(|(i, (_, v))| (i, v))
        .collect();
    if input.cfg.parallel {
        indexed.par_iter().map(|&(i, v)| make(i, v)).collect()
    } else {
        indexed.iter().map(|&(i, v)| make(i, v)).collect()
    }
}

/// One cell of the canonical grid, with precomputed identity keys.
struct CellSpec {
    point: usize,
    load_i: usize,
    traffic_i: usize,
    sched_i: usize,
    exact: String,
    cluster: String,
}

/// Enumerates cells in canonical order: point-major, then load, traffic,
/// schedule — the order every table's `cells` array uses.
fn enumerate_cells(points: &[PointMeta], axes: &SimAxes) -> Vec<CellSpec> {
    let mut cells = Vec::with_capacity(points.len() * axes.cells_per_point());
    for (p, meta) in points.iter().enumerate() {
        for (li, &load) in axes.loads.iter().enumerate() {
            for (ti, &traffic) in axes.traffic.iter().enumerate() {
                for (si, sched) in axes.schedules.iter().enumerate() {
                    cells.push(CellSpec {
                        point: p,
                        load_i: li,
                        traffic_i: ti,
                        sched_i: si,
                        exact: exact_key(&meta.point_json, load, traffic, sched),
                        cluster: cluster_key(meta.island_sig, meta.flow_fp, load, traffic, sched),
                    });
                }
            }
        }
    }
    cells
}

/// Simulates one cell and measures its stats.
fn simulate_cell(
    input: &DynSweepInput,
    axes: &SimAxes,
    points: &[PointMeta],
    cell: &CellSpec,
) -> CellStats {
    let meta = &points[cell.point];
    let mut sc = input.sim.clone();
    sc.load_factor = axes.loads[cell.load_i];
    sc.traffic = axes.traffic[cell.traffic_i];
    let outcome = run_dynamic_cell(
        input.spec,
        input.vi,
        &meta.point.topology,
        &sc,
        axes.horizon_ns,
        axes.schedules[cell.sched_i].as_ref(),
    );
    let power_mw = measured_power(
        input.spec,
        &meta.point.topology,
        input.cfg,
        &outcome.stats,
        sc.packet_bytes as f64,
    )
    .fig2_power()
    .mw();
    CellStats {
        injected: outcome.stats.total_injected_packets(),
        delivered: outcome.stats.total_delivered_packets(),
        avg_latency_ps: outcome.stats.avg_latency_ps().unwrap_or(0.0),
        power_mw,
        shutdown: outcome.shutdown,
    }
}

/// Simulates the cells at `idxs` (rayon fan-out when the synthesis config
/// says `parallel`), preserving order.
fn simulate_many(
    input: &DynSweepInput,
    axes: &SimAxes,
    points: &[PointMeta],
    cells: &[CellSpec],
    idxs: &[usize],
) -> Vec<CellStats> {
    if input.cfg.parallel {
        idxs.par_iter()
            .map(|&i| simulate_cell(input, axes, points, &cells[i]))
            .collect()
    } else {
        idxs.iter()
            .map(|&i| simulate_cell(input, axes, points, &cells[i]))
            .collect()
    }
}

fn table_points(points: &[PointMeta]) -> Vec<TablePoint> {
    points
        .iter()
        .map(|m| TablePoint {
            ordinal: m.ordinal,
            chain_id: m.chain_id,
            power_mw: m.power_mw,
            latency_cycles: m.latency_cycles,
            island_sig: m.island_sig,
            flow_fp: m.flow_fp,
        })
        .collect()
}

fn prepare(
    input: &DynSweepInput,
    axes: &SimAxes,
) -> Result<(Vec<PointMeta>, Vec<CellSpec>), String> {
    axes.validate(input.vi)?;
    check_grid(input)?;
    let points = regenerate_points(input)?;
    let cells = enumerate_cells(&points, axes);
    Ok((points, cells))
}

/// The reference double loop: simulate **every** cell fresh, no sharing
/// of any kind, and emit an exact-mode table. This is the oracle
/// [`Mode::Exact`] is byte-identical to (`tests/exact.rs` pins it); it
/// exists to be slow and obviously correct.
///
/// # Errors
///
/// Invalid axes, a frontier/grid mismatch, or a frontier entry that does
/// not regenerate to its recorded metrics.
pub fn run_naive(input: &DynSweepInput, axes: &SimAxes) -> Result<String, String> {
    let (points, cells) = prepare(input, axes)?;
    let all: Vec<usize> = (0..cells.len()).collect();
    let stats = simulate_many(input, axes, &points, &cells, &all);
    let recs: Vec<TableCellRec> = cells
        .iter()
        .zip(stats)
        .map(|(c, s)| TableCellRec {
            point: c.point,
            load: axes.loads[c.load_i],
            traffic: axes.traffic[c.traffic_i],
            schedule: c.sched_i,
            cluster: None,
            provenance: Provenance::Exact,
            stats: s,
        })
        .collect();
    Ok(write_table(
        Mode::Exact,
        input.spec.name(),
        axes,
        &table_points(&points),
        &recs,
        None,
    ))
}

/// Runs the dynamic sweep.
///
/// [`Mode::Exact`]: cells are grouped by *exact identity key* (full
/// serialized design point + precise sim config); one representative per
/// group is simulated and its stats copied to the group — which is
/// invisible in the output, because equal exact keys mean bit-identical
/// simulations. The emitted table is byte-identical to [`run_naive`]'s.
///
/// [`Mode::Clustered`]: cells are grouped by [`cluster_key`]
/// (traffic-relevant features only); one representative per cluster is
/// simulated. Members whose exact key matches the representative's are
/// marked `reused` (zero error); the rest are marked `bounded` with a
/// conservative relative error bound. Stats are only ever copied within a
/// cluster — reuse across differing cluster keys cannot be expressed.
///
/// # Errors
///
/// Invalid axes, a frontier/grid mismatch, or a frontier entry that does
/// not regenerate to its recorded metrics.
pub fn run_dynsweep(
    input: &DynSweepInput,
    axes: &SimAxes,
    mode: Mode,
) -> Result<DynSweepRun, String> {
    let (points, cells) = prepare(input, axes)?;

    // Group cells by identity: the exact key in exact mode, the cluster
    // key in clustered mode. `rep_of_cell[i]` indexes into `reps`.
    let mut groups: HashMap<&str, usize> = HashMap::new();
    let mut reps: Vec<usize> = Vec::new();
    let mut rep_of_cell: Vec<usize> = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let key = match mode {
            Mode::Exact => cell.exact.as_str(),
            Mode::Clustered => cell.cluster.as_str(),
        };
        let g = *groups.entry(key).or_insert_with(|| {
            reps.push(i);
            reps.len() - 1
        });
        rep_of_cell.push(g);
    }
    let rep_stats = simulate_many(input, axes, &points, &cells, &reps);

    let mut reused = 0usize;
    let mut bounded = 0usize;
    let recs: Vec<TableCellRec> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let g = rep_of_cell[i];
            let rep = &cells[reps[g]];
            let (cluster, provenance) = match mode {
                Mode::Exact => (None, Provenance::Exact),
                Mode::Clustered => {
                    let id = cluster_id(&cell.cluster);
                    let prov = if reps[g] == i {
                        Provenance::Exact
                    } else if cell.exact == rep.exact {
                        reused += 1;
                        Provenance::Reused(id.clone())
                    } else {
                        bounded += 1;
                        let pm = &points[cell.point];
                        let rm = &points[rep.point];
                        Provenance::Bounded(error_bound(
                            axes.loads[cell.load_i],
                            axes.loads[rep.load_i],
                            pm.power_mw,
                            rm.power_mw,
                            pm.latency_cycles,
                            rm.latency_cycles,
                        ))
                    };
                    (Some(id), prov)
                }
            };
            TableCellRec {
                point: cell.point,
                load: axes.loads[cell.load_i],
                traffic: axes.traffic[cell.traffic_i],
                schedule: cell.sched_i,
                cluster,
                provenance,
                stats: rep_stats[g].clone(),
            }
        })
        .collect();

    let clusters: Option<Vec<ClusterRec>> = match mode {
        Mode::Exact => None,
        Mode::Clustered => Some(
            reps.iter()
                .map(|&i| ClusterRec {
                    id: cluster_id(&cells[i].cluster),
                    key: cells[i].cluster.clone(),
                    representative: i,
                })
                .collect(),
        ),
    };

    let table = write_table(
        mode,
        input.spec.name(),
        axes,
        &table_points(&points),
        &recs,
        clusters.as_deref(),
    );
    Ok(DynSweepRun {
        table,
        cells: cells.len(),
        simulated: reps.len(),
        reused,
        bounded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::parse_table;
    use vi_noc_sim::TrafficKind;
    use vi_noc_soc::{benchmarks, partition};
    use vi_noc_sweep::{frontier_json, parse_frontier_file, run_shard, GridConfig, Shard};

    fn setup() -> (
        vi_noc_soc::SocSpec,
        ViAssignment,
        SynthesisConfig,
        SweepGrid,
        String,
    ) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let cfg = SynthesisConfig::default();
        let grid_cfg = GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0],
            max_intermediate: 2,
        };
        let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
        let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
        let run = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
        let file = frontier_json(&desc, &run);
        (soc, vi, cfg, grid, file)
    }

    fn axes() -> SimAxes {
        SimAxes {
            loads: vec![0.5, 0.9],
            traffic: vec![TrafficKind::Cbr],
            schedules: vec![None],
            horizon_ns: 4_000,
        }
    }

    #[test]
    fn exact_mode_matches_the_naive_double_loop_and_parses() {
        let (soc, vi, cfg, grid, file) = setup();
        let frontier = parse_frontier_file(&file).unwrap();
        let input = DynSweepInput {
            spec: &soc,
            vi: &vi,
            cfg: &cfg,
            sim: &SimConfig::default(),
            grid: &grid,
            partition: "logical:4",
            frontier: &frontier,
        };
        let axes = axes();
        let naive = run_naive(&input, &axes).unwrap();
        let run = run_dynsweep(&input, &axes, Mode::Exact).unwrap();
        assert_eq!(run.table, naive);
        let parsed = parse_table(&run.table).unwrap();
        assert_eq!(parsed.cells.len(), run.cells);
        assert!(run.simulated <= run.cells);
        assert_eq!(run.reused + run.bounded, 0);
    }

    #[test]
    fn clustered_mode_reuses_within_clusters_only() {
        let (soc, vi, cfg, grid, file) = setup();
        let frontier = parse_frontier_file(&file).unwrap();
        let input = DynSweepInput {
            spec: &soc,
            vi: &vi,
            cfg: &cfg,
            sim: &SimConfig::default(),
            grid: &grid,
            partition: "logical:4",
            frontier: &frontier,
        };
        let axes = axes();
        let run = run_dynsweep(&input, &axes, Mode::Clustered).unwrap();
        let parsed = parse_table(&run.table).unwrap();
        assert_eq!(run.simulated, parsed.clusters.len());
        assert_eq!(run.cells, parsed.cells.len());
        // Loads 0.5 and 0.9 share a bucket, so each point's two cells
        // cluster together: at most one simulation per (point, cluster).
        assert!(run.simulated < run.cells);
        assert!(run.bounded > 0, "0.5 vs 0.9 differ in exact key");
    }

    #[test]
    fn mismatched_frontier_is_refused() {
        let (soc, vi, cfg, grid, file) = setup();
        let frontier = parse_frontier_file(&file).unwrap();
        let input = DynSweepInput {
            spec: &soc,
            vi: &vi,
            cfg: &cfg,
            sim: &SimConfig::default(),
            grid: &grid,
            partition: "logical:6", // wrong tag
            frontier: &frontier,
        };
        let err = run_naive(&input, &axes()).unwrap_err();
        assert_eq!(err, "frontier grid does not match the scenario's grid");
    }
}
