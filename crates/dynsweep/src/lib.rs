//! Dynamic-sweep subsystem: cluster-and-prune simulation sweeps over
//! frontier design points.
//!
//! The paper's dynamic results (power and latency under varying load
//! factors, traffic kinds, and shutdown schedules) need every surviving
//! frontier design point simulated against a multiplicative grid of sim
//! configs — a `|frontier| × |loads| × |traffic| × |schedules|` cost wall.
//! This crate makes that tractable the same way the rest of the workspace
//! scales: *exactly by construction*, with approximation opt-in and
//! error-bounded.
//!
//! * [`SimAxes`] — the declarative sim grid: load factors × traffic kinds
//!   × shutdown schedules (plus the free-run horizon).
//! * Cluster keys — every `(design point, sim config)` cell is keyed by
//!   its traffic-relevant features: the island-topology signature and
//!   flow-matrix fingerprint ([`vi_noc_core::island_signature`] /
//!   [`vi_noc_core::flow_fingerprint`]), the load-factor bucket, the
//!   traffic kind, and the shutdown-schedule hash. See [`cluster_key`].
//! * [`run_dynsweep`] — the engine. In [`Mode::Exact`], clustering is used
//!   only to schedule and deduplicate cells whose *exact identity keys*
//!   coincide, so the emitted table is **byte-identical** to the naive
//!   per-cell double loop ([`run_naive`], pinned by
//!   `tests/exact.rs`). In [`Mode::Clustered`], one representative per
//!   cluster is simulated (rayon fan-out) and every other member reuses
//!   its stats: `reused` when the member's exact key matches the
//!   representative's (zero error), `bounded(err)` otherwise, with a
//!   conservative reported bound — and reuse across differing cluster
//!   keys is refused by construction.
//! * [`parse_table`] — the strict parser of the byte-deterministic
//!   `vi-noc-dynsweep-v1` result table, with pinned, path-contexted
//!   errors (see `tests/corpus.rs`).
//!
//! Frontier ingestion reuses the sweep crate's parsed frontier files;
//! design points are regenerated bit-exactly from their chain coordinates
//! via [`vi_noc_sweep::regenerate_point`] (there is no topology parser —
//! determinism *is* the deserializer).

#![warn(missing_docs)]

mod axes;
mod cluster;
mod engine;
mod table;

pub use axes::{schedule_canon, schedule_json, Mode, SimAxes};
pub use cluster::{cluster_id, cluster_key, error_bound, exact_key, load_bucket, schedule_hash};
pub use engine::{run_dynsweep, run_naive, DynSweepInput, DynSweepRun};
pub use table::{
    parse_table, ParsedCell, ParsedCluster, ParsedPoint, ParsedShutdown, ParsedStats, ParsedTable,
    Provenance, TABLE_FORMAT,
};
