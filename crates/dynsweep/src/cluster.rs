//! Identity and cluster keys of `(design point, sim config)` cells, and
//! the conservative error bound reported on cross-key reuse.

use crate::axes::schedule_canon;
use vi_noc_core::{fnv1a64, json_number};
use vi_noc_sim::{ShutdownScenario, TrafficKind};

/// Load-factor buckets per unit load: 2 means half-width buckets, so
/// loads 0.5 and 0.9 share a bucket while 1.2 sits in the next one.
const LOAD_BUCKETS_PER_UNIT: f64 = 2.0;

/// Weight of the load-factor gap in [`error_bound`]. Delivered traffic is
/// roughly proportional to offered load below saturation, and latency
/// grows superlinearly near it — the relative load gap enters with a
/// generous multiplier to stay conservative on both.
const LOAD_SENSITIVITY: f64 = 3.0;

/// Weight of the analytic power/latency gaps in [`error_bound`].
const METRIC_SENSITIVITY: f64 = 2.0;

/// Flat model margin of [`error_bound`]: covers simulator effects no
/// analytic feature predicts (queueing noise between structural
/// neighbours, drain-phase differences under gating).
const MODEL_MARGIN: f64 = 0.5;

/// The load-factor bucket of the cluster key.
pub fn load_bucket(load: f64) -> u64 {
    (load * LOAD_BUCKETS_PER_UNIT).floor() as u64
}

/// FNV-1a hash of a schedule-axis entry's canonical form.
pub fn schedule_hash(s: &Option<ShutdownScenario>) -> u64 {
    fnv1a64(schedule_canon(s).as_bytes())
}

/// The exact identity key of one cell: the full serialized design point
/// plus the cell's precise sim config. Two cells with equal exact keys
/// run bit-identical simulations, so deduplicating them is invisible in
/// the output — that is the whole license [`crate::Mode::Exact`] uses.
pub fn exact_key(
    point_json: &str,
    load: f64,
    traffic: TrafficKind,
    schedule: &Option<ShutdownScenario>,
) -> String {
    format!(
        "{point_json}|load={}|traffic={traffic}|sched={}",
        json_number(load),
        schedule_canon(schedule)
    )
}

/// The cluster key of one cell: traffic-relevant features only — the
/// island-topology signature and flow-matrix fingerprint of the design
/// point, the load bucket, the traffic kind, and the schedule hash.
///
/// Design points differing only in intermediate-island structure (and
/// loads within the same bucket) share a key; everything the simulator is
/// structurally sensitive to splits it.
pub fn cluster_key(
    island_signature: u64,
    flow_fingerprint: u64,
    load: f64,
    traffic: TrafficKind,
    schedule: &Option<ShutdownScenario>,
) -> String {
    format!(
        "island_sig:{island_signature:016x}|flows:{flow_fingerprint:016x}|load_bucket:{}|traffic:{traffic}|sched:{:016x}",
        load_bucket(load),
        schedule_hash(schedule)
    )
}

/// The 16-hex-digit cluster id of a cluster key.
pub fn cluster_id(key: &str) -> String {
    format!("{:016x}", fnv1a64(key.as_bytes()))
}

fn rel(a: f64, b: f64) -> f64 {
    let m = a.abs().max(b.abs());
    if m == 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

/// The conservative relative error bound reported on a `bounded` cell:
/// how far the representative's measured stats may deviate, relatively,
/// from what an exact simulation of this cell would measure.
///
/// Built from the *analytic* gaps between the cell and its
/// representative — load factor, zero-load dynamic power, zero-load
/// latency — each entering with a sensitivity multiplier, plus a flat
/// model margin. Heuristically conservative, not proven: the
/// `dynsweep-smoke` CI job empirically verifies `bound >= observed
/// deviation` on every bounded cell of the committed scenario, and
/// determinism makes that check permanent once green.
pub fn error_bound(
    load: f64,
    rep_load: f64,
    power_mw: f64,
    rep_power_mw: f64,
    latency_cycles: f64,
    rep_latency_cycles: f64,
) -> f64 {
    LOAD_SENSITIVITY * rel(load, rep_load)
        + METRIC_SENSITIVITY * rel(power_mw, rep_power_mw)
        + METRIC_SENSITIVITY * rel(latency_cycles, rep_latency_cycles)
        + MODEL_MARGIN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_feature_sensitive() {
        let none = None;
        let gate = Some(ShutdownScenario {
            island: 1,
            stop_at_ns: 2_000,
            drain_ns: 1_500,
            post_gate_ns: 3_000,
        });
        let k1 = cluster_key(1, 2, 0.5, TrafficKind::Cbr, &none);
        assert_eq!(k1, cluster_key(1, 2, 0.5, TrafficKind::Cbr, &none));
        // Same bucket: 0.5 and 0.9 cluster together.
        assert_eq!(k1, cluster_key(1, 2, 0.9, TrafficKind::Cbr, &none));
        // Everything else splits the key.
        assert_ne!(k1, cluster_key(1, 2, 1.2, TrafficKind::Cbr, &none));
        assert_ne!(k1, cluster_key(1, 2, 0.5, TrafficKind::Poisson, &none));
        assert_ne!(k1, cluster_key(1, 2, 0.5, TrafficKind::Cbr, &gate));
        assert_ne!(k1, cluster_key(3, 2, 0.5, TrafficKind::Cbr, &none));
        assert_ne!(k1, cluster_key(1, 4, 0.5, TrafficKind::Cbr, &none));
        // Ids are 16 hex digits.
        assert_eq!(cluster_id(&k1).len(), 16);
    }

    #[test]
    fn error_bound_is_positive_and_monotone_in_the_load_gap() {
        let near = error_bound(0.5, 0.5, 10.0, 10.0, 4.0, 4.0);
        let far = error_bound(0.5, 0.9, 10.0, 10.0, 4.0, 4.0);
        assert!(near >= MODEL_MARGIN);
        assert!(far > near);
    }
}
