//! The `vi-noc-dynsweep-v1` result-table format: a byte-deterministic
//! writer and a strict parser with pinned, path-contexted errors.
//!
//! The layout follows the sweep checkpoint convention — top-level members
//! one per line, array entries one per line, compact entries with fixed
//! key order and shortest-round-trip numbers — so `cmp` against a golden
//! file is a meaningful regression oracle and exact-vs-naive byte
//! identity is well-defined.

use crate::axes::{Mode, SimAxes};
use std::fmt::Write as _;
use vi_noc_core::{json_number, json_string};
use vi_noc_sim::{CellShutdown, ShutdownScenario, TrafficKind};
use vi_noc_sweep::json::{self, Value};

/// `format` tag of dynamic-sweep result tables.
pub const TABLE_FORMAT: &str = "vi-noc-dynsweep-v1";

/// Per-cell provenance: how the cell's stats were obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// The cell was simulated (or is byte-equal to a simulated cell by
    /// exact-key identity in exact mode, where dedup is invisible).
    Exact,
    /// Stats copied from the named cluster's representative, whose exact
    /// identity key matches this cell's — zero error.
    Reused(String),
    /// Stats copied from the cluster representative across differing
    /// exact keys; the payload is the conservative relative error bound.
    Bounded(f64),
}

/// One row of the `points` table (a frontier design point).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPoint {
    /// Global candidate ordinal in the sweep grid.
    pub ordinal: u64,
    /// Chain that produced the point.
    pub chain_id: u64,
    /// Zero-load dynamic power, mW.
    pub power_mw: f64,
    /// Zero-load average latency, cycles.
    pub latency_cycles: f64,
    /// Island-topology signature (16 hex digits).
    pub island_signature: u64,
    /// Flow-matrix fingerprint (16 hex digits).
    pub flow_fingerprint: u64,
}

/// Shutdown-phase stats of a gated cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedShutdown {
    /// `true` iff the island drained within budget and was gated.
    pub drained_cleanly: bool,
    /// Survivor packets delivered before the gate point.
    pub survivors_before: u64,
    /// Survivor packets delivered after the gate point.
    pub survivors_after: u64,
}

/// Measured statistics of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedStats {
    /// Packets injected over the run.
    pub injected: u64,
    /// Packets delivered over the run.
    pub delivered: u64,
    /// Mean packet latency, ps (0 when nothing was delivered).
    pub avg_latency_ps: f64,
    /// Measured NoC dynamic power (paper Figure-2 scope), mW.
    pub power_mw: f64,
    /// Shutdown-phase stats; present iff the cell is gated.
    pub shutdown: Option<ParsedShutdown>,
}

/// One cell of the result table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Index into the `points` table.
    pub point: usize,
    /// The cell's load factor (an axis value).
    pub load: f64,
    /// The cell's traffic kind.
    pub traffic: TrafficKind,
    /// Index into the schedule axis.
    pub schedule: usize,
    /// The cell's cluster id (clustered-mode tables only).
    pub cluster: Option<String>,
    /// How the stats were obtained.
    pub provenance: Provenance,
    /// The stats themselves.
    pub stats: ParsedStats,
}

/// One row of the `clusters` table (clustered mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCluster {
    /// 16-hex-digit cluster id.
    pub id: String,
    /// The full cluster key the id hashes.
    pub key: String,
    /// Cell index of the simulated representative.
    pub representative: usize,
}

/// A parsed and validated dynamic-sweep result table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTable {
    /// The engine mode that produced the table.
    pub mode: Mode,
    /// Benchmark/spec name.
    pub spec_name: String,
    /// The sim-axis grid.
    pub axes: SimAxes,
    /// Frontier design points, in frontier order.
    pub points: Vec<ParsedPoint>,
    /// Cells in canonical order (point-major, then load, traffic,
    /// schedule).
    pub cells: Vec<ParsedCell>,
    /// Clusters, in order of first appearance (empty in exact mode).
    pub clusters: Vec<ParsedCluster>,
}

// ---------------------------------------------------------------- writer

/// Writer-side row of the `points` table.
#[derive(Debug, Clone)]
pub(crate) struct TablePoint {
    pub ordinal: u64,
    pub chain_id: u64,
    pub power_mw: f64,
    pub latency_cycles: f64,
    pub island_sig: u64,
    pub flow_fp: u64,
}

/// Writer-side cell stats.
#[derive(Debug, Clone)]
pub(crate) struct CellStats {
    pub injected: u64,
    pub delivered: u64,
    pub avg_latency_ps: f64,
    pub power_mw: f64,
    pub shutdown: Option<CellShutdown>,
}

/// Writer-side cell record.
#[derive(Debug, Clone)]
pub(crate) struct TableCellRec {
    pub point: usize,
    pub load: f64,
    pub traffic: TrafficKind,
    pub schedule: usize,
    pub cluster: Option<String>,
    pub provenance: Provenance,
    pub stats: CellStats,
}

/// Writer-side cluster row.
#[derive(Debug, Clone)]
pub(crate) struct ClusterRec {
    pub id: String,
    pub key: String,
    pub representative: usize,
}

fn stats_json(s: &CellStats) -> String {
    let mut out = format!(
        "{{\"injected\":{},\"delivered\":{},\"avg_latency_ps\":{},\"power_mw\":{}",
        s.injected,
        s.delivered,
        json_number(s.avg_latency_ps),
        json_number(s.power_mw)
    );
    if let Some(shut) = &s.shutdown {
        let _ = write!(
            out,
            ",\"shutdown\":{{\"drained_cleanly\":{},\"survivors_before\":{},\"survivors_after\":{}}}",
            shut.drained_cleanly, shut.survivors_before, shut.survivors_after
        );
    }
    out.push('}');
    out
}

fn provenance_json(p: &Provenance) -> String {
    match p {
        Provenance::Exact => "\"exact\"".to_string(),
        Provenance::Reused(id) => format!("{{\"reused\":{}}}", json_string(id)),
        Provenance::Bounded(err) => format!("{{\"bounded\":{}}}", json_number(*err)),
    }
}

fn cell_json(c: &TableCellRec) -> String {
    let mut out = format!(
        "{{\"point\":{},\"load\":{},\"traffic\":\"{}\",\"schedule\":{}",
        c.point,
        json_number(c.load),
        c.traffic,
        c.schedule
    );
    if let Some(id) = &c.cluster {
        let _ = write!(out, ",\"cluster\":{}", json_string(id));
    }
    let _ = write!(
        out,
        ",\"provenance\":{},\"stats\":{}}}",
        provenance_json(&c.provenance),
        stats_json(&c.stats)
    );
    out
}

fn point_json(p: &TablePoint) -> String {
    format!(
        "{{\"ordinal\":{},\"chain_id\":{},\"power_mw\":{},\"latency_cycles\":{},\
         \"island_signature\":\"{:016x}\",\"flow_fingerprint\":\"{:016x}\"}}",
        p.ordinal,
        p.chain_id,
        json_number(p.power_mw),
        json_number(p.latency_cycles),
        p.island_sig,
        p.flow_fp
    )
}

fn write_lines(out: &mut String, entries: impl Iterator<Item = String>) {
    for (i, e) in entries.enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&e);
    }
    out.push_str("\n]");
}

/// Serializes one result table, byte-deterministically.
pub(crate) fn write_table(
    mode: Mode,
    spec_name: &str,
    axes: &SimAxes,
    points: &[TablePoint],
    cells: &[TableCellRec],
    clusters: Option<&[ClusterRec]>,
) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"format\":{},", json_string(TABLE_FORMAT));
    let _ = write!(s, "\n\"mode\":\"{mode}\",");
    let _ = write!(s, "\n\"spec_name\":{},", json_string(spec_name));
    let _ = write!(s, "\n\"axes\":{},", axes.to_json());
    s.push_str("\n\"points\":[");
    write_lines(&mut s, points.iter().map(point_json));
    s.push_str(",\n\"cells\":[");
    write_lines(&mut s, cells.iter().map(cell_json));
    if let Some(rows) = clusters {
        s.push_str(",\n\"clusters\":[");
        write_lines(
            &mut s,
            rows.iter().map(|c| {
                format!(
                    "{{\"id\":{},\"key\":{},\"representative\":{}}}",
                    json_string(&c.id),
                    json_string(&c.key),
                    c.representative
                )
            }),
        );
    }
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------- parser

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing '{key}'"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an unsigned integer"))
}

fn usize_field(v: &Value, key: &str, ctx: &str) -> Result<usize, String> {
    field(v, key, ctx)?
        .as_usize()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an unsigned integer"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a number"))
}

fn str_field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a string"))
}

fn bool_field(v: &Value, key: &str, ctx: &str) -> Result<bool, String> {
    match field(v, key, ctx)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{ctx}: '{key}' is not a boolean")),
    }
}

fn check_keys(v: &Value, allowed: &[&str], ctx: &str) -> Result<(), String> {
    let Value::Obj(members) = v else {
        return Err(format!("{ctx}: not an object"));
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{ctx}: unknown member '{k}'"));
        }
    }
    Ok(())
}

fn hex16_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    let s = str_field(v, key, ctx)?;
    if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(s, 16)
            .map_err(|_| format!("{ctx}: '{key}' is not a 16-hex-digit string"))
    } else {
        Err(format!("{ctx}: '{key}' is not a 16-hex-digit string"))
    }
}

fn parse_schedule(v: &Value, ctx: &str) -> Result<Option<ShutdownScenario>, String> {
    match v {
        Value::Null => Ok(None),
        Value::Obj(_) => {
            check_keys(
                v,
                &["island", "stop_at_ns", "drain_ns", "post_gate_ns"],
                ctx,
            )?;
            Ok(Some(ShutdownScenario {
                island: usize_field(v, "island", ctx)?,
                stop_at_ns: u64_field(v, "stop_at_ns", ctx)?,
                drain_ns: u64_field(v, "drain_ns", ctx)?,
                post_gate_ns: u64_field(v, "post_gate_ns", ctx)?,
            }))
        }
        _ => Err(format!("{ctx}: schedule is not null or an object")),
    }
}

fn parse_axes(v: &Value) -> Result<SimAxes, String> {
    let ctx = "axes";
    check_keys(v, &["loads", "traffic", "schedules", "horizon_ns"], ctx)?;
    let loads: Vec<f64> = match field(v, "loads", ctx)? {
        Value::Arr(xs) => xs
            .iter()
            .map(|x| x.as_f64().filter(|l| l.is_finite() && *l > 0.0))
            .collect::<Option<_>>()
            .filter(|ls: &Vec<f64>| !ls.is_empty())
            .ok_or("axes: 'loads' must be a non-empty array of positive finite numbers")?,
        _ => {
            return Err(
                "axes: 'loads' must be a non-empty array of positive finite numbers".to_string(),
            )
        }
    };
    let traffic: Vec<TrafficKind> = match field(v, "traffic", ctx)? {
        Value::Arr(xs) if !xs.is_empty() => xs
            .iter()
            .map(|x| {
                x.as_str()
                    .ok_or("axes: traffic kind is not a string".to_string())
                    .and_then(|s| s.parse::<TrafficKind>().map_err(|e| format!("axes: {e}")))
            })
            .collect::<Result<_, _>>()?,
        _ => return Err("axes: 'traffic' must be a non-empty array".to_string()),
    };
    let schedules: Vec<Option<ShutdownScenario>> = match field(v, "schedules", ctx)? {
        Value::Arr(xs) if !xs.is_empty() => xs
            .iter()
            .map(|x| parse_schedule(x, "axes"))
            .collect::<Result<_, _>>()?,
        _ => return Err("axes: 'schedules' must be a non-empty array".to_string()),
    };
    let horizon_ns = u64_field(v, "horizon_ns", ctx)?;
    if horizon_ns == 0 {
        return Err("axes: 'horizon_ns' must be positive".to_string());
    }
    Ok(SimAxes {
        loads,
        traffic,
        schedules,
        horizon_ns,
    })
}

fn parse_point(v: &Value, i: usize) -> Result<ParsedPoint, String> {
    let ctx = format!("points[{i}]");
    check_keys(
        v,
        &[
            "ordinal",
            "chain_id",
            "power_mw",
            "latency_cycles",
            "island_signature",
            "flow_fingerprint",
        ],
        &ctx,
    )?;
    Ok(ParsedPoint {
        ordinal: u64_field(v, "ordinal", &ctx)?,
        chain_id: u64_field(v, "chain_id", &ctx)?,
        power_mw: f64_field(v, "power_mw", &ctx)?,
        latency_cycles: f64_field(v, "latency_cycles", &ctx)?,
        island_signature: hex16_field(v, "island_signature", &ctx)?,
        flow_fingerprint: hex16_field(v, "flow_fingerprint", &ctx)?,
    })
}

fn parse_provenance(v: &Value, ctx: &str) -> Result<Provenance, String> {
    match v {
        Value::Str(s) if s == "exact" => Ok(Provenance::Exact),
        Value::Obj(members) if members.len() == 1 => {
            let (k, payload) = &members[0];
            match k.as_str() {
                "reused" => payload
                    .as_str()
                    .map(|id| Provenance::Reused(id.to_string()))
                    .ok_or_else(|| format!("{ctx}: reused cluster id is not a string")),
                "bounded" => payload
                    .as_f64()
                    .filter(|e| e.is_finite() && *e >= 0.0)
                    .map(Provenance::Bounded)
                    .ok_or_else(|| format!("{ctx}: bounded error is not a non-negative number")),
                other => Err(format!(
                    "{ctx}: provenance '{other}' is not 'exact', 'reused', or 'bounded'"
                )),
            }
        }
        Value::Str(s) => Err(format!(
            "{ctx}: provenance '{s}' is not 'exact', 'reused', or 'bounded'"
        )),
        _ => Err(format!(
            "{ctx}: provenance is not 'exact', 'reused', or 'bounded'"
        )),
    }
}

fn parse_stats(v: &Value, ctx: &str) -> Result<ParsedStats, String> {
    check_keys(
        v,
        &[
            "injected",
            "delivered",
            "avg_latency_ps",
            "power_mw",
            "shutdown",
        ],
        ctx,
    )?;
    let shutdown = match v.get("shutdown") {
        None => None,
        Some(s) => {
            check_keys(
                s,
                &["drained_cleanly", "survivors_before", "survivors_after"],
                ctx,
            )?;
            Some(ParsedShutdown {
                drained_cleanly: bool_field(s, "drained_cleanly", ctx)?,
                survivors_before: u64_field(s, "survivors_before", ctx)?,
                survivors_after: u64_field(s, "survivors_after", ctx)?,
            })
        }
    };
    Ok(ParsedStats {
        injected: u64_field(v, "injected", ctx)?,
        delivered: u64_field(v, "delivered", ctx)?,
        avg_latency_ps: f64_field(v, "avg_latency_ps", ctx)?,
        power_mw: f64_field(v, "power_mw", ctx)?,
        shutdown,
    })
}

fn parse_cell(v: &Value, i: usize, mode: Mode) -> Result<ParsedCell, String> {
    let ctx = format!("cells[{i}]");
    check_keys(
        v,
        &[
            "point",
            "load",
            "traffic",
            "schedule",
            "cluster",
            "provenance",
            "stats",
        ],
        &ctx,
    )?;
    let cluster = match v.get("cluster") {
        None => None,
        Some(c) => Some(
            c.as_str()
                .ok_or_else(|| format!("{ctx}: 'cluster' is not a string"))?
                .to_string(),
        ),
    };
    if mode == Mode::Exact && cluster.is_some() {
        return Err(format!(
            "{ctx}: 'cluster' is not allowed in an exact-mode table"
        ));
    }
    if mode == Mode::Clustered && cluster.is_none() {
        return Err(format!(
            "{ctx}: missing 'cluster' in a clustered-mode table"
        ));
    }
    let provenance = parse_provenance(field(v, "provenance", &ctx)?, &ctx)?;
    if mode == Mode::Exact && provenance != Provenance::Exact {
        let label = match &provenance {
            Provenance::Reused(_) => "reused",
            Provenance::Bounded(_) => "bounded",
            Provenance::Exact => unreachable!(),
        };
        return Err(format!(
            "{ctx}: provenance '{label}' is not allowed in an exact-mode table"
        ));
    }
    let traffic = str_field(v, "traffic", &ctx)?
        .parse::<TrafficKind>()
        .map_err(|e| format!("{ctx}: {e}"))?;
    Ok(ParsedCell {
        point: usize_field(v, "point", &ctx)?,
        load: f64_field(v, "load", &ctx)?,
        traffic,
        schedule: usize_field(v, "schedule", &ctx)?,
        cluster,
        provenance,
        stats: parse_stats(field(v, "stats", &ctx)?, &ctx)?,
    })
}

/// Parses and validates one `vi-noc-dynsweep-v1` result table.
///
/// Structural checks (each failing with one pinned, path-contexted
/// message): the format and mode tags; axis well-formedness; point rows
/// with 16-hex feature signatures; cells in canonical point-major order
/// covering the full grid, each citing in-range axes; shutdown stats
/// present exactly on gated cells; exact-mode tables free of cluster
/// annotations; clustered-mode cells all carrying a cluster id that
/// resolves to a `clusters` row whose representative is an exact cell of
/// the same cluster; `reused` citing the cell's own cluster.
///
/// # Errors
///
/// The first failing check.
pub fn parse_table(text: &str) -> Result<ParsedTable, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    check_keys(
        &doc,
        &[
            "format",
            "mode",
            "spec_name",
            "axes",
            "points",
            "cells",
            "clusters",
        ],
        "table",
    )?;
    let format = str_field(&doc, "format", "table")?;
    if format != TABLE_FORMAT {
        return Err(format!("table: format '{format}' is not '{TABLE_FORMAT}'"));
    }
    let mode: Mode = str_field(&doc, "mode", "table")?
        .parse()
        .map_err(|e| format!("table: {e}"))?;
    let spec_name = str_field(&doc, "spec_name", "table")?.to_string();
    let axes = parse_axes(field(&doc, "axes", "table")?)?;

    let points: Vec<ParsedPoint> = match field(&doc, "points", "table")? {
        Value::Arr(xs) => xs
            .iter()
            .enumerate()
            .map(|(i, p)| parse_point(p, i))
            .collect::<Result<_, _>>()?,
        _ => return Err("table: 'points' is not an array".to_string()),
    };

    let cells: Vec<ParsedCell> = match field(&doc, "cells", "table")? {
        Value::Arr(xs) => xs
            .iter()
            .enumerate()
            .map(|(i, c)| parse_cell(c, i, mode))
            .collect::<Result<_, _>>()?,
        _ => return Err("table: 'cells' is not an array".to_string()),
    };

    let expected = points.len() * axes.cells_per_point();
    if cells.len() != expected {
        return Err(format!(
            "table: {} cells do not cover the {expected}-cell grid",
            cells.len()
        ));
    }
    let per_point = axes.cells_per_point();
    for (i, cell) in cells.iter().enumerate() {
        let (p, rest) = (i / per_point, i % per_point);
        let (li, rest) = (
            rest / (axes.traffic.len() * axes.schedules.len()),
            rest % (axes.traffic.len() * axes.schedules.len()),
        );
        let (ti, si) = (rest / axes.schedules.len(), rest % axes.schedules.len());
        if cell.point != p
            || cell.load.to_bits() != axes.loads[li].to_bits()
            || cell.traffic != axes.traffic[ti]
            || cell.schedule != si
        {
            return Err(format!("cells[{i}]: cell is out of canonical order"));
        }
        let gated = axes.schedules[si].is_some();
        if gated && cell.stats.shutdown.is_none() {
            return Err(format!(
                "cells[{i}]: gated cell is missing 'shutdown' stats"
            ));
        }
        if !gated && cell.stats.shutdown.is_some() {
            return Err(format!(
                "cells[{i}]: free-running cell carries 'shutdown' stats"
            ));
        }
    }

    let clusters: Vec<ParsedCluster> = match doc.get("clusters") {
        None => Vec::new(),
        Some(_) if mode == Mode::Exact => {
            return Err("table: 'clusters' is not allowed in an exact-mode table".to_string())
        }
        Some(Value::Arr(xs)) => xs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let ctx = format!("clusters[{i}]");
                check_keys(c, &["id", "key", "representative"], &ctx)?;
                Ok(ParsedCluster {
                    id: str_field(c, "id", &ctx)?.to_string(),
                    key: str_field(c, "key", &ctx)?.to_string(),
                    representative: usize_field(c, "representative", &ctx)?,
                })
            })
            .collect::<Result<_, String>>()?,
        Some(_) => return Err("table: 'clusters' is not an array".to_string()),
    };

    if mode == Mode::Clustered {
        for (i, row) in clusters.iter().enumerate() {
            if clusters[..i].iter().any(|r| r.id == row.id) {
                return Err(format!("clusters[{i}]: duplicate cluster id '{}'", row.id));
            }
            if row.representative >= cells.len() {
                return Err(format!(
                    "clusters[{i}]: representative {} is outside the {}-cell table",
                    row.representative,
                    cells.len()
                ));
            }
            let rep = &cells[row.representative];
            if rep.cluster.as_deref() != Some(row.id.as_str())
                || rep.provenance != Provenance::Exact
            {
                return Err(format!(
                    "clusters[{i}]: representative cell {} is not an exact cell of cluster '{}'",
                    row.representative, row.id
                ));
            }
        }
        for (i, cell) in cells.iter().enumerate() {
            let id = cell.cluster.as_deref().expect("checked per-cell above");
            if !clusters.iter().any(|r| r.id == id) {
                return Err(format!(
                    "cells[{i}]: cluster '{id}' is not in the clusters table"
                ));
            }
            if let Provenance::Reused(cited) = &cell.provenance {
                if cited != id {
                    return Err(format!(
                        "cells[{i}]: reused cluster '{cited}' does not match the cell's cluster '{id}'"
                    ));
                }
            }
        }
    }

    // Points indexed by cells must exist (canonical order already forces
    // `point == i / per_point < points.len()` via the coverage check).
    for (i, cell) in cells.iter().enumerate() {
        if cell.point >= points.len() {
            return Err(format!(
                "cells[{i}]: point {} is outside the {}-entry points table",
                cell.point,
                points.len()
            ));
        }
    }

    Ok(ParsedTable {
        mode,
        spec_name,
        axes,
        points,
        cells,
        clusters,
    })
}
