//! The declarative sim-axis grid of a dynamic sweep, and its canonical
//! serializations.

use std::fmt;
use vi_noc_core::json_number;
use vi_noc_sim::{ShutdownScenario, TrafficKind};
use vi_noc_soc::ViAssignment;

/// How the engine treats clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Simulate every distinct exact identity key; clustering only
    /// schedules and deduplicates *identical* cells. The result table is
    /// byte-identical to the naive per-cell double loop.
    Exact,
    /// Simulate one representative per cluster; other members reuse its
    /// stats, with a reported error bound when their exact keys differ.
    Clustered,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Exact => "exact",
            Mode::Clustered => "clustered",
        })
    }
}

impl std::str::FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Mode::Exact),
            "clustered" => Ok(Mode::Clustered),
            other => Err(format!("mode '{other}' is not 'exact' or 'clustered'")),
        }
    }
}

/// The sim-config grid a dynamic sweep crosses every frontier point with:
/// load factors × traffic kinds × shutdown schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct SimAxes {
    /// Load-factor axis (each scales every flow's offered bandwidth).
    pub loads: Vec<f64>,
    /// Traffic-kind axis.
    pub traffic: Vec<TrafficKind>,
    /// Shutdown-schedule axis; `None` is a free-running cell.
    pub schedules: Vec<Option<ShutdownScenario>>,
    /// Horizon of free-running cells, ns (gated cells run their
    /// schedule's own timeline).
    pub horizon_ns: u64,
}

impl SimAxes {
    /// Checks the axes are simulatable: non-empty, positive finite loads,
    /// a positive horizon, and every schedule gating a shutdown-capable
    /// island of `vi`.
    ///
    /// # Errors
    ///
    /// One pinned message per violated constraint.
    pub fn validate(&self, vi: &ViAssignment) -> Result<(), String> {
        if self.loads.is_empty() || self.loads.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            return Err(
                "axes: 'loads' must be a non-empty array of positive finite numbers".to_string(),
            );
        }
        if self.traffic.is_empty() {
            return Err("axes: 'traffic' must be a non-empty array".to_string());
        }
        if self.schedules.is_empty() {
            return Err("axes: 'schedules' must be a non-empty array".to_string());
        }
        if self.horizon_ns == 0 {
            return Err("axes: 'horizon_ns' must be positive".to_string());
        }
        for (i, sched) in self.schedules.iter().enumerate() {
            if let Some(s) = sched {
                if s.island >= vi.island_count() {
                    return Err(format!(
                        "axes: schedule {i} gates island {} but the partition has {} islands",
                        s.island,
                        vi.island_count()
                    ));
                }
                if !vi.can_shutdown(s.island) {
                    return Err(format!(
                        "axes: schedule {i} gates always-on island {}",
                        s.island
                    ));
                }
            }
        }
        Ok(())
    }

    /// Cells per design point.
    pub fn cells_per_point(&self) -> usize {
        self.loads.len() * self.traffic.len() * self.schedules.len()
    }

    /// Serializes the axes as one compact JSON object (fixed key order;
    /// part of the byte-deterministic table format).
    pub fn to_json(&self) -> String {
        let loads: Vec<String> = self.loads.iter().map(|&l| json_number(l)).collect();
        let traffic: Vec<String> = self.traffic.iter().map(|t| format!("\"{t}\"")).collect();
        let schedules: Vec<String> = self.schedules.iter().map(schedule_json).collect();
        format!(
            "{{\"loads\":[{}],\"traffic\":[{}],\"schedules\":[{}],\"horizon_ns\":{}}}",
            loads.join(","),
            traffic.join(","),
            schedules.join(","),
            self.horizon_ns
        )
    }
}

/// Serializes one schedule-axis entry: `null` for a free-running cell,
/// the schedule object otherwise.
pub fn schedule_json(s: &Option<ShutdownScenario>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"island\":{},\"stop_at_ns\":{},\"drain_ns\":{},\"post_gate_ns\":{}}}",
            s.island, s.stop_at_ns, s.drain_ns, s.post_gate_ns
        ),
    }
}

/// The canonical ASCII form of a schedule-axis entry — the hashing input
/// of [`crate::schedule_hash`] and a component of every identity key.
pub fn schedule_canon(s: &Option<ShutdownScenario>) -> String {
    match s {
        None => "none".to_string(),
        Some(s) => format!(
            "gate:{}:{}:{}:{}",
            s.island, s.stop_at_ns, s.drain_ns, s.post_gate_ns
        ),
    }
}
