//! Process technology descriptor.

/// Electrical parameters of a CMOS process node, the single source of all
/// model constants in this crate.
///
/// The default constructor [`Technology::cmos_65nm`] matches the paper's
/// 65 nm evaluation node; the constants are calibrated so that component
/// powers/areas land in the ranges the paper reports (NoC dynamic power of a
/// 26-core SoC in the tens of mW, sub-mm² NoC area). See `DESIGN.md` §4.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Feature size in nanometres (informational).
    pub node_nm: f64,
    /// Nominal supply voltage in volts.
    pub vdd_v: f64,
    /// Wire capacitance per bit per millimetre, in femtofarads.
    pub wire_cap_ff_per_mm: f64,
    /// Repeated-wire propagation delay, in picoseconds per millimetre.
    pub wire_delay_ps_per_mm: f64,
    /// Timing margin reserved on a link for flop setup/clock skew, in ns.
    pub link_setup_margin_ns: f64,
    /// Switch critical-path intercept, in ns (arbiter + FIFO overhead).
    pub switch_delay_base_ns: f64,
    /// Switch critical-path slope per port, in ns (arbitration trees and
    /// crossbar wires grow roughly linearly in radix at these sizes).
    pub switch_delay_per_port_ns: f64,
    /// Average signal activity factor (fraction of bits toggling per cycle).
    pub activity_factor: f64,
    /// Leakage power density of active logic, in mW per mm².
    pub leak_density_mw_per_mm2: f64,
    /// Fraction of leakage that survives power gating (sleep-transistor and
    /// retention overhead).
    pub gating_residual: f64,
    /// Energy of a voltage level-shifter per transported bit, in pJ.
    pub level_shift_energy_pj_per_bit: f64,
}

impl Technology {
    /// The 65 nm node used throughout the paper's evaluation.
    pub fn cmos_65nm() -> Self {
        Technology {
            node_nm: 65.0,
            vdd_v: 1.1,
            wire_cap_ff_per_mm: 210.0,
            wire_delay_ps_per_mm: 150.0,
            link_setup_margin_ns: 0.25,
            switch_delay_base_ns: 0.5,
            switch_delay_per_port_ns: 0.09,
            activity_factor: 0.5,
            leak_density_mw_per_mm2: 3.5,
            gating_residual: 0.04,
            level_shift_energy_pj_per_bit: 0.08,
        }
    }

    /// A 90 nm variant (higher voltage, slower wires, less leakage density)
    /// for cross-node sanity experiments.
    pub fn cmos_90nm() -> Self {
        Technology {
            node_nm: 90.0,
            vdd_v: 1.2,
            wire_cap_ff_per_mm: 230.0,
            wire_delay_ps_per_mm: 180.0,
            link_setup_margin_ns: 0.3,
            switch_delay_base_ns: 0.7,
            switch_delay_per_port_ns: 0.12,
            activity_factor: 0.5,
            leak_density_mw_per_mm2: 1.2,
            gating_residual: 0.05,
            level_shift_energy_pj_per_bit: 0.1,
        }
    }

    /// Dynamic switching energy of a capacitance `c_ff` femtofarads at this
    /// node's supply, in picojoules (E = C·V²; the ½ and activity are
    /// applied by callers where appropriate).
    pub fn switching_energy_pj(&self, c_ff: f64) -> f64 {
        c_ff * 1e-3 * self.vdd_v * self.vdd_v
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::cmos_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_65nm() {
        let t = Technology::default();
        assert_eq!(t.node_nm, 65.0);
        assert_eq!(t, Technology::cmos_65nm());
    }

    #[test]
    fn switching_energy_scales_quadratically_with_vdd() {
        let mut t = Technology::cmos_65nm();
        let e1 = t.switching_energy_pj(100.0);
        t.vdd_v *= 2.0;
        let e2 = t.switching_energy_pj(100.0);
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn older_node_leaks_less_per_area() {
        // 90 nm leaks less *per mm²* in these models (lower density,
        // bigger gates); the crossover to 65 nm leakage dominance comes
        // from shrinking area budgets, not density.
        assert!(
            Technology::cmos_90nm().leak_density_mw_per_mm2
                < Technology::cmos_65nm().leak_density_mw_per_mm2
        );
    }

    #[test]
    fn gating_residual_is_small_fraction() {
        let t = Technology::cmos_65nm();
        assert!(t.gating_residual > 0.0 && t.gating_residual < 0.2);
    }
}
