//! Power, area and timing models of NoC components at 65 nm.
//!
//! The paper evaluates its synthesis flow with the ×pipesLite component
//! library (Stergiou et al., DATE 2005) characterized at 65 nm, extended with
//! models of bi-synchronous voltage/frequency converter FIFOs. That library
//! is not public, so this crate provides **calibrated analytic stand-ins**:
//! closed-form models whose absolute magnitudes land in the published ranges
//! and — more importantly — whose *monotonicities* match the real components:
//!
//! * switch power grows with frequency, port count and traffic load;
//! * the maximum feasible crossbar size shrinks as frequency rises
//!   (longer critical path through arbiter + crossbar);
//! * link power grows with wire length, toggled bandwidth and frequency;
//! * unpipelined links have a maximum length at a given frequency;
//! * island crossings pay a fixed 4-cycle bi-synchronous FIFO penalty and a
//!   per-bit voltage/level-conversion energy;
//! * leakage scales with silicon area and is almost entirely removed by
//!   power-gating an island.
//!
//! Every figure of the reproduction depends only on those shapes, not on
//! absolute femtojoules (see `DESIGN.md` §4 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use vi_noc_models::{Technology, SwitchModel, Frequency};
//!
//! let tech = Technology::cmos_65nm();
//! let sw = SwitchModel::new(&tech, 4, 4, 32);
//! let f = Frequency::from_mhz(500.0);
//! assert!(sw.max_frequency().hz() > f.hz());
//! let idle = sw.idle_power(f);
//! assert!(idle.mw() > 0.0);
//! ```

#![warn(missing_docs)]

mod bisync;
mod leakage;
mod link;
mod ni;
mod switch;
mod technology;
mod units;

pub use bisync::BisyncFifoModel;
pub use leakage::{gated_island_leakage, island_leakage, LeakageReport};
pub use link::LinkModel;
pub use ni::NiModel;
pub use switch::{SwitchModel, MAX_RADIX};
pub use technology::Technology;
pub use units::{Area, Bandwidth, Frequency, Power};
