//! Point-to-point link (wire bundle) model.

use crate::technology::Technology;
use crate::units::{Bandwidth, Frequency, Power};

/// Analytic model of an unpipelined point-to-point NoC link of a given flit
/// width.
///
/// The paper uses *over-the-cell routed, unpipelined* links between switches
/// (§3.1), so a link is feasible only if its wire delay fits in the clock
/// period of the domain driving it — see [`LinkModel::max_length_mm`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    tech: Technology,
    width_bits: usize,
}

impl LinkModel {
    /// Creates a link model for `width_bits`-wide links.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    pub fn new(tech: &Technology, width_bits: usize) -> Self {
        assert!(width_bits > 0, "link width must be positive");
        LinkModel {
            tech: tech.clone(),
            width_bits,
        }
    }

    /// Flit width in bits.
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Peak bandwidth of the link at clock `freq` (width × frequency).
    pub fn capacity(&self, freq: Frequency) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.width_bits as f64 / 8.0 * freq.hz())
    }

    /// Wire propagation delay over `length_mm`, in nanoseconds.
    pub fn delay_ns(&self, length_mm: f64) -> f64 {
        length_mm * self.tech.wire_delay_ps_per_mm / 1e3
    }

    /// Longest unpipelined link that still meets timing at `freq`.
    pub fn max_length_mm(&self, freq: Frequency) -> f64 {
        let budget_ns = freq.period_ns() - self.tech.link_setup_margin_ns;
        (budget_ns.max(0.0)) * 1e3 / self.tech.wire_delay_ps_per_mm
    }

    /// Returns `true` if a `length_mm` link meets timing at `freq`.
    pub fn is_feasible(&self, length_mm: f64, freq: Frequency) -> bool {
        length_mm <= self.max_length_mm(freq)
    }

    /// Dynamic power of transporting `bandwidth` over a link of `length_mm`.
    ///
    /// `P = activity · C_wire(length) · V² · toggled bit rate`, i.e. power
    /// scales with the *used* bandwidth, not the link capacity.
    pub fn traffic_power(&self, length_mm: f64, bandwidth: Bandwidth) -> Power {
        let c_ff_per_bit = self.tech.wire_cap_ff_per_mm * length_mm;
        let e_bit_pj = self.tech.activity_factor * self.tech.switching_energy_pj(c_ff_per_bit);
        Power::from_watts(bandwidth.bits_per_s() * e_bit_pj * 1e-12)
    }

    /// Energy per transported bit over `length_mm`, in picojoules
    /// (exposed for the simulator's energy accounting).
    pub fn energy_per_bit_pj(&self, length_mm: f64) -> f64 {
        self.tech.activity_factor
            * self
                .tech
                .switching_energy_pj(self.tech.wire_cap_ff_per_mm * length_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinkModel {
        LinkModel::new(&Technology::cmos_65nm(), 32)
    }

    #[test]
    fn capacity_is_width_times_frequency() {
        let l = model();
        let cap = l.capacity(Frequency::from_mhz(500.0));
        // 32 bits = 4 bytes, 500 MHz -> 2 GB/s.
        assert!((cap.bytes_per_s() - 2e9).abs() < 1.0);
    }

    #[test]
    fn longer_wires_are_slower_and_hungrier() {
        let l = model();
        assert!(l.delay_ns(4.0) > l.delay_ns(1.0));
        let bw = Bandwidth::from_mbps(400.0);
        assert!(l.traffic_power(4.0, bw).mw() > l.traffic_power(1.0, bw).mw());
    }

    #[test]
    fn max_length_shrinks_with_frequency() {
        let l = model();
        let slow = l.max_length_mm(Frequency::from_mhz(200.0));
        let fast = l.max_length_mm(Frequency::from_mhz(1000.0));
        assert!(slow > fast);
        assert!(fast > 0.0, "1 GHz links must still span some distance");
    }

    #[test]
    fn feasibility_matches_max_length() {
        let l = model();
        let f = Frequency::from_mhz(500.0);
        let max = l.max_length_mm(f);
        assert!(l.is_feasible(max * 0.99, f));
        assert!(!l.is_feasible(max * 1.01, f));
    }

    #[test]
    fn power_scales_linearly_with_bandwidth() {
        let l = model();
        let p1 = l.traffic_power(2.0, Bandwidth::from_mbps(100.0));
        let p2 = l.traffic_power(2.0, Bandwidth::from_mbps(400.0));
        assert!((p2.mw() / p1.mw() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_sanity_millimetre_wire() {
        // ~0.1 pJ/bit/mm at 65 nm — a 400 MB/s flow on a 2 mm link is well
        // under a milliwatt-and-a-half.
        let l = model();
        let p = l.traffic_power(2.0, Bandwidth::from_mbps(400.0));
        assert!(p.mw() > 0.1 && p.mw() < 3.0, "got {} mW", p.mw());
    }

    #[test]
    fn zero_length_link_is_free_and_instant() {
        let l = model();
        assert_eq!(l.delay_ns(0.0), 0.0);
        assert_eq!(l.traffic_power(0.0, Bandwidth::from_mbps(100.0)).mw(), 0.0);
    }
}
