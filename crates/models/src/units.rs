//! Typed physical quantities.
//!
//! Thin `f64` newtypes that keep frequencies, powers, areas and bandwidths
//! from being mixed up in the synthesis flow (C-NEWTYPE). Arithmetic is
//! provided only where physically meaningful (adding powers, scaling by a
//! dimensionless factor).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns `true` if the value is finite (not NaN/∞).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// A clock frequency, stored in hertz.
    Frequency,
    "Hz"
);
quantity!(
    /// Electrical power, stored in watts.
    Power,
    "W"
);
quantity!(
    /// Silicon area, stored in mm².
    Area,
    "mm^2"
);
quantity!(
    /// Data bandwidth, stored in bytes per second.
    Bandwidth,
    "B/s"
);

impl Frequency {
    /// Creates a frequency from hertz.
    pub fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Value in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Value in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Clock period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period_ns(self) -> f64 {
        assert!(self.0 > 0.0, "period of zero frequency");
        1e9 / self.0
    }
}

impl Power {
    /// Creates a power from watts.
    pub fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Value in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Value in milliwatts.
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }
}

impl Area {
    /// Creates an area from mm².
    pub fn from_mm2(mm2: f64) -> Self {
        Area(mm2)
    }

    /// Value in mm².
    pub fn mm2(self) -> f64 {
        self.0
    }
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    pub fn from_bytes_per_s(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from megabytes per second (10⁶ B/s).
    pub fn from_mbps(mbps: f64) -> Self {
        Bandwidth(mbps * 1e6)
    }

    /// Value in bytes per second.
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    /// Value in megabytes per second.
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in bits per second.
    pub fn bits_per_s(self) -> f64 {
        self.0 * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(500.0);
        assert_eq!(f.hz(), 5e8);
        assert_eq!(f.mhz(), 500.0);
        assert!((f.period_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_arithmetic() {
        let a = Power::from_mw(3.0);
        let b = Power::from_mw(4.5);
        assert!(((a + b).mw() - 7.5).abs() < 1e-12);
        assert!(((b - a).mw() - 1.5).abs() < 1e-12);
        assert!(((a * 2.0).mw() - 6.0).abs() < 1e-12);
        let total: Power = [a, b, b].into_iter().sum();
        assert!((total.mw() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_conversions() {
        let bw = Bandwidth::from_mbps(400.0);
        assert_eq!(bw.bytes_per_s(), 4e8);
        assert_eq!(bw.bits_per_s(), 3.2e9);
        assert_eq!(bw.mbps(), 400.0);
    }

    #[test]
    fn ratio_division_is_dimensionless() {
        let r = Bandwidth::from_mbps(200.0) / Bandwidth::from_mbps(400.0);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert!(Power::from_mw(1.0).to_string().contains('W'));
        assert!(Area::from_mm2(2.0).to_string().contains("mm^2"));
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_has_no_period() {
        Frequency::ZERO.period_ns();
    }
}
