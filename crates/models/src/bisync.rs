//! Bi-synchronous voltage/frequency converter FIFO model.

use crate::technology::Technology;
use crate::units::{Area, Bandwidth, Frequency, Power};

/// Analytic model of the bi-synchronous FIFO + level shifters inserted on
/// every link that crosses a voltage-island boundary.
///
/// The paper (§3.1) uses these converters for both voltage and frequency
/// conversion between islands — even same-frequency islands need them
/// because each island has its own clock tree (unbounded skew). §5 states
/// the latency cost: *"When packets cross the islands, a 4 cycle delay is
/// incurred on the voltage-frequency converters."*
#[derive(Debug, Clone, PartialEq)]
pub struct BisyncFifoModel {
    tech: Technology,
    width_bits: usize,
}

impl BisyncFifoModel {
    /// Crossing latency in cycles, as given in the paper.
    pub const CROSSING_LATENCY_CYCLES: u32 = 4;

    /// Creates a converter model for `width_bits`-wide links.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    pub fn new(tech: &Technology, width_bits: usize) -> Self {
        assert!(width_bits > 0, "FIFO width must be positive");
        BisyncFifoModel {
            tech: tech.clone(),
            width_bits,
        }
    }

    /// Latency added to a flow crossing islands, in cycles.
    pub fn latency_cycles(&self) -> u32 {
        Self::CROSSING_LATENCY_CYCLES
    }

    /// Silicon area of the FIFO and its level shifters (a handful of
    /// registers and synchronizer flops — a few hundred cells).
    pub fn area(&self) -> Area {
        Area::from_mm2(0.003 * self.width_bits as f64 / 32.0 + 0.001)
    }

    /// Dynamic power: both clock domains tick the FIFO pointers; every
    /// transported bit pays FIFO write+read plus level-shifting energy.
    pub fn power(
        &self,
        writer_freq: Frequency,
        reader_freq: Frequency,
        bandwidth: Bandwidth,
    ) -> Power {
        let w = self.width_bits as f64 / 32.0;
        let idle = Power::from_mw((writer_freq.mhz() + reader_freq.mhz()) * 0.0005 * w);
        let e_bit_pj = 0.12 + self.tech.level_shift_energy_pj_per_bit;
        let traffic = Power::from_watts(bandwidth.bits_per_s() * e_bit_pj * 1e-12);
        idle + traffic
    }

    /// Effective capacity of a crossing: limited by the *slower* domain.
    pub fn capacity(&self, writer_freq: Frequency, reader_freq: Frequency) -> Bandwidth {
        let f = writer_freq.hz().min(reader_freq.hz());
        Bandwidth::from_bytes_per_s(self.width_bits as f64 / 8.0 * f)
    }

    /// Leakage power (ungated; a converter straddles two islands and is
    /// gated together with whichever side owns it — the synthesis flow
    /// assigns it to the link's source island).
    pub fn leakage_power(&self) -> Power {
        Power::from_mw(self.area().mm2() * self.tech.leak_density_mw_per_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BisyncFifoModel {
        BisyncFifoModel::new(&Technology::cmos_65nm(), 32)
    }

    #[test]
    fn latency_matches_paper() {
        assert_eq!(model().latency_cycles(), 4);
    }

    #[test]
    fn capacity_limited_by_slower_domain() {
        let m = model();
        let cap = m.capacity(Frequency::from_mhz(200.0), Frequency::from_mhz(800.0));
        assert!((cap.bytes_per_s() - 4.0 * 200e6).abs() < 1.0);
        let sym = m.capacity(Frequency::from_mhz(800.0), Frequency::from_mhz(200.0));
        assert_eq!(cap.bytes_per_s(), sym.bytes_per_s());
    }

    #[test]
    fn crossing_power_exceeds_equivalent_plain_transport() {
        // The converter pays level shifting on top of FIFO energy: moving
        // traffic across islands must cost more than an idle converter.
        let m = model();
        let f = Frequency::from_mhz(400.0);
        let idle = m.power(f, f, Bandwidth::ZERO);
        let busy = m.power(f, f, Bandwidth::from_mbps(400.0));
        assert!(
            busy.mw() > idle.mw() + 0.5,
            "traffic energy should dominate"
        );
    }

    #[test]
    fn both_clock_domains_contribute_idle_power() {
        let m = model();
        let one = m.power(Frequency::from_mhz(400.0), Frequency::ZERO, Bandwidth::ZERO);
        let two = m.power(
            Frequency::from_mhz(400.0),
            Frequency::from_mhz(400.0),
            Bandwidth::ZERO,
        );
        assert!((two.mw() / one.mw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn area_is_small_but_nonzero() {
        let a = model().area().mm2();
        assert!(a > 0.001 && a < 0.05);
    }
}
