//! Network interface (NI) model.

use crate::technology::Technology;
use crate::units::{Area, Bandwidth, Frequency, Power};

/// Analytic model of a network interface.
///
/// An NI converts the core's protocol (e.g. OCP/AXI) to the network packet
/// format and bridges the core clock to the island's NoC clock (§3.1 of the
/// paper: *"The NIs also perform clock frequency conversion, if the cores are
/// running at different frequencies than the switches in the VI"*).
#[derive(Debug, Clone, PartialEq)]
pub struct NiModel {
    tech: Technology,
    width_bits: usize,
}

impl NiModel {
    /// Creates an NI model for `width_bits`-wide flits.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    pub fn new(tech: &Technology, width_bits: usize) -> Self {
        assert!(width_bits > 0, "NI width must be positive");
        NiModel {
            tech: tech.clone(),
            width_bits,
        }
    }

    /// Silicon area of one NI (packetization buffers + protocol FSM).
    pub fn area(&self) -> Area {
        Area::from_mm2(0.009 * self.width_bits as f64 / 32.0 + 0.003)
    }

    /// Packetization/depacketization latency through the NI, in NoC cycles.
    pub fn latency_cycles(&self) -> u32 {
        2
    }

    /// Dynamic power at NoC-side clock `freq` moving `bandwidth` of traffic.
    pub fn power(&self, freq: Frequency, bandwidth: Bandwidth) -> Power {
        let w = self.width_bits as f64 / 32.0;
        let idle = Power::from_mw(freq.mhz() * 0.0011 * w);
        let e_bit_pj = 0.22 * self.tech.activity_factor / 0.5;
        let traffic = Power::from_watts(bandwidth.bits_per_s() * e_bit_pj * 1e-12);
        idle + traffic
    }

    /// Leakage power (ungated).
    pub fn leakage_power(&self) -> Power {
        Power::from_mw(self.area().mm2() * self.tech.leak_density_mw_per_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NiModel {
        NiModel::new(&Technology::cmos_65nm(), 32)
    }

    #[test]
    fn power_grows_with_frequency_and_traffic() {
        let ni = model();
        let base = ni.power(Frequency::from_mhz(200.0), Bandwidth::ZERO);
        let faster = ni.power(Frequency::from_mhz(400.0), Bandwidth::ZERO);
        let loaded = ni.power(Frequency::from_mhz(200.0), Bandwidth::from_mbps(400.0));
        assert!(faster.mw() > base.mw());
        assert!(loaded.mw() > base.mw());
    }

    #[test]
    fn calibration_sub_milliwatt_idle() {
        let ni = model();
        let p = ni.power(Frequency::from_mhz(400.0), Bandwidth::ZERO);
        assert!(
            p.mw() < 1.0,
            "idle NI should be well under a mW, got {}",
            p.mw()
        );
    }

    #[test]
    fn area_is_small() {
        let a = model().area().mm2();
        assert!(a > 0.005 && a < 0.05);
    }

    #[test]
    fn latency_is_fixed_small() {
        assert_eq!(model().latency_cycles(), 2);
    }

    #[test]
    fn leakage_proportional_to_area() {
        let ni = model();
        let expect = ni.area().mm2() * Technology::cmos_65nm().leak_density_mw_per_mm2;
        assert!((ni.leakage_power().mw() - expect).abs() < 1e-12);
    }
}
