//! Crossbar switch model.

use crate::technology::Technology;
use crate::units::{Area, Bandwidth, Frequency, Power};

/// Hard upper bound on switch radix considered by the synthesis flow.
///
/// Beyond this the crossbar/arbiter timing model is extrapolating too far to
/// be meaningful; the paper's benchmarks never approach it.
pub const MAX_RADIX: usize = 64;

/// Analytic model of a `inputs × outputs` wormhole switch with `width_bits`
/// flit width.
///
/// Captures the properties the synthesis algorithm consumes:
///
/// * [`SwitchModel::max_frequency`] — the critical path through arbitration
///   and the crossbar grows with the port count, so bigger switches clock
///   slower. Inverted by [`max_size_at`](SwitchModel::max_size_at) to get the
///   paper's `max_sw_size_j` per island.
/// * [`SwitchModel::idle_power`] — clock-tree + control dynamic power, paid
///   at the island frequency regardless of traffic.
/// * [`SwitchModel::traffic_power`] — datapath energy proportional to the
///   bandwidth actually routed through the switch.
/// * [`SwitchModel::area`] / [`SwitchModel::leakage_power`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchModel {
    tech: Technology,
    inputs: usize,
    outputs: usize,
    width_bits: usize,
}

impl SwitchModel {
    /// Creates a switch model.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`, `outputs` or `width_bits` is zero, or the radix
    /// exceeds [`MAX_RADIX`].
    pub fn new(tech: &Technology, inputs: usize, outputs: usize, width_bits: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "switch needs ports");
        assert!(width_bits > 0, "flit width must be positive");
        assert!(
            inputs.max(outputs) <= MAX_RADIX,
            "switch radix {} exceeds MAX_RADIX {}",
            inputs.max(outputs),
            MAX_RADIX
        );
        SwitchModel {
            tech: tech.clone(),
            inputs,
            outputs,
            width_bits,
        }
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Flit width in bits.
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Port count used by the timing model (`max(inputs, outputs)`).
    pub fn radix(&self) -> usize {
        self.inputs.max(self.outputs)
    }

    /// Critical-path delay in nanoseconds.
    fn critical_path_ns(tech: &Technology, radix: usize) -> f64 {
        tech.switch_delay_base_ns + tech.switch_delay_per_port_ns * radix.max(2) as f64
    }

    /// Maximum clock frequency this switch can run at.
    pub fn max_frequency(&self) -> Frequency {
        Frequency::from_hz(1e9 / Self::critical_path_ns(&self.tech, self.radix()))
    }

    /// The largest switch radix that still meets timing at `freq`
    /// (the paper's `max_sw_size_j`).
    ///
    /// Always at least 2 (a degenerate 1×1 "switch" is never useful) and at
    /// most [`MAX_RADIX`].
    pub fn max_size_at(tech: &Technology, freq: Frequency) -> usize {
        if freq.hz() <= 0.0 {
            return MAX_RADIX;
        }
        // Tiny relative slack: a switch running at exactly its own maximum
        // frequency must not be rejected by floating-point rounding.
        let budget_ns = 1e9 / freq.hz() * (1.0 + 1e-9);
        let mut size = 2;
        while size < MAX_RADIX && Self::critical_path_ns(tech, size + 1) <= budget_ns {
            size += 1;
        }
        size
    }

    /// Silicon area of buffers + crossbar + control.
    pub fn area(&self) -> Area {
        let w = self.width_bits as f64 / 32.0;
        let xbar = 0.0011 * self.inputs as f64 * self.outputs as f64 * w;
        let buffers = 0.0021 * (self.inputs + self.outputs) as f64 * w;
        let control = 0.004;
        Area::from_mm2(xbar + buffers + control)
    }

    /// Clock/control dynamic power at `freq` with no traffic.
    pub fn idle_power(&self, freq: Frequency) -> Power {
        let ports = (self.inputs + self.outputs) as f64;
        let w = self.width_bits as f64 / 32.0;
        // mW per MHz coefficients: clock tree + per-port buffer/control
        // toggling. Calibrated so a 26-core SoC's NoC lands in the paper's
        // 20-100 mW band and per-island frequency scaling is worth a
        // double-digit percentage (Figure 2's communication-partitioning dip).
        let mw = freq.mhz() * (0.002 + 0.0014 * ports * w);
        Power::from_mw(mw)
    }

    /// Datapath power for `bandwidth` bytes/s traversing the switch.
    ///
    /// Energy per bit grows mildly with port count (longer crossbar wires).
    pub fn traffic_power(&self, bandwidth: Bandwidth) -> Power {
        let e_bit_pj = 0.06 + 0.0015 * (self.inputs + self.outputs) as f64;
        Power::from_watts(
            bandwidth.bits_per_s() * e_bit_pj * 1e-12 * self.tech.activity_factor / 0.5,
        )
    }

    /// Leakage power (ungated).
    pub fn leakage_power(&self) -> Power {
        Power::from_mw(self.area().mm2() * self.tech.leak_density_mw_per_mm2)
    }

    /// Total power: idle + traffic + leakage.
    pub fn total_power(&self, freq: Frequency, bandwidth: Bandwidth) -> Power {
        self.idle_power(freq) + self.traffic_power(bandwidth) + self.leakage_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::cmos_65nm()
    }

    #[test]
    fn bigger_switches_clock_slower() {
        let t = tech();
        let small = SwitchModel::new(&t, 3, 3, 32);
        let big = SwitchModel::new(&t, 16, 16, 32);
        assert!(small.max_frequency().hz() > big.max_frequency().hz());
    }

    #[test]
    fn max_size_shrinks_with_frequency() {
        let t = tech();
        let slow = SwitchModel::max_size_at(&t, Frequency::from_mhz(200.0));
        let fast = SwitchModel::max_size_at(&t, Frequency::from_mhz(1100.0));
        assert!(slow >= fast, "slow {slow} >= fast {fast}");
        assert!(fast >= 2);
        assert!(slow <= MAX_RADIX);
    }

    #[test]
    fn max_size_is_consistent_with_max_frequency() {
        let t = tech();
        for radix in [2usize, 4, 8, 16] {
            let sw = SwitchModel::new(&t, radix, radix, 32);
            let f = sw.max_frequency();
            let allowed = SwitchModel::max_size_at(&t, f);
            assert!(
                allowed >= radix,
                "switch of radix {radix} must be allowed at its own f_max (got {allowed})"
            );
        }
    }

    #[test]
    fn zero_frequency_allows_max_radix() {
        assert_eq!(
            SwitchModel::max_size_at(&tech(), Frequency::ZERO),
            MAX_RADIX
        );
    }

    #[test]
    fn idle_power_scales_with_frequency_and_ports() {
        let t = tech();
        let sw = SwitchModel::new(&t, 5, 5, 32);
        let p1 = sw.idle_power(Frequency::from_mhz(200.0));
        let p2 = sw.idle_power(Frequency::from_mhz(400.0));
        assert!((p2.mw() / p1.mw() - 2.0).abs() < 1e-9, "linear in f");
        let big = SwitchModel::new(&t, 10, 10, 32);
        assert!(big.idle_power(Frequency::from_mhz(200.0)).mw() > p1.mw());
    }

    #[test]
    fn traffic_power_scales_with_bandwidth() {
        let t = tech();
        let sw = SwitchModel::new(&t, 4, 4, 32);
        let p1 = sw.traffic_power(Bandwidth::from_mbps(100.0));
        let p2 = sw.traffic_power(Bandwidth::from_mbps(300.0));
        assert!((p2.mw() / p1.mw() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_is_in_published_range() {
        // A mid-size switch at a typical SoC NoC frequency should burn a few
        // mW — the order of magnitude behind the paper's 20-100 mW NoC total.
        let t = tech();
        let sw = SwitchModel::new(&t, 6, 6, 32);
        let p = sw.total_power(Frequency::from_mhz(400.0), Bandwidth::from_mbps(800.0));
        assert!(
            p.mw() > 1.0 && p.mw() < 15.0,
            "6x6@400MHz switch power {} mW outside plausible band",
            p.mw()
        );
        let a = sw.area().mm2();
        assert!(a > 0.01 && a < 0.2, "area {a} mm2 implausible");
    }

    #[test]
    fn wider_flits_cost_area_and_power() {
        let t = tech();
        let narrow = SwitchModel::new(&t, 4, 4, 32);
        let wide = SwitchModel::new(&t, 4, 4, 64);
        assert!(wide.area().mm2() > narrow.area().mm2());
        assert!(
            wide.idle_power(Frequency::from_mhz(400.0)).mw()
                > narrow.idle_power(Frequency::from_mhz(400.0)).mw()
        );
    }

    #[test]
    #[should_panic(expected = "switch needs ports")]
    fn rejects_portless_switch() {
        SwitchModel::new(&tech(), 0, 3, 32);
    }

    #[test]
    fn accessors_report_construction() {
        let sw = SwitchModel::new(&tech(), 3, 5, 32);
        assert_eq!(sw.inputs(), 3);
        assert_eq!(sw.outputs(), 5);
        assert_eq!(sw.width_bits(), 32);
        assert_eq!(sw.radix(), 5);
    }
}
