//! Leakage and power-gating arithmetic.
//!
//! The motivation of the paper: leakage can be 40 %+ of total SoC power [6],
//! and gating idle voltage islands recovers most of it — *if* the NoC
//! topology permits the shutdown. These helpers compute island leakage and
//! the residual after gating, used by the `tab2_leakage` experiment.

use crate::technology::Technology;
use crate::units::{Area, Power};

/// Leakage summary of one shutdown scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Leakage with every island powered.
    pub all_on: Power,
    /// Leakage with the scenario's idle islands gated.
    pub gated: Power,
}

impl LeakageReport {
    /// Leakage power saved by gating.
    pub fn saved(&self) -> Power {
        self.all_on - self.gated
    }

    /// Fraction of leakage removed (0..1).
    pub fn savings_fraction(&self) -> f64 {
        if self.all_on.watts() <= 0.0 {
            return 0.0;
        }
        self.saved().watts() / self.all_on.watts()
    }
}

/// Leakage power of a block of silicon of `area` in technology `tech`.
pub fn island_leakage(tech: &Technology, area: Area) -> Power {
    Power::from_mw(area.mm2() * tech.leak_density_mw_per_mm2)
}

/// Leakage of the same block after power gating (sleep transistors leave a
/// small residual).
pub fn gated_island_leakage(tech: &Technology, area: Area) -> Power {
    island_leakage(tech, area) * tech.gating_residual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_removes_most_leakage() {
        let t = Technology::cmos_65nm();
        let a = Area::from_mm2(10.0);
        let on = island_leakage(&t, a);
        let off = gated_island_leakage(&t, a);
        assert!(off.mw() < on.mw() * 0.1);
        assert!(off.mw() > 0.0, "residual is never exactly zero");
    }

    #[test]
    fn leakage_scales_with_area() {
        let t = Technology::cmos_65nm();
        let p1 = island_leakage(&t, Area::from_mm2(1.0));
        let p4 = island_leakage(&t, Area::from_mm2(4.0));
        assert!((p4.mw() / p1.mw() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn report_savings_fraction() {
        let r = LeakageReport {
            all_on: Power::from_mw(100.0),
            gated: Power::from_mw(30.0),
        };
        assert!((r.saved().mw() - 70.0).abs() < 1e-12);
        assert!((r.savings_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_leakage_report_is_safe() {
        let r = LeakageReport {
            all_on: Power::ZERO,
            gated: Power::ZERO,
        };
        assert_eq!(r.savings_fraction(), 0.0);
    }
}
