//! Property-based tests for the component models: the monotonicities the
//! synthesis algorithm relies on must hold over the whole parameter space.

use proptest::prelude::*;
use vi_noc_models::{
    Bandwidth, BisyncFifoModel, Frequency, LinkModel, NiModel, SwitchModel, Technology,
};

proptest! {
    /// Switch power strictly grows with frequency and with traffic.
    #[test]
    fn switch_power_monotone(
        ports in 1usize..24,
        f1 in 50.0f64..900.0,
        df in 10.0f64..500.0,
        bw in 0.0f64..4000.0,
        dbw in 10.0f64..2000.0,
    ) {
        let t = Technology::cmos_65nm();
        let sw = SwitchModel::new(&t, ports, ports, 32);
        let p1 = sw.idle_power(Frequency::from_mhz(f1));
        let p2 = sw.idle_power(Frequency::from_mhz(f1 + df));
        prop_assert!(p2 > p1);
        let q1 = sw.traffic_power(Bandwidth::from_mbps(bw));
        let q2 = sw.traffic_power(Bandwidth::from_mbps(bw + dbw));
        prop_assert!(q2 > q1);
    }

    /// Bigger switches are never faster, and `max_size_at` inverts
    /// `max_frequency` consistently.
    #[test]
    fn switch_timing_consistent(radix in 2usize..32, f in 50.0f64..1200.0) {
        let t = Technology::cmos_65nm();
        let sw = SwitchModel::new(&t, radix, radix, 32);
        let bigger = SwitchModel::new(&t, radix + 1, radix + 1, 32);
        prop_assert!(bigger.max_frequency() <= sw.max_frequency());
        // Any switch is allowed at its own maximum frequency.
        let allowed = SwitchModel::max_size_at(&t, sw.max_frequency());
        prop_assert!(allowed >= radix, "radix {radix} rejected at own f_max");
        // max_size_at is anti-monotone in frequency.
        let slow = SwitchModel::max_size_at(&t, Frequency::from_mhz(f));
        let fast = SwitchModel::max_size_at(&t, Frequency::from_mhz(f * 1.5));
        prop_assert!(slow >= fast);
    }

    /// Link power is linear in bandwidth and monotone in length; timing
    /// feasibility agrees with `max_length_mm`.
    #[test]
    fn link_model_consistent(
        len in 0.1f64..12.0,
        bw in 1.0f64..4000.0,
        f in 50.0f64..1000.0,
    ) {
        let t = Technology::cmos_65nm();
        let l = LinkModel::new(&t, 32);
        let p1 = l.traffic_power(len, Bandwidth::from_mbps(bw));
        let p2 = l.traffic_power(len, Bandwidth::from_mbps(2.0 * bw));
        prop_assert!((p2.mw() / p1.mw() - 2.0).abs() < 1e-6);
        let longer = l.traffic_power(len * 1.5, Bandwidth::from_mbps(bw));
        prop_assert!(longer > p1);

        let freq = Frequency::from_mhz(f);
        let max = l.max_length_mm(freq);
        if max > 0.0 {
            prop_assert!(l.is_feasible(max * 0.999, freq));
            prop_assert!(!l.is_feasible(max * 1.001 + 1e-9, freq));
        }
        // Capacity is width x frequency.
        prop_assert!((l.capacity(freq).bytes_per_s() - 4.0 * freq.hz()).abs() < 1.0);
    }

    /// Converter capacity is symmetric and limited by the slower domain;
    /// power is monotone in both clocks and in traffic.
    #[test]
    fn bisync_model_consistent(
        fa in 50.0f64..900.0,
        fb in 50.0f64..900.0,
        bw in 0.0f64..2000.0,
    ) {
        let t = Technology::cmos_65nm();
        let m = BisyncFifoModel::new(&t, 32);
        let a = Frequency::from_mhz(fa);
        let b = Frequency::from_mhz(fb);
        prop_assert_eq!(
            m.capacity(a, b).bytes_per_s(),
            m.capacity(b, a).bytes_per_s()
        );
        prop_assert!((m.capacity(a, b).bytes_per_s() - 4.0 * fa.min(fb) * 1e6).abs() < 1.0);
        let p = m.power(a, b, Bandwidth::from_mbps(bw));
        let p_loaded = m.power(a, b, Bandwidth::from_mbps(bw + 100.0));
        prop_assert!(p_loaded > p);
        let p_faster = m.power(Frequency::from_mhz(fa + 50.0), b, Bandwidth::from_mbps(bw));
        prop_assert!(p_faster > p);
        prop_assert_eq!(m.latency_cycles(), 4);
    }

    /// NI power is monotone in clock and traffic; leakage scales with area.
    #[test]
    fn ni_model_consistent(f in 50.0f64..900.0, bw in 0.0f64..3000.0) {
        let t = Technology::cmos_65nm();
        let ni = NiModel::new(&t, 32);
        let p = ni.power(Frequency::from_mhz(f), Bandwidth::from_mbps(bw));
        let pf = ni.power(Frequency::from_mhz(f + 100.0), Bandwidth::from_mbps(bw));
        let pb = ni.power(Frequency::from_mhz(f), Bandwidth::from_mbps(bw + 100.0));
        prop_assert!(pf > p);
        prop_assert!(pb > p);
        prop_assert!(ni.leakage_power().mw() > 0.0);
    }
}
