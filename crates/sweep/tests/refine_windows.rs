//! Coarse-to-fine refinement exactness: a refined sweep must agree with the
//! exhaustive fine sweep wherever its windows cover the grid, and its
//! checkpoints must refuse to merge with anything swept over different
//! windows.
//!
//! Together with the slack-certificate pruning (`tests/prune_exact.rs`)
//! this pins the ISSUE's headline pipeline — coarse sweep → windows around
//! the survivors → pruned fine sweep inside the windows — including its
//! ≥2× chain reduction against the exhaustive d26 fine grid (the
//! BENCH_sweep.json datapoint).

use std::collections::HashSet;

use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, frontier_seeds, json::Value, merge_checkpoints, parse_frontier_file, run_shard,
    run_shard_pruned, shard_checkpoint_json, validate_frontier_source, windows_from_frontier,
    GridConfig, GridDescriptor, RefineParams, Shard, ShardRun, SweepGrid,
};

const PARTITION: &str = "logical:6";

/// The d26 fine grid of `tests/prune_exact.rs`: boost axis on, two scales.
fn fine_grid() -> GridConfig {
    GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.12],
        max_intermediate: 4,
    }
}

/// The refinement parameters of the benchmarked pipeline: full boost box,
/// surviving base indices only, nearby scales.
fn pipeline_params() -> RefineParams {
    RefineParams {
        boost_radius: 1,
        base_radius: 0,
        scale_window: 0.25,
    }
}

fn frontier_entries(file: &str) -> &str {
    file.split_once("\n\"frontier\":[")
        .expect("frontier file has a frontier section")
        .1
}

/// Runs the coarse (paper) sweep and returns its frontier file + run.
fn coarse_frontier(spec: &SocSpec, vi: &ViAssignment, cfg: &SynthesisConfig) -> (String, ShardRun) {
    let coarse = SweepGrid::build(spec, vi, cfg, &GridConfig::default());
    let desc = GridDescriptor::for_grid(&coarse, spec.name(), PARTITION, cfg.seed);
    let run = run_shard(spec, vi, &coarse, Shard::full(), cfg);
    (frontier_json(&desc, &run), run)
}

/// Derives the fine grid restricted to windows around a coarse frontier,
/// the way the CLI's `refine` stage does.
fn refined_grid(
    spec: &SocSpec,
    vi: &ViAssignment,
    cfg: &SynthesisConfig,
    coarse_file: &str,
    fine: &GridConfig,
    params: &RefineParams,
) -> SweepGrid {
    let parsed = parse_frontier_file(coarse_file).expect("coarse frontier parses");
    validate_frontier_source(&parsed, spec.name(), PARTITION, cfg.seed)
        .expect("coarse frontier matches the experiment");
    let seeds = frontier_seeds(&parsed).expect("seeds extract");
    assert!(!seeds.is_empty(), "coarse frontier has surviving points");
    let windows = windows_from_frontier(&seeds, fine, params);
    assert!(!windows.is_empty(), "windows derived");
    SweepGrid::build_windowed(spec, vi, cfg, fine, windows)
}

/// The window-relevant coordinates of one frontier entry value.
fn entry_coords(entry: &Value, fine: &GridConfig) -> (usize, usize, Vec<usize>) {
    let scale = entry.get("scale").and_then(Value::as_f64).expect("scale");
    let scale_index = fine
        .freq_scales
        .iter()
        .position(|&s| s.to_bits() == scale.to_bits())
        .expect("entry scale is a fine-grid scale");
    let sweep_index = entry
        .get("point")
        .and_then(|p| p.get("sweep_index"))
        .and_then(Value::as_usize)
        .expect("sweep_index");
    let boosts: Vec<usize> = match entry.get("boosts").expect("boosts") {
        Value::Arr(bs) => bs.iter().map(|b| b.as_usize().expect("boost")).collect(),
        _ => panic!("boosts is not an array"),
    };
    (scale_index, sweep_index, boosts)
}

/// Windows wide enough to cover the whole fine grid collapse refinement to
/// the exhaustive sweep: entry bytes, shard merges and active-chain counts
/// all coincide with the full fine run's.
#[test]
fn full_coverage_refinement_reproduces_the_exhaustive_frontier_bytes() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let (coarse_file, _) = coarse_frontier(&soc, &vi, &cfg);
    let fine = fine_grid();
    let wide = RefineParams {
        boost_radius: 1,
        base_radius: 99,
        scale_window: 1.0,
    };
    let refined = refined_grid(&soc, &vi, &cfg, &coarse_file, &fine, &wide);
    let full = SweepGrid::build(&soc, &vi, &cfg, &fine);
    assert_eq!(
        refined.num_active_chains(),
        full.num_active_chains(),
        "wide windows must cover every active fine chain"
    );

    let full_desc = GridDescriptor::for_grid(&full, soc.name(), PARTITION, cfg.seed);
    let exhaustive = run_shard(&soc, &vi, &full, Shard::full(), &cfg);
    let exhaustive_file = frontier_json(&full_desc, &exhaustive);

    let refined_desc = GridDescriptor::for_grid(&refined, soc.name(), PARTITION, cfg.seed);
    let refined_run = run_shard_pruned(&soc, &vi, &refined, Shard::full(), &cfg);
    let refined_file = frontier_json(&refined_desc, &refined_run);

    assert_eq!(
        frontier_entries(&refined_file),
        frontier_entries(&exhaustive_file),
        "full-coverage refined frontier differs from the exhaustive frontier"
    );
    // Sharded refined runs still merge to the full refined emission.
    let files: Vec<String> = (0..3)
        .map(|i| {
            let run = run_shard_pruned(&soc, &vi, &refined, Shard::new(i, 3).unwrap(), &cfg);
            shard_checkpoint_json(&refined_desc, &run)
        })
        .collect();
    let merged = merge_checkpoints(&files).expect("refined shards merge");
    assert_eq!(
        merged, refined_file,
        "merged refined shards differ from the full refined run"
    );
}

/// Partial windows keep the guarantee the descriptor promises: every
/// exhaustive frontier entry whose chain lies inside some window appears
/// byte-identically in the refined output. (Entries outside the windows
/// are legitimately absent — that is what refinement skips.)
#[test]
fn refined_runs_keep_every_in_window_exhaustive_frontier_point() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let (coarse_file, _) = coarse_frontier(&soc, &vi, &cfg);
    let fine = fine_grid();

    let full = SweepGrid::build(&soc, &vi, &cfg, &fine);
    let full_desc = GridDescriptor::for_grid(&full, soc.name(), PARTITION, cfg.seed);
    let exhaustive = run_shard(&soc, &vi, &full, Shard::full(), &cfg);
    let exhaustive_file = frontier_json(&full_desc, &exhaustive);
    let exhaustive_parsed = parse_frontier_file(&exhaustive_file).unwrap();

    let mut covered = 0usize;
    let mut uncovered = 0usize;
    for params in [
        RefineParams::default(),
        pipeline_params(),
        RefineParams {
            boost_radius: 1,
            base_radius: 1,
            scale_window: 0.05,
        },
    ] {
        let refined = refined_grid(&soc, &vi, &cfg, &coarse_file, &fine, &params);
        let refined_desc = GridDescriptor::for_grid(&refined, soc.name(), PARTITION, cfg.seed);
        let refined_run = run_shard_pruned(&soc, &vi, &refined, Shard::full(), &cfg);
        let refined_file = frontier_json(&refined_desc, &refined_run);
        let refined_set: HashSet<String> = parse_frontier_file(&refined_file)
            .expect("refined frontier parses (incl. window validation)")
            .entries
            .iter()
            .map(|(_, v)| v.to_json())
            .collect();
        for (_, entry) in &exhaustive_parsed.entries {
            let (scale_index, sweep_index, boosts) = entry_coords(entry, &fine);
            let in_window = refined
                .windows()
                .iter()
                .any(|w| w.contains(scale_index, sweep_index, &boosts));
            if in_window {
                covered += 1;
                assert!(
                    refined_set.contains(&entry.to_json()),
                    "in-window exhaustive frontier entry missing from the refined \
                     frontier ({params:?}): {}",
                    entry.to_json()
                );
            } else {
                uncovered += 1;
            }
        }
    }
    assert!(covered > 0, "no exhaustive entry was ever inside a window");
    assert!(uncovered > 0, "every window set covered the whole frontier");
}

/// Descriptor mismatches are merge errors with path context: coarse vs
/// refined, differently-windowed, and incomplete refined shard sets must
/// all be rejected.
#[test]
fn mismatched_refinement_checkpoints_refuse_to_merge() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let (coarse_file, _) = coarse_frontier(&soc, &vi, &cfg);
    let fine = fine_grid();

    let coarse = SweepGrid::build(&soc, &vi, &cfg, &GridConfig::default());
    let coarse_desc = GridDescriptor::for_grid(&coarse, soc.name(), PARTITION, cfg.seed);
    let refined_a = refined_grid(
        &soc,
        &vi,
        &cfg,
        &coarse_file,
        &fine,
        &RefineParams::default(),
    );
    let desc_a = GridDescriptor::for_grid(&refined_a, soc.name(), PARTITION, cfg.seed);
    let refined_b = refined_grid(&soc, &vi, &cfg, &coarse_file, &fine, &pipeline_params());
    let desc_b = GridDescriptor::for_grid(&refined_b, soc.name(), PARTITION, cfg.seed);

    let shard_file = |grid: &SweepGrid, desc: &GridDescriptor, i: u64, n: u64| {
        let run = run_shard_pruned(&soc, &vi, grid, Shard::new(i, n).unwrap(), &cfg);
        shard_checkpoint_json(desc, &run)
    };

    // Coarse and refined shards describe different grids.
    let err = merge_checkpoints(&[
        shard_file(&coarse, &coarse_desc, 0, 2),
        shard_file(&refined_a, &desc_a, 1, 2),
    ])
    .unwrap_err();
    assert!(
        err.contains("different grids"),
        "coarse+refined merge: {err}"
    );

    // Two refinements of the same frontier with different windows differ
    // too — the windows are part of the descriptor.
    let err = merge_checkpoints(&[
        shard_file(&refined_a, &desc_a, 0, 2),
        shard_file(&refined_b, &desc_b, 1, 2),
    ])
    .unwrap_err();
    assert!(
        err.contains("different grids"),
        "differently-windowed merge: {err}"
    );

    // An incomplete refined shard set names the missing stripe.
    let err = merge_checkpoints(&[shard_file(&refined_a, &desc_a, 0, 2)]).unwrap_err();
    assert!(err.contains("shard 1/2 is missing"), "partial set: {err}");
}

/// The BENCH_sweep.json datapoint: on the d26 fine grid, the coarse →
/// refine → prune pipeline evaluates at most half the chains of the
/// exhaustive fine sweep while reproducing its frontier inside the
/// windows (previous tests).
#[test]
fn d26_pipeline_reduces_evaluated_chains_at_least_2x() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let (coarse_file, coarse_run) = coarse_frontier(&soc, &vi, &cfg);
    let fine = fine_grid();

    let full = SweepGrid::build(&soc, &vi, &cfg, &fine);
    let exhaustive = run_shard(&soc, &vi, &full, Shard::full(), &cfg);

    let refined = refined_grid(&soc, &vi, &cfg, &coarse_file, &fine, &pipeline_params());
    let refined_run = run_shard_pruned(&soc, &vi, &refined, Shard::full(), &cfg);

    let pipeline = coarse_run.stats.chains + refined_run.stats.chains;
    assert!(
        pipeline * 2 <= exhaustive.stats.chains,
        "pipeline evaluated {pipeline} chains ({} coarse + {} refined, {} pruned) — \
         more than half the exhaustive fine sweep's {}",
        coarse_run.stats.chains,
        refined_run.stats.chains,
        refined_run.pruned_chains,
        exhaustive.stats.chains
    );
}
