//! Dominance-pruning exactness: slack-certified skips must change *nothing*
//! about the frontier. These tests pin, golden on the bundled benchmarks and
//! property-based on random synthetic SoCs:
//!
//! * the pruned full run's frontier section is byte-identical to the
//!   unpruned run's (the stats line legitimately differs — skips count as
//!   inactive chains);
//! * merged pruned shard sets reproduce the full pruned emission byte for
//!   byte (the skip set is a pure function of the grid, never the shard);
//! * every chain the certificate skips is dominated when force-evaluated —
//!   the semantic claim behind the byte comparison.
//!
//! The certificate is deliberately conservative: the d26 fine grid's
//! frontier lives on boosted chains of its port- and capacity-stressed
//! islands, so only the unstressed islands' boost codes may ever be
//! skipped. The headline ≥2× chain reduction of the ISSUE comes from the
//! pruned *and refined* pipeline (`tests/refine_windows.rs` and
//! BENCH_sweep.json), where the refinement windows exclude most of the
//! fine grid outright.

use proptest::prelude::*;
use vi_noc_core::{
    evaluate_candidate_chain, evaluate_candidate_chain_with_certificate, island_switch_assignment,
    CandidateOutcome, SynthesisConfig,
};
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, merge_checkpoints, run_shard, run_shard_pruned, shard_checkpoint_json,
    GridConfig, GridDescriptor, Shard, ShardRun, SweepGrid,
};

/// The frontier-entry section of a frontier file (everything from the
/// `"frontier":[` line on). Pruned and unpruned emissions agree here;
/// their stats lines differ by design.
fn frontier_entries(file: &str) -> &str {
    file.split_once("\n\"frontier\":[")
        .expect("frontier file has a frontier section")
        .1
}

/// Runs the grid unpruned and pruned, asserts frontier equality and
/// counter consistency, checks `n`-way pruned shard sets merge to the full
/// pruned emission, and returns the pruned full run for ratio checks.
fn check_prune_exactness(
    label: &str,
    spec: &SocSpec,
    vi: &ViAssignment,
    grid_cfg: &GridConfig,
    cfg: &SynthesisConfig,
    shard_counts: &[u64],
) -> ShardRun {
    let grid = SweepGrid::build(spec, vi, cfg, grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, spec.name(), label, cfg.seed);
    let full = run_shard(spec, vi, &grid, Shard::full(), cfg);
    let direct = frontier_json(&desc, &full);
    let pruned = run_shard_pruned(spec, vi, &grid, Shard::full(), cfg);
    let pruned_file = frontier_json(&desc, &pruned);

    assert_eq!(
        frontier_entries(&pruned_file),
        frontier_entries(&direct),
        "{label}: pruned frontier differs from the exhaustive frontier"
    );
    // Skips fold into the inactive counter: the chain partition is intact.
    assert_eq!(full.pruned_chains, 0, "{label}: unpruned run counted skips");
    assert_eq!(
        full.stats.chains,
        pruned.stats.chains + pruned.pruned_chains,
        "{label}: pruned + evaluated must cover every active chain"
    );
    assert_eq!(
        pruned.stats.inactive_chains,
        full.stats.inactive_chains + pruned.pruned_chains,
        "{label}: skips must count as inactive chains"
    );

    for &n in shard_counts {
        let files: Vec<String> = (0..n)
            .map(|i| {
                let run = run_shard_pruned(spec, vi, &grid, Shard::new(i, n).unwrap(), cfg);
                shard_checkpoint_json(&desc, &run)
            })
            .collect();
        let merged = merge_checkpoints(&files).unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
        assert_eq!(
            merged, pruned_file,
            "{label}: merge of {n} pruned shards differs from the full pruned run"
        );
    }
    pruned
}

/// Recomputes the skip set from first principles (reference certificate per
/// `(scale, base)` block), force-evaluates every skipped chain, and asserts
/// each of its feasible points is dominated by the pruned run's frontier.
/// Also pins the recomputed skip count to [`ShardRun::pruned_chains`].
fn check_skipped_chains_dominated(
    label: &str,
    spec: &SocSpec,
    vi: &ViAssignment,
    grid_cfg: &GridConfig,
    cfg: &SynthesisConfig,
) {
    let grid = SweepGrid::build(spec, vi, cfg, grid_cfg);
    let pruned = run_shard_pruned(spec, vi, &grid, Shard::full(), cfg);
    let mut skipped = 0u64;
    for chain_id in 0..grid.num_chains() {
        let Some(chain) = grid.chain(chain_id) else {
            continue;
        };
        if chain.boosts.iter().all(|&b| b == 0) {
            continue;
        }
        let plan = grid.plan(chain.scale_index);
        let counts = grid.base_counts(chain.scale_index, chain.base_sweep_index);
        let reference = grid.reference_candidates(chain.scale_index, chain.base_sweep_index);
        let assignment = island_switch_assignment(grid.vcgs(), plan, counts, cfg);
        let cert =
            evaluate_candidate_chain_with_certificate(spec, vi, plan, &assignment, &reference, cfg)
                .1;
        if !cert.certifies_skip(&chain.boosts) {
            continue;
        }
        skipped += 1;
        let assignment = island_switch_assignment(grid.vcgs(), plan, &chain.counts, cfg);
        let candidates = grid.candidates_of(&chain);
        let outcomes = evaluate_candidate_chain(spec, vi, plan, &assignment, &candidates, cfg);
        for (k, outcome) in outcomes.into_iter().enumerate() {
            if let CandidateOutcome::Feasible(point) = outcome {
                let key = point.pareto_key(grid.ordinal(chain_id, k));
                assert!(
                    pruned.frontier.is_dominated(&key),
                    "{label}: skipped chain {chain_id} candidate {k} is NOT dominated \
                     (key {key:?}) — the slack certificate over-promised"
                );
            }
        }
    }
    assert_eq!(
        skipped, pruned.pruned_chains,
        "{label}: independently recomputed skip set disagrees with the runner"
    );
}

fn fine_grid() -> GridConfig {
    GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.12],
        max_intermediate: 4,
    }
}

/// Golden: d26 at the paper's island count on the fine grid, split
/// 2/3/7 ways, with a guarantee that the certificate actually fires.
#[test]
fn d26_fine_grid_prunes_exactly() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let pruned = check_prune_exactness("d26-fine", &soc, &vi, &fine_grid(), &cfg, &[2, 3, 7]);
    assert!(pruned.pruned_chains > 0, "d26-fine: nothing was pruned");
}

/// Golden: the largest benchmark (d36) with a boost axis.
#[test]
fn d36_grid_prunes_exactly() {
    let soc = benchmarks::d36_tablet();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 3,
    };
    check_prune_exactness("d36", &soc, &vi, &grid_cfg, &cfg, &[3]);
}

/// Golden: a communication partition (retry-heavy island shapes, the
/// adversarial case for slack certification).
#[test]
fn communication_partition_prunes_exactly() {
    let soc = benchmarks::d16_settop();
    let vi = partition::communication_partition(&soc, 4, 1).unwrap();
    let cfg = SynthesisConfig::default();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 3,
    };
    check_prune_exactness("d16-comm", &soc, &vi, &grid_cfg, &cfg, &[2, 7]);
}

/// Golden semantic check on d26: every skipped chain is dominated when
/// force-evaluated, and the recomputed skip set matches the runner's.
#[test]
fn d26_skipped_chains_are_dominated_when_forced() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    check_skipped_chains_dominated("d26-fine", &soc, &vi, &fine_grid(), &cfg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: pruning is exact on random synthetic SoCs, island counts,
    /// and grid axes.
    #[test]
    fn random_socs_prune_exactly(
        n_cores in 6usize..14,
        seed in 0u64..32,
        k in 2usize..5,
        second_scale in 0usize..3,
    ) {
        let spec = vi_noc_soc::generate_synthetic(&vi_noc_soc::SyntheticConfig {
            n_cores,
            seed,
            ..vi_noc_soc::SyntheticConfig::default()
        });
        let Ok(vi) = partition::logical_partition(&spec, k) else {
            return Ok(());
        };
        let mut freq_scales = vec![1.0];
        if second_scale > 0 {
            freq_scales.push(1.0 + 0.1 * second_scale as f64);
        }
        let grid_cfg = GridConfig {
            max_boost: 1,
            freq_scales,
            max_intermediate: 2,
        };
        let cfg = SynthesisConfig::default();
        let label = format!("synthetic n={n_cores} seed={seed} k={k}");
        check_prune_exactness(&label, &spec, &vi, &grid_cfg, &cfg, &[2, 3]);
        check_skipped_chains_dominated(&label, &spec, &vi, &grid_cfg, &cfg);
    }
}
