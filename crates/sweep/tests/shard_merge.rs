//! Shard/merge exactness: the whole point of the sharded sweep is that
//! splitting the grid across processes changes *nothing*. These tests pin
//! `merge(shards(n)) == unsharded run`, byte for byte at the file level and
//! key for key in memory, for shard counts that do and do not divide the
//! grid size — golden on the bundled benchmarks, property-based on random
//! synthetic SoCs.

use proptest::prelude::*;
use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, merge_checkpoints, run_shard, shard_checkpoint_json, GridConfig, GridDescriptor,
    Shard, SweepGrid, SweepStats,
};

fn descriptor(
    spec: &SocSpec,
    tag: &str,
    grid: &SweepGrid,
    cfg: &SynthesisConfig,
) -> GridDescriptor {
    GridDescriptor::for_grid(grid, spec.name(), tag, cfg.seed)
}

/// Runs the grid unsharded and as `n` shard processes would, asserts the
/// merged frontier file equals the unsharded emission byte for byte, and
/// returns the unsharded run's stats for additional checks.
fn check_shard_exactness(
    label: &str,
    spec: &SocSpec,
    vi: &ViAssignment,
    grid_cfg: &GridConfig,
    cfg: &SynthesisConfig,
    shard_counts: &[u64],
) -> SweepStats {
    let grid = SweepGrid::build(spec, vi, cfg, grid_cfg);
    let desc = descriptor(spec, label, &grid, cfg);
    let full = run_shard(spec, vi, &grid, Shard::full(), cfg);
    let direct = frontier_json(&desc, &full);

    for &n in shard_counts {
        let files: Vec<String> = (0..n)
            .map(|i| {
                let run = run_shard(spec, vi, &grid, Shard::new(i, n).unwrap(), cfg);
                shard_checkpoint_json(&desc, &run)
            })
            .collect();
        let merged = merge_checkpoints(&files).unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
        assert_eq!(
            merged, direct,
            "{label}: merge of {n} shards differs from the unsharded frontier"
        );
    }
    full.stats
}

/// Golden: d26 at the paper's island count, on a grid ~27x finer than the
/// classic sweep (boost + a second frequency plan), split 1/2/3/7 ways.
/// 7 does not divide the chain count evenly.
#[test]
fn d26_fine_grid_shards_merge_exactly() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let cfg = SynthesisConfig::default();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.12],
        max_intermediate: 4,
    };
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let classic = vi_noc_core::SweepPlan::build(&soc, &vi, &cfg);
    assert!(
        grid.num_candidates() >= 10 * classic.len() as u64,
        "fine grid ({}) must be >= 10x the classic sweep ({})",
        grid.num_candidates(),
        classic.len()
    );
    assert!(
        grid.num_chains() % 7 != 0,
        "want a shard count that does not divide the grid"
    );
    let stats = check_shard_exactness("d26-fine", &soc, &vi, &grid_cfg, &cfg, &[1, 2, 3, 7]);
    assert!(stats.feasible > 0);
}

/// Golden: the default (paper-equivalent) grid on every suite benchmark,
/// split 3 ways.
#[test]
fn suite_default_grids_shard_exactly() {
    for (soc, k) in benchmarks::suite() {
        let vi = partition::logical_partition(&soc, k).unwrap();
        let cfg = SynthesisConfig::default();
        check_shard_exactness(soc.name(), &soc, &vi, &GridConfig::default(), &cfg, &[3]);
    }
}

/// Golden: a communication partition (retry-heavy island shapes) with a
/// boost axis, split 2 and 7 ways.
#[test]
fn communication_partition_shards_exactly() {
    let soc = benchmarks::d16_settop();
    let vi = partition::communication_partition(&soc, 4, 1).unwrap();
    let cfg = SynthesisConfig::default();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 3,
    };
    check_shard_exactness("d16-comm", &soc, &vi, &grid_cfg, &cfg, &[2, 7]);
}

/// Sequential and parallel shard runs emit identical checkpoint bytes (the
/// block-parallel fold is exact too).
#[test]
fn parallel_shard_checkpoints_match_sequential() {
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).unwrap();
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.2],
        max_intermediate: 2,
    };
    let seq_cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let par_cfg = SynthesisConfig {
        parallel: true,
        ..SynthesisConfig::default()
    };
    let grid = SweepGrid::build(&soc, &vi, &seq_cfg, &grid_cfg);
    let desc = descriptor(&soc, "d12-par", &grid, &seq_cfg);
    for i in 0..2 {
        let shard = Shard::new(i, 2).unwrap();
        let seq = shard_checkpoint_json(&desc, &run_shard(&soc, &vi, &grid, shard, &seq_cfg));
        let par = shard_checkpoint_json(&desc, &run_shard(&soc, &vi, &grid, shard, &par_cfg));
        assert_eq!(seq, par, "shard {shard}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: shard/merge exactness holds on random synthetic SoCs,
    /// random island counts, and random grid axes.
    #[test]
    fn random_socs_shard_and_merge_exactly(
        n_cores in 6usize..14,
        seed in 0u64..32,
        k in 2usize..5,
        max_boost in 0usize..2,
        second_scale in 0usize..3,
    ) {
        let spec = vi_noc_soc::generate_synthetic(&vi_noc_soc::SyntheticConfig {
            n_cores,
            seed,
            ..vi_noc_soc::SyntheticConfig::default()
        });
        let Ok(vi) = partition::logical_partition(&spec, k) else {
            return Ok(());
        };
        let mut freq_scales = vec![1.0];
        if second_scale > 0 {
            freq_scales.push(1.0 + 0.1 * second_scale as f64);
        }
        let grid_cfg = GridConfig {
            max_boost,
            freq_scales,
            max_intermediate: 2,
        };
        let cfg = SynthesisConfig::default();
        check_shard_exactness(
            &format!("synthetic n={n_cores} seed={seed} k={k}"),
            &spec,
            &vi,
            &grid_cfg,
            &cfg,
            &[2, 3],
        );
    }
}
