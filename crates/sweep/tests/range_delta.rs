//! Differential proof of the lease/delta machinery: folding the streamed
//! [`RangeDelta`]s of *any* covering set of chain ranges — any chunking,
//! any delta granularity, any interleaving, resumed from any watermark —
//! reproduces the unsharded shard runner's frontier and stats exactly,
//! down to the emitted frontier file bytes. This is the invariant the
//! fleet coordinator's elastic re-leasing rests on.

use vi_noc_core::{ParetoFold, SynthesisConfig};
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, frontier_progress_json, run_range_deltas, run_shard, run_shard_pruned,
    ChainRange, GridConfig, GridDescriptor, RangeDelta, Shard, ShardProgress, SweepGrid,
};

fn setup() -> (SocSpec, ViAssignment, SynthesisConfig, SweepGrid) {
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).unwrap();
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0, 1.1],
        max_intermediate: 2,
    };
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    (soc, vi, cfg, grid)
}

/// Folds every delta of every range in `ranges` (cut at `every` positions
/// per delta) into one progress value, like the coordinator does.
fn fold_coverage(
    soc: &SocSpec,
    vi: &ViAssignment,
    cfg: &SynthesisConfig,
    grid: &SweepGrid,
    ranges: &[ChainRange],
    every: u64,
    prune: bool,
) -> ShardProgress {
    let mut progress = ShardProgress::new();
    for &range in ranges {
        let mut emit = |d: RangeDelta| {
            assert!(d.taken >= 1 && d.taken <= every.max(1), "delta sizing");
            progress.stats.add(&d.stats);
            for (key, entry) in d.entries {
                progress.frontier.offer(key, entry);
            }
            progress.chains_done += d.taken;
            Ok(())
        };
        run_range_deltas(soc, vi, grid, range, cfg, 0, every, prune, &mut emit).unwrap();
    }
    progress
}

#[test]
fn any_range_cut_and_delta_granularity_reproduces_the_full_frontier_bytes() {
    let (soc, vi, cfg, grid) = setup();
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
    let full = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
    let want = frontier_json(&desc, &full);

    for chunk in [1u64, 3, 7, grid.num_chains()] {
        for every in [1u64, 2, 5, 64] {
            let ranges = ChainRange::cut(grid.num_chains(), chunk);
            let progress = fold_coverage(&soc, &vi, &cfg, &grid, &ranges, every, false);
            assert_eq!(progress.chains_done, grid.num_chains());
            assert_eq!(progress.stats, full.stats, "chunk={chunk} every={every}");
            assert_eq!(
                frontier_progress_json(&desc, &progress),
                want,
                "chunk={chunk} every={every}: delta folds must be byte-identical"
            );
        }
    }
}

#[test]
fn pruned_deltas_reproduce_the_pruned_runner_exactly() {
    let (soc, vi, cfg, grid) = setup();
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
    let pruned = run_shard_pruned(&soc, &vi, &grid, Shard::full(), &cfg);
    let want = frontier_json(&desc, &pruned);

    let ranges = ChainRange::cut(grid.num_chains(), 5);
    let progress = fold_coverage(&soc, &vi, &cfg, &grid, &ranges, 2, true);
    assert_eq!(progress.stats, pruned.stats);
    assert_eq!(frontier_progress_json(&desc, &progress), want);

    // And the pruned frontier *entries* equal the unpruned ones (pruning
    // only moves counters) — the cross-check the CI smoke pins end to end.
    let unpruned = fold_coverage(&soc, &vi, &cfg, &grid, &ranges, 2, false);
    let strip = |s: &str| s.split("\n\"frontier\":[").nth(1).unwrap().to_string();
    assert_eq!(
        strip(&frontier_progress_json(&desc, &progress)),
        strip(&frontier_progress_json(&desc, &unpruned))
    );
}

#[test]
fn a_reissued_range_resumed_from_its_watermark_loses_nothing() {
    // Simulates a worker death: the first worker streams deltas up to an
    // acked watermark and dies; the range is re-leased `from` that
    // watermark. The combined fold must equal the uninterrupted run.
    let (soc, vi, cfg, grid) = setup();
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
    let full = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
    let want = frontier_json(&desc, &full);

    let ranges = ChainRange::cut(grid.num_chains(), 11);
    for killed_after in [0u64, 1, 2] {
        let mut progress = ShardProgress::new();
        for &range in &ranges {
            // First lease: the worker dies after `killed_after` acked
            // deltas; unacked work is discarded by construction (a delta
            // is folded only when emit succeeds — here: when we keep it).
            let mut acked = 0u64;
            let mut watermark = 0u64;
            let mut emit = |d: RangeDelta| {
                if acked == killed_after {
                    return Err("worker killed".to_string());
                }
                progress.stats.add(&d.stats);
                for (key, entry) in d.entries {
                    progress.frontier.offer(key, entry);
                }
                progress.chains_done += d.taken;
                watermark = d.from + d.taken;
                acked += 1;
                Ok(())
            };
            let died =
                run_range_deltas(&soc, &vi, &grid, range, &cfg, 0, 3, false, &mut emit).is_err();
            assert_eq!(died, watermark < range.len(), "kill schedule sanity");
            // Re-lease from the acked watermark (the fleet's re-issue).
            let mut emit = |d: RangeDelta| {
                assert!(
                    d.from >= watermark,
                    "re-issued lease starts at the watermark"
                );
                progress.stats.add(&d.stats);
                for (key, entry) in d.entries {
                    progress.frontier.offer(key, entry);
                }
                progress.chains_done += d.taken;
                Ok(())
            };
            run_range_deltas(
                &soc, &vi, &grid, range, &cfg, watermark, 3, false, &mut emit,
            )
            .unwrap();
        }
        assert_eq!(progress.chains_done, grid.num_chains());
        assert_eq!(progress.stats, full.stats, "killed_after={killed_after}");
        assert_eq!(
            frontier_progress_json(&desc, &progress),
            want,
            "killed_after={killed_after}: kill + re-lease must be byte-exact"
        );
    }
}

#[test]
fn delta_entries_survive_a_wire_round_trip_byte_for_byte() {
    // Entries crossing the fleet wire are parsed into a JSON value and
    // re-serialized by the coordinator; the writers are parse→write fixed
    // points, so no byte may change.
    let (soc, vi, cfg, grid) = setup();
    let range = ChainRange::full(grid.num_chains());
    let mut entries: Vec<(vi_noc_core::ParetoKey, String)> = Vec::new();
    let mut emit = |d: RangeDelta| {
        entries.extend(d.entries);
        Ok(())
    };
    run_range_deltas(&soc, &vi, &grid, range, &cfg, 0, 7, false, &mut emit).unwrap();
    assert!(!entries.is_empty());
    let mut fold: ParetoFold<String> = ParetoFold::new();
    for (key, entry) in entries {
        let round_tripped = vi_noc_sweep::json::parse(&entry).unwrap().to_json();
        assert_eq!(round_tripped, entry, "entry bytes survive parse→write");
        fold.offer(key, entry);
    }
    let full = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
    assert_eq!(fold.len(), full.frontier.len());
}
