//! Mid-shard checkpoint resume: a shard killed partway through its stripe
//! and resumed from its checkpoint file must produce a final checkpoint
//! byte-identical to an uninterrupted run's.

use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, frontier_progress_json, merge_checkpoints, parse_shard_checkpoint, resume_shard,
    run_shard, shard_checkpoint_json, shard_progress_json, GridConfig, GridDescriptor, Shard,
    ShardProgress, SweepGrid,
};

fn setup() -> (SocSpec, ViAssignment, SynthesisConfig, GridConfig) {
    let soc = benchmarks::d12_auto();
    let vi = partition::logical_partition(&soc, 4).unwrap();
    let cfg = SynthesisConfig {
        parallel: false,
        ..SynthesisConfig::default()
    };
    let grid_cfg = GridConfig {
        max_boost: 1,
        freq_scales: vec![1.0],
        max_intermediate: 2,
    };
    (soc, vi, cfg, grid_cfg)
}

#[test]
fn kill_and_resume_reproduces_uninterrupted_bytes() {
    let (soc, vi, cfg, grid_cfg) = setup();
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);

    for shard in [Shard::full(), Shard::new(1, 3).unwrap()] {
        // Reference: the one-shot runner's checkpoint.
        let run = run_shard(&soc, &vi, &grid, shard, &cfg);
        let reference = shard_checkpoint_json(&desc, &run);

        // One uninterrupted resumable run matches it.
        let mut progress = ShardProgress::new();
        assert!(resume_shard(
            &soc,
            &vi,
            &grid,
            shard,
            &cfg,
            &mut progress,
            None
        ));
        assert_eq!(shard_progress_json(&desc, shard, &progress), reference);

        // Kill-and-resume: every 2 stripe positions the run is "killed" —
        // its state survives only as checkpoint file bytes, which a fresh
        // process parses back before continuing.
        let mut progress = ShardProgress::new();
        let mut rounds = 0;
        loop {
            let finished = resume_shard(&soc, &vi, &grid, shard, &cfg, &mut progress, Some(2));
            let file = shard_progress_json(&desc, shard, &progress);
            let parsed = parse_shard_checkpoint(&file).unwrap();
            assert_eq!(parsed.shard, shard);
            assert_eq!(parsed.chains_done, Some(progress.chains_done));
            progress = parsed.to_progress();
            rounds += 1;
            if finished {
                break;
            }
        }
        assert!(rounds >= 2, "stripe long enough to actually interrupt");
        assert_eq!(
            shard_progress_json(&desc, shard, &progress),
            reference,
            "shard {shard}: resumed bytes differ from uninterrupted bytes"
        );
    }
}

#[test]
fn resumed_unsharded_run_emits_the_exact_frontier_file() {
    let (soc, vi, cfg, grid_cfg) = setup();
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);

    let run = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
    let reference = frontier_json(&desc, &run);

    let mut progress = ShardProgress::new();
    while !resume_shard(
        &soc,
        &vi,
        &grid,
        Shard::full(),
        &cfg,
        &mut progress,
        Some(5),
    ) {}
    assert_eq!(frontier_progress_json(&desc, &progress), reference);
}

#[test]
fn merge_rejects_partial_checkpoints() {
    let (soc, vi, cfg, grid_cfg) = setup();
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);

    let shard = Shard::full();
    let mut progress = ShardProgress::new();
    let finished = resume_shard(&soc, &vi, &grid, shard, &cfg, &mut progress, Some(2));
    assert!(!finished, "grid must be larger than the interrupt budget");
    let partial = shard_progress_json(&desc, shard, &progress);
    let err = merge_checkpoints(&[partial]).unwrap_err();
    assert!(err.contains("partial"), "{err}");

    // Driven to completion, the same state merges fine.
    assert!(resume_shard(
        &soc,
        &vi,
        &grid,
        shard,
        &cfg,
        &mut progress,
        None
    ));
    let complete = shard_progress_json(&desc, shard, &progress);
    assert!(merge_checkpoints(&[complete]).is_ok());
}

#[test]
fn complete_checkpoints_record_the_full_watermark() {
    let (soc, vi, cfg, grid_cfg) = setup();
    let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
    let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
    for i in 0..2 {
        let shard = Shard::new(i, 2).unwrap();
        let run = run_shard(&soc, &vi, &grid, shard, &cfg);
        let parsed = parse_shard_checkpoint(&shard_checkpoint_json(&desc, &run)).unwrap();
        assert_eq!(
            parsed.chains_done,
            Some(shard.stripe_len(grid.num_chains()))
        );
        assert!(parsed.is_complete().unwrap());
    }
}
