//! The streaming shard runner: evaluate a shard's chains, fold outcomes
//! into a Pareto frontier as they complete, never materialize the space.

use crate::grid::{ChainSpec, SweepGrid};
use crate::shard::{ChainRange, Shard};
use rayon::prelude::*;
use std::collections::HashMap;
use vi_noc_core::{
    evaluate_candidate_chain, evaluate_candidate_chain_with_certificate, island_switch_assignment,
    CandidateOutcome, DesignPoint, ParetoFold, ParetoKey, SlackCertificate, SynthesisConfig,
};
use vi_noc_soc::{SocSpec, ViAssignment};

/// Chains evaluated per fold step when [`SynthesisConfig::parallel`] is set:
/// a block is fanned out over rayon, its chain-local frontiers are merged
/// into the running fold, and everything else is dropped — so peak memory is
/// `O(block × chain frontier)`, independent of the grid size.
const PARALLEL_BLOCK: usize = 64;

/// One surviving design point with its full grid provenance.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Global candidate ordinal (`chain_id * chain_len + k`): the Pareto
    /// tiebreak, stable across any sharding.
    pub ordinal: u64,
    /// The chain that produced the point.
    pub chain_id: u64,
    /// Frequency-plan scale factor of the chain.
    pub scale: f64,
    /// Per-island switch-count boosts of the chain.
    pub boosts: Vec<usize>,
    /// The design point itself (provenance fields carry the base sweep
    /// index and the boosted switch counts).
    pub point: DesignPoint,
}

impl FrontierPoint {
    /// The point's dominance key.
    pub fn key(&self) -> ParetoKey {
        self.point.pareto_key(self.ordinal)
    }
}

/// Evaluation counters of one shard run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Chains evaluated (active chains owned by the shard).
    pub chains: u64,
    /// Chain ids skipped because their boost vector exceeds an island cap.
    pub inactive_chains: u64,
    /// Candidates that produced a feasible design point.
    pub feasible: u64,
    /// Candidates that were provable duplicates of a smaller-`k` candidate.
    pub duplicates: u64,
    /// Candidates with no constraint-satisfying allocation.
    pub infeasible: u64,
}

impl SweepStats {
    /// Component-wise sum (used when merging shard checkpoints).
    pub fn add(&mut self, other: &SweepStats) {
        self.chains += other.chains;
        self.inactive_chains += other.inactive_chains;
        self.feasible += other.feasible;
        self.duplicates += other.duplicates;
        self.infeasible += other.infeasible;
    }
}

/// Result of streaming one shard: the shard-local Pareto frontier plus
/// counters. The frontier of shard `0/1` *is* the full run's frontier.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The stripe that was run.
    pub shard: Shard,
    /// Evaluation counters.
    pub stats: SweepStats,
    /// Active chains skipped by dominance pruning ([`run_shard_pruned`]);
    /// always 0 for unpruned runs. Pruned chains also count into
    /// [`SweepStats::inactive_chains`] — this in-memory counter exists so
    /// callers can report the skip ratio, and is deliberately *not* part of
    /// the serialized checkpoint stats (checkpoint bytes are
    /// pruning-invariant only in the frontier section; the stats line
    /// already differs through `chains`/`inactive_chains`).
    pub pruned_chains: u64,
    /// Undominated outcomes of this stripe.
    pub frontier: ParetoFold<FrontierPoint>,
}

/// Memoized per-`(scale, base)` slack certificates backing the dominance
/// pruning of [`run_shard_pruned`].
///
/// For each `(scale_index, base_sweep_index)` block the oracle evaluates
/// the *reference* chain (the boost-free counts) once through
/// [`evaluate_candidate_chain_with_certificate`] and caches the resulting
/// [`SlackCertificate`]. A chain is skipped iff the certificate certifies
/// every island it boosts **and** the reference's canonical chain id is
/// active in the grid at hand (on windowed grids the dominating reference
/// can fall outside every window, in which case nothing in the block may
/// be pruned — the dominators would be missing from the fold).
///
/// The decision depends only on `(grid, chain)`, never on the shard, so
/// every shard of a pruned sweep skips the identical set and merged pruned
/// checkpoints stay consistent. Oracle evaluations are certificate-only:
/// they touch neither the stats nor the frontier (the reference chain's
/// owning shard folds it normally when its stripe position comes up).
struct SlackOracle<'a> {
    spec: &'a SocSpec,
    vi: &'a ViAssignment,
    grid: &'a SweepGrid,
    cfg: &'a SynthesisConfig,
    cache: HashMap<(usize, usize), SlackCertificate>,
}

impl<'a> SlackOracle<'a> {
    fn new(
        spec: &'a SocSpec,
        vi: &'a ViAssignment,
        grid: &'a SweepGrid,
        cfg: &'a SynthesisConfig,
    ) -> Self {
        SlackOracle {
            spec,
            vi,
            grid,
            cfg,
            cache: HashMap::new(),
        }
    }

    /// `true` when `chain` is provably dominated and may be skipped.
    fn should_skip(&mut self, chain: &ChainSpec) -> bool {
        if chain.boosts.iter().all(|&b| b == 0) {
            // Boost-free chains are the references everything else is
            // dominated by; they are never skipped.
            return false;
        }
        if !self.grid.windows().is_empty() {
            let canonical = self
                .grid
                .canonical_reference_id(chain.scale_index, chain.base_sweep_index);
            if self.grid.chain(canonical).is_none() {
                return false;
            }
        }
        let (spec, vi, grid, cfg) = (self.spec, self.vi, self.grid, self.cfg);
        let cert = self
            .cache
            .entry((chain.scale_index, chain.base_sweep_index))
            .or_insert_with(|| {
                let plan = grid.plan(chain.scale_index);
                let counts = grid.base_counts(chain.scale_index, chain.base_sweep_index);
                let assignment = island_switch_assignment(grid.vcgs(), plan, counts, cfg);
                let candidates =
                    grid.reference_candidates(chain.scale_index, chain.base_sweep_index);
                evaluate_candidate_chain_with_certificate(
                    spec,
                    vi,
                    plan,
                    &assignment,
                    &candidates,
                    cfg,
                )
                .1
            });
        cert.certifies_skip(&chain.boosts)
    }
}

/// Evaluates one chain and folds its feasible outcomes into a chain-local
/// frontier (at most `chain_len` entries; everything dominated is dropped
/// on the spot).
fn evaluate_chain(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    chain: &ChainSpec,
    cfg: &SynthesisConfig,
) -> (SweepStats, ParetoFold<FrontierPoint>) {
    let plan = grid.plan(chain.scale_index);
    let assignment = island_switch_assignment(grid.vcgs(), plan, &chain.counts, cfg);
    let candidates = grid.candidates_of(chain);
    let outcomes = evaluate_candidate_chain(spec, vi, plan, &assignment, &candidates, cfg);

    let mut stats = SweepStats {
        chains: 1,
        ..SweepStats::default()
    };
    let mut local = ParetoFold::new();
    for (k, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            CandidateOutcome::Feasible(point) => {
                stats.feasible += 1;
                let fp = FrontierPoint {
                    ordinal: grid.ordinal(chain.chain_id, k),
                    chain_id: chain.chain_id,
                    scale: chain.scale,
                    boosts: chain.boosts.clone(),
                    point: *point,
                };
                local.offer(fp.key(), fp);
            }
            CandidateOutcome::Duplicate => stats.duplicates += 1,
            CandidateOutcome::Infeasible(_) => stats.infeasible += 1,
        }
    }
    (stats, local)
}

/// Regenerates the full [`DesignPoint`] at one frontier coordinate by
/// re-evaluating its warm-start chain — the dynamic-sweep subsystem's way
/// of turning a parsed frontier entry (which carries only the serialized
/// point) back into a live topology without a topology parser.
///
/// `ordinal` must belong to `chain_id` (`ordinal / chain_len == chain_id`,
/// as [`crate::validate_entries`] guarantees for parsed files). Evaluation
/// is bit-deterministic, so the regenerated point's metrics match the
/// frontier entry's recorded key fields exactly; callers cross-check that
/// to detect a frontier paired with the wrong scenario.
///
/// # Errors
///
/// A `chain_id` outside the grid (or pointing at an inactive chain), an
/// `ordinal` outside the chain, or a candidate that did not evaluate to a
/// feasible point under this grid.
pub fn regenerate_point(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    cfg: &SynthesisConfig,
    chain_id: u64,
    ordinal: u64,
) -> Result<DesignPoint, String> {
    let chain = grid
        .chain(chain_id)
        .ok_or_else(|| format!("chain {chain_id} is not an active chain of the scenario's grid"))?;
    if ordinal / grid.chain_len() != chain_id {
        return Err(format!(
            "ordinal {ordinal} does not belong to chain {chain_id} (chain length {})",
            grid.chain_len()
        ));
    }
    let k = (ordinal - chain_id * grid.chain_len()) as usize;
    let plan = grid.plan(chain.scale_index);
    let assignment = island_switch_assignment(grid.vcgs(), plan, &chain.counts, cfg);
    let candidates = grid.candidates_of(&chain);
    let mut outcomes = evaluate_candidate_chain(spec, vi, plan, &assignment, &candidates, cfg);
    if k >= outcomes.len() {
        return Err(format!(
            "ordinal {ordinal} indexes candidate {k} of a {}-candidate chain",
            outcomes.len()
        ));
    }
    match outcomes.swap_remove(k) {
        CandidateOutcome::Feasible(point) => Ok(*point),
        CandidateOutcome::Duplicate => Err(format!(
            "ordinal {ordinal} is a duplicate candidate, not a frontier point"
        )),
        CandidateOutcome::Infeasible(why) => Err(format!(
            "ordinal {ordinal} is infeasible under this grid: {why}"
        )),
    }
}

/// Streams shard `shard` of `grid`: evaluates every owned chain (rayon
/// block-parallel when [`SynthesisConfig::parallel`] is set, strictly
/// sequential otherwise) and folds outcomes into a bounded-memory Pareto
/// frontier as they complete.
///
/// The result is exact and sharding-invariant: because dominance is a
/// strict partial order (see [`vi_noc_core::pareto`]), merging the
/// [`ShardRun::frontier`]s of any complete shard set — including this
/// function's own internal block merges — reproduces, bit for bit, the
/// frontier a single sequential pass over all candidates produces.
pub fn run_shard(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
) -> ShardRun {
    run_shard_impl(spec, vi, grid, shard, cfg, false)
}

/// [`run_shard`] with slack-based dominance pruning: chains whose boosts
/// only raise islands the [`SlackCertificate`] of their boost-free
/// reference certifies as slack are skipped without evaluation, counting
/// into [`SweepStats::inactive_chains`] exactly like the caps-exceeded
/// rule (plus the advisory [`ShardRun::pruned_chains`] counter).
///
/// Exactness contract: for any *complete* shard set, the merged pruned
/// frontier is byte-identical to the merged unpruned frontier — every
/// skipped chain's feasible points are dominated by retained points. A
/// single pruned shard's local frontier may differ from its unpruned twin
/// (the dominating reference can live in another stripe); only complete
/// sets are comparable. `crates/sweep/tests/prune_exact.rs` is the proof.
pub fn run_shard_pruned(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
) -> ShardRun {
    run_shard_impl(spec, vi, grid, shard, cfg, true)
}

fn run_shard_impl(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
    prune: bool,
) -> ShardRun {
    let mut stats = SweepStats::default();
    let mut pruned_chains = 0u64;
    let mut frontier: ParetoFold<FrontierPoint> = ParetoFold::new();
    let mut oracle = prune.then(|| SlackOracle::new(spec, vi, grid, cfg));

    let mut block: Vec<ChainSpec> = Vec::with_capacity(PARALLEL_BLOCK);
    let flush = |block: &mut Vec<ChainSpec>,
                 stats: &mut SweepStats,
                 frontier: &mut ParetoFold<FrontierPoint>| {
        let results: Vec<(SweepStats, ParetoFold<FrontierPoint>)> = if cfg.parallel {
            block
                .par_iter()
                .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                .collect()
        } else {
            block
                .iter()
                .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                .collect()
        };
        for (s, local) in results {
            stats.add(&s);
            frontier.absorb(local);
        }
        block.clear();
    };

    for chain_id in shard.chain_ids(grid.num_chains()) {
        match grid.chain(chain_id) {
            Some(chain) => {
                if oracle.as_mut().is_some_and(|o| o.should_skip(&chain)) {
                    stats.inactive_chains += 1;
                    pruned_chains += 1;
                } else {
                    block.push(chain);
                }
            }
            None => stats.inactive_chains += 1,
        }
        if block.len() >= PARALLEL_BLOCK {
            flush(&mut block, &mut stats, &mut frontier);
        }
    }
    flush(&mut block, &mut stats, &mut frontier);

    ShardRun {
        shard,
        stats,
        pruned_chains,
        frontier,
    }
}

/// Resumable state of one shard run: the stripe watermark, the counters,
/// and the frontier with every surviving entry kept in its serialized
/// checkpoint form ([`crate::checkpoint::frontier_entry_json`] bytes).
///
/// Keeping entries as strings is what makes kill-and-resume *byte-exact*:
/// a checkpoint written mid-run, parsed after a crash and re-serialized
/// reproduces each entry's bytes verbatim (`write(parse(write(x))) ==
/// write(x)` — see [`crate::checkpoint`]), and the Pareto fold is
/// order-independent, so the resumed run's final checkpoint equals the
/// uninterrupted run's bit for bit.
#[derive(Debug, Clone, Default)]
pub struct ShardProgress {
    /// Stripe positions consumed so far, counting active *and* inactive
    /// chain ids from the start of the shard's stripe in ascending order.
    /// Complete when this reaches [`crate::Shard::stripe_len`].
    pub chains_done: u64,
    /// Evaluation counters accumulated over the consumed positions.
    pub stats: SweepStats,
    /// Chains skipped by dominance pruning in *this process* (see
    /// [`ShardRun::pruned_chains`]); advisory, not serialized, and reset
    /// to 0 when progress is reparsed from a checkpoint file.
    pub pruned_chains: u64,
    /// Undominated outcomes, each as its serialized frontier entry.
    pub frontier: ParetoFold<String>,
}

impl ShardProgress {
    /// A fresh run: nothing consumed, empty frontier.
    pub fn new() -> Self {
        ShardProgress::default()
    }
}

/// Continues (or starts) shard `shard` of `grid` from `progress`, consuming
/// at most `limit` further stripe positions (`None` = run to the end of the
/// stripe). Returns `true` once the stripe is exhausted.
///
/// The evaluation itself is identical to [`run_shard`] — same chain
/// decoding, same block-parallel fan-out, same fold semantics — so a run
/// assembled from any sequence of `resume_shard` calls (across process
/// restarts via the checkpoint file) produces a final checkpoint
/// byte-identical to the uninterrupted run's. `crates/sweep/tests/resume.rs`
/// pins that.
pub fn resume_shard(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
    progress: &mut ShardProgress,
    limit: Option<u64>,
) -> bool {
    resume_shard_impl(spec, vi, grid, shard, cfg, progress, limit, false)
}

/// [`resume_shard`] with the dominance pruning of [`run_shard_pruned`].
///
/// The skip decision is a pure function of `(grid, chain)`, so a run
/// assembled from any mix of interrupted `resume_shard_pruned` calls skips
/// the identical chain set and reproduces the one-shot pruned runner's
/// checkpoint bytes. Mixing pruned and unpruned resumption of the *same*
/// shard is not meaningful (the serialized stats would disagree about
/// which chains were inactive).
#[allow(clippy::too_many_arguments)]
pub fn resume_shard_pruned(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
    progress: &mut ShardProgress,
    limit: Option<u64>,
) -> bool {
    resume_shard_impl(spec, vi, grid, shard, cfg, progress, limit, true)
}

#[allow(clippy::too_many_arguments)]
fn resume_shard_impl(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    shard: Shard,
    cfg: &SynthesisConfig,
    progress: &mut ShardProgress,
    limit: Option<u64>,
    prune: bool,
) -> bool {
    let total = shard.stripe_len(grid.num_chains());
    let mut remaining = limit.unwrap_or(u64::MAX);
    let mut oracle = prune.then(|| SlackOracle::new(spec, vi, grid, cfg));
    let mut ids = shard
        .chain_ids(grid.num_chains())
        .skip(progress.chains_done as usize);

    while remaining > 0 && progress.chains_done < total {
        let take = PARALLEL_BLOCK.min(usize::try_from(remaining).unwrap_or(usize::MAX));
        let block_ids: Vec<u64> = ids.by_ref().take(take).collect();
        if block_ids.is_empty() {
            break;
        }
        let mut block: Vec<ChainSpec> = Vec::with_capacity(block_ids.len());
        for &chain_id in &block_ids {
            match grid.chain(chain_id) {
                Some(chain) => {
                    if oracle.as_mut().is_some_and(|o| o.should_skip(&chain)) {
                        progress.stats.inactive_chains += 1;
                        progress.pruned_chains += 1;
                    } else {
                        block.push(chain);
                    }
                }
                None => progress.stats.inactive_chains += 1,
            }
        }
        let results: Vec<(SweepStats, ParetoFold<FrontierPoint>)> = if cfg.parallel {
            block
                .par_iter()
                .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                .collect()
        } else {
            block
                .iter()
                .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                .collect()
        };
        for (s, local) in results {
            progress.stats.add(&s);
            for (key, fp) in local.into_sorted() {
                progress
                    .frontier
                    .offer(key, crate::checkpoint::frontier_entry_json(&fp));
            }
        }
        // The watermark only advances once the whole block is folded, so a
        // checkpoint written between calls never claims unfolded work.
        progress.chains_done += block_ids.len() as u64;
        remaining -= block_ids.len() as u64;
    }
    progress.chains_done >= total
}

/// One streaming checkpoint delta of a leased [`ChainRange`]: the counters
/// and surviving frontier entries of range positions `[from, from+taken)`.
///
/// Deltas are *disjoint by construction* — each covers an interval of range
/// positions no other delta of the same coverage set touches — so a
/// coordinator folding every delta of a set of ranges that covers the grid
/// exactly once reproduces the full run's frontier bit for bit. Entries are
/// kept in serialized form ([`crate::checkpoint::frontier_entry_json`]
/// bytes): the writers are parse→write fixed points, so an entry that
/// crosses a wire as JSON and is re-emitted by the coordinator keeps its
/// exact bytes.
#[derive(Debug, Clone)]
pub struct RangeDelta {
    /// First range position the delta covers (offset from the range start,
    /// counting active *and* inactive chain ids).
    pub from: u64,
    /// Number of range positions covered; the next delta starts at
    /// `from + taken`.
    pub taken: u64,
    /// Evaluation counters of the covered positions.
    pub stats: SweepStats,
    /// Undominated outcomes of the covered positions, each as its
    /// dominance key plus its serialized frontier entry. Entries dominated
    /// *within* the interval are already dropped — exact, because every
    /// kill chain ends in a surviving witness that is included.
    pub entries: Vec<(ParetoKey, String)>,
}

/// Evaluates range positions `[from, range.len())` of `range`, emitting a
/// [`RangeDelta`] through `emit` every `every` positions (the last delta
/// may be shorter). This is the worker half of the fleet protocol: `emit`
/// typically serializes the delta onto a socket and waits for the
/// coordinator's ack; an `Err` from `emit` aborts the run and is returned
/// verbatim.
///
/// Chain decoding, block-parallel fan-out (under [`SynthesisConfig::parallel`])
/// and fold semantics are identical to [`run_shard`]'s, and with `prune`
/// set the slack-certificate skip decision is the same pure function of
/// `(grid, chain)` as [`run_shard_pruned`]'s — so folding every delta of a
/// covering range set reproduces the equivalent shard run's frontier and
/// stats exactly. `crates/sweep/tests/range_delta.rs` pins that.
///
/// # Errors
///
/// Only errors surfaced by `emit` (the evaluation itself cannot fail).
#[allow(clippy::too_many_arguments)]
pub fn run_range_deltas(
    spec: &SocSpec,
    vi: &ViAssignment,
    grid: &SweepGrid,
    range: ChainRange,
    cfg: &SynthesisConfig,
    from: u64,
    every: u64,
    prune: bool,
    emit: &mut dyn FnMut(RangeDelta) -> Result<(), String>,
) -> Result<(), String> {
    let every = every.max(1);
    let mut oracle = prune.then(|| SlackOracle::new(spec, vi, grid, cfg));
    let mut pos = from.min(range.len());

    while pos < range.len() {
        let taken = every.min(range.len() - pos);
        let mut stats = SweepStats::default();
        let mut local: ParetoFold<FrontierPoint> = ParetoFold::new();

        // The interval is consumed in PARALLEL_BLOCK slices, exactly like
        // the shard runners, so one lease's evaluation order matches the
        // unsharded run's chain-local behaviour.
        let mut offset = 0u64;
        while offset < taken {
            let block_len = PARALLEL_BLOCK.min((taken - offset) as usize);
            let mut block: Vec<ChainSpec> = Vec::with_capacity(block_len);
            for i in 0..block_len as u64 {
                let chain_id = range.start + pos + offset + i;
                match grid.chain(chain_id) {
                    Some(chain) => {
                        if oracle.as_mut().is_some_and(|o| o.should_skip(&chain)) {
                            stats.inactive_chains += 1;
                        } else {
                            block.push(chain);
                        }
                    }
                    None => stats.inactive_chains += 1,
                }
            }
            let results: Vec<(SweepStats, ParetoFold<FrontierPoint>)> = if cfg.parallel {
                block
                    .par_iter()
                    .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                    .collect()
            } else {
                block
                    .iter()
                    .map(|chain| evaluate_chain(spec, vi, grid, chain, cfg))
                    .collect()
            };
            for (s, f) in results {
                stats.add(&s);
                local.absorb(f);
            }
            offset += block_len as u64;
        }

        let entries = local
            .into_sorted()
            .into_iter()
            .map(|(key, fp)| (key, crate::checkpoint::frontier_entry_json(&fp)))
            .collect();
        emit(RangeDelta {
            from: pos,
            taken,
            stats,
            entries,
        })?;
        pos += taken;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn default_grid_frontier_matches_synthesize() {
        // On the paper-equivalent grid the streaming fold must reproduce
        // `DesignSpace::pareto_front` of the classic eager sweep, point for
        // point and bit for bit.
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let grid = SweepGrid::build(&soc, &vi, &cfg, &GridConfig::default());
        let run = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);

        let space = vi_noc_core::synthesize(&soc, &vi, &cfg).unwrap();
        let want = space.pareto_front();
        let got = run.frontier.clone().into_sorted();
        assert_eq!(got.len(), want.len());
        for ((_, fp), dp) in got.iter().zip(&want) {
            assert_eq!(fp.point.sweep_index, dp.sweep_index);
            assert_eq!(fp.point.requested_intermediate, dp.requested_intermediate);
            assert_eq!(fp.point.switch_counts, dp.switch_counts);
            assert_eq!(fp.point.topology, dp.topology);
            assert_eq!(
                fp.point.metrics.noc_dynamic_power().mw(),
                dp.metrics.noc_dynamic_power().mw()
            );
            assert_eq!(
                fp.point.metrics.avg_latency_cycles,
                dp.metrics.avg_latency_cycles
            );
        }
        assert_eq!(
            run.stats.feasible,
            space.points.len() as u64,
            "every feasible candidate was streamed"
        );
    }

    #[test]
    fn parallel_and_sequential_runs_agree() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let grid_cfg = GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0, 1.2],
            max_intermediate: 2,
        };
        let seq_cfg = SynthesisConfig {
            parallel: false,
            ..SynthesisConfig::default()
        };
        let par_cfg = SynthesisConfig {
            parallel: true,
            ..SynthesisConfig::default()
        };
        let grid = SweepGrid::build(&soc, &vi, &seq_cfg, &grid_cfg);
        let seq = run_shard(&soc, &vi, &grid, Shard::full(), &seq_cfg);
        let par = run_shard(&soc, &vi, &grid, Shard::full(), &par_cfg);
        assert_eq!(seq.stats, par.stats);
        let a = seq.frontier.into_sorted();
        let b = par.frontier.into_sorted();
        assert_eq!(a.len(), b.len());
        for ((ka, fa), (kb, fb)) in a.iter().zip(&b) {
            assert_eq!(ka.ordinal, kb.ordinal);
            assert_eq!(ka.power_mw, kb.power_mw);
            assert_eq!(ka.latency_cycles, kb.latency_cycles);
            assert_eq!(fa.point.topology, fb.point.topology);
        }
    }

    #[test]
    fn finer_axes_strictly_extend_the_explored_space() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let cfg = SynthesisConfig::default();
        let coarse = SweepGrid::build(&soc, &vi, &cfg, &GridConfig::default());
        let fine = SweepGrid::build(
            &soc,
            &vi,
            &cfg,
            &GridConfig {
                max_boost: 2,
                freq_scales: vec![1.0, 1.15],
                ..GridConfig::default()
            },
        );
        assert!(fine.num_candidates() >= 10 * coarse.num_candidates());
        let run = run_shard(&soc, &vi, &fine, Shard::full(), &cfg);
        assert_eq!(
            run.stats.chains + run.stats.inactive_chains,
            fine.num_chains()
        );
        assert!(run.stats.feasible > 0);
        // The frontier stays bounded even though the space is 10x+ larger.
        assert!(run.frontier.len() as u64 <= run.stats.feasible);
    }
}
