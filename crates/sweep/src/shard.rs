//! Deterministic striping of a [`crate::SweepGrid`] across shards.

use std::fmt;

/// One stripe of a sharded sweep: shard `index` of `count` owns every chain
/// id congruent to `index` modulo `count`.
///
/// Striping is by **chain**, not by candidate: all intermediate-count
/// candidates of a chain share their allocation context and warm-start one
/// another (PR 2's exact optimization), so splitting a chain across shards
/// would forfeit the warm start. Round-robin over chain ids also balances
/// load — neighbouring chains have similar switch counts and hence similar
/// evaluation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's stripe, `0 <= index < count`.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl Shard {
    /// The trivial sharding: one shard owning every chain (the unsharded,
    /// single-process streaming run).
    pub fn full() -> Self {
        Shard { index: 0, count: 1 }
    }

    /// Creates a shard, validating `index < count`.
    pub fn new(index: u64, count: u64) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `index/count`, e.g. `0/3`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected INDEX/COUNT, got '{s}'"))?;
        let index: u64 = i.parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: u64 = n.parse().map_err(|_| format!("bad shard count '{n}'"))?;
        Shard::new(index, count)
    }

    /// `true` iff this shard owns `chain_id`.
    pub fn owns(&self, chain_id: u64) -> bool {
        chain_id % self.count == self.index
    }

    /// The chain ids this shard owns, in ascending order.
    pub fn chain_ids(&self, num_chains: u64) -> impl Iterator<Item = u64> + '_ {
        (self.index..num_chains).step_by(self.count as usize)
    }

    /// Number of stripe positions this shard owns in a grid of
    /// `num_chains` chain ids — the completion value of the checkpoint's
    /// `chains_done` watermark.
    pub fn stripe_len(&self, num_chains: u64) -> u64 {
        num_chains.saturating_sub(self.index).div_ceil(self.count)
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_partition_the_chain_ids() {
        for n in [1u64, 2, 3, 7] {
            let mut seen = [0u32; 23];
            for i in 0..n {
                let shard = Shard::new(i, n).unwrap();
                for c in shard.chain_ids(23) {
                    seen[c as usize] += 1;
                    assert!(shard.owns(c));
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "n={n}: each chain once");
        }
    }

    #[test]
    fn stripe_len_counts_owned_positions() {
        for n in [1u64, 2, 3, 7] {
            for num_chains in [0u64, 1, 22, 23, 24] {
                for i in 0..n {
                    let shard = Shard::new(i, n).unwrap();
                    assert_eq!(
                        shard.stripe_len(num_chains),
                        shard.chain_ids(num_chains).count() as u64,
                        "shard {shard} of {num_chains}"
                    );
                }
            }
        }
    }

    #[test]
    fn parse_accepts_cli_form_and_rejects_junk() {
        assert_eq!(Shard::parse("2/5").unwrap(), Shard { index: 2, count: 5 });
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::full());
        for bad in ["", "3", "3/3", "a/2", "1/0", "1/b", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?}");
        }
        assert_eq!(Shard::parse("2/5").unwrap().to_string(), "2/5");
    }
}
