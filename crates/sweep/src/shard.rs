//! Deterministic striping of a [`crate::SweepGrid`] across shards, plus the
//! contiguous [`ChainRange`] shape the fleet coordinator leases out.

use std::fmt;

/// One stripe of a sharded sweep: shard `index` of `count` owns every chain
/// id congruent to `index` modulo `count`.
///
/// Striping is by **chain**, not by candidate: all intermediate-count
/// candidates of a chain share their allocation context and warm-start one
/// another (PR 2's exact optimization), so splitting a chain across shards
/// would forfeit the warm start. Round-robin over chain ids also balances
/// load — neighbouring chains have similar switch counts and hence similar
/// evaluation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's stripe, `0 <= index < count`.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl Shard {
    /// The trivial sharding: one shard owning every chain (the unsharded,
    /// single-process streaming run).
    pub fn full() -> Self {
        Shard { index: 0, count: 1 }
    }

    /// Creates a shard, validating `index < count`.
    pub fn new(index: u64, count: u64) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `index/count`, e.g. `0/3`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected INDEX/COUNT, got '{s}'"))?;
        let index: u64 = i.parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: u64 = n.parse().map_err(|_| format!("bad shard count '{n}'"))?;
        Shard::new(index, count)
    }

    /// `true` iff this shard owns `chain_id`.
    pub fn owns(&self, chain_id: u64) -> bool {
        chain_id % self.count == self.index
    }

    /// The chain ids this shard owns, in ascending order.
    pub fn chain_ids(&self, num_chains: u64) -> impl Iterator<Item = u64> + '_ {
        (self.index..num_chains).step_by(self.count as usize)
    }

    /// Number of stripe positions this shard owns in a grid of
    /// `num_chains` chain ids — the completion value of the checkpoint's
    /// `chains_done` watermark.
    pub fn stripe_len(&self, num_chains: u64) -> u64 {
        num_chains.saturating_sub(self.index).div_ceil(self.count)
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A contiguous half-open chain-id range `[start, end)` — the lease shape
/// of the fleet coordinator (`vi-noc-fleet`).
///
/// Where [`Shard`] stripes a grid round-robin for a *fixed* process count
/// known up front, a `ChainRange` carves out an arbitrary contiguous run of
/// chain ids: a coordinator can cut the id space into any number of ranges,
/// lease them to however many workers happen to be connected, and re-cut a
/// dead worker's remainder — all without renumbering anything. Exactness is
/// the same argument as for shards: any set of ranges that covers every
/// chain id exactly once folds to the frontier of the full sequential pass,
/// because dominance survival is pairwise and the fold is order-independent
/// (see [`vi_noc_core::pareto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainRange {
    /// First chain id of the range (inclusive).
    pub start: u64,
    /// One past the last chain id of the range (exclusive).
    pub end: u64,
}

impl ChainRange {
    /// Creates a range, validating `start <= end`.
    pub fn new(start: u64, end: u64) -> Result<Self, String> {
        if start > end {
            return Err(format!("chain range {start}..{end} is inverted"));
        }
        Ok(ChainRange { start, end })
    }

    /// The whole id space of a grid with `num_chains` chains.
    pub fn full(num_chains: u64) -> Self {
        ChainRange {
            start: 0,
            end: num_chains,
        }
    }

    /// Number of chain ids in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` when the range holds no chain ids.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` iff the range contains `chain_id`.
    pub fn contains(&self, chain_id: u64) -> bool {
        (self.start..self.end).contains(&chain_id)
    }

    /// The chain ids of the range, in ascending order.
    pub fn chain_ids(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }

    /// Cuts `0..num_chains` into consecutive ranges of `chunk` ids each
    /// (the last one possibly shorter). `chunk` is clamped to at least 1;
    /// an empty grid yields no ranges.
    pub fn cut(num_chains: u64, chunk: u64) -> Vec<ChainRange> {
        let chunk = chunk.max(1);
        (0..num_chains)
            .step_by(usize::try_from(chunk).unwrap_or(usize::MAX))
            .map(|start| ChainRange {
                start,
                end: (start + chunk).min(num_chains),
            })
            .collect()
    }
}

impl fmt::Display for ChainRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_partition_the_chain_ids() {
        for n in [1u64, 2, 3, 7] {
            let mut seen = [0u32; 23];
            for i in 0..n {
                let shard = Shard::new(i, n).unwrap();
                for c in shard.chain_ids(23) {
                    seen[c as usize] += 1;
                    assert!(shard.owns(c));
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "n={n}: each chain once");
        }
    }

    #[test]
    fn stripe_len_counts_owned_positions() {
        for n in [1u64, 2, 3, 7] {
            for num_chains in [0u64, 1, 22, 23, 24] {
                for i in 0..n {
                    let shard = Shard::new(i, n).unwrap();
                    assert_eq!(
                        shard.stripe_len(num_chains),
                        shard.chain_ids(num_chains).count() as u64,
                        "shard {shard} of {num_chains}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranges_cut_the_id_space_exactly_once() {
        for num_chains in [0u64, 1, 5, 23, 24] {
            for chunk in [1u64, 2, 7, 23, 100] {
                let ranges = ChainRange::cut(num_chains, chunk);
                let mut seen = vec![0u32; num_chains as usize];
                for r in &ranges {
                    assert!(!r.is_empty(), "cut never yields empty ranges");
                    assert!(r.len() <= chunk);
                    for c in r.chain_ids() {
                        assert!(r.contains(c));
                        seen[c as usize] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s == 1),
                    "chunk={chunk} n={num_chains}: each chain exactly once"
                );
            }
        }
        assert!(ChainRange::cut(0, 4).is_empty());
        assert_eq!(ChainRange::cut(10, 0), ChainRange::cut(10, 1));
    }

    #[test]
    fn range_construction_validates_and_displays() {
        assert!(ChainRange::new(3, 2).is_err());
        let r = ChainRange::new(2, 9).unwrap();
        assert_eq!(r.len(), 7);
        assert_eq!(r.to_string(), "2..9");
        assert_eq!(ChainRange::full(5), ChainRange { start: 0, end: 5 });
        assert!(ChainRange::new(4, 4).unwrap().is_empty());
    }

    #[test]
    fn parse_accepts_cli_form_and_rejects_junk() {
        assert_eq!(Shard::parse("2/5").unwrap(), Shard { index: 2, count: 5 });
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::full());
        for bad in ["", "3", "3/3", "a/2", "1/0", "1/b", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?}");
        }
        assert_eq!(Shard::parse("2/5").unwrap().to_string(), "2/5");
    }
}
