//! The sweep grid: lazy enumeration of candidate topologies over axes finer
//! than Algorithm 1's global `(i, k)` pair.
//!
//! A grid point is identified by four coordinates:
//!
//! 1. **frequency scale** — an alternative [`FrequencyPlan`], every island
//!    clock scaled up by a factor `>= 1.0` (see [`FrequencyPlan::scaled`]);
//! 2. **base sweep index** — Algorithm 1's switch-count schedule at that
//!    plan (`switch_counts_for_sweep`, deduplicated exactly like
//!    `SweepPlan::build`);
//! 3. **per-island boost** — extra switches added to *individual* islands on
//!    top of the base schedule, `0..=max_boost` each, capped at one switch
//!    per core (the paper only ever grows all islands in lock step; the
//!    boost axis explores the asymmetric count vectors in between);
//! 4. **intermediate count** `k` — as today, `0..=max_intermediate`.
//!
//! Coordinates 1–3 select a *chain*: the set of candidates sharing a switch
//! assignment, evaluated warm-started in ascending-`k` order exactly like
//! `synthesize` evaluates its per-sweep-index chains. Chains are numbered
//! `0..num_chains()` in mixed-radix order and decoded on demand
//! ([`SweepGrid::chain`]) — nothing proportional to the grid size is ever
//! materialized, so grids of 10⁴–10⁵ candidates (and far beyond) cost a few
//! frequency plans and base count vectors up front.
//!
//! Every candidate owns a stable global **ordinal**
//! (`chain_id * (max_intermediate + 1) + k`) used as the Pareto tiebreak, so
//! any sharding of the chains folds to the identical frontier.

use vi_noc_core::{
    build_vcg, switch_counts_for_sweep, FrequencyPlan, SweepCandidate, SynthesisConfig, Vcg,
};
use vi_noc_soc::{SocSpec, ViAssignment};

/// The grid's axis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Largest per-island switch-count boost on top of the base schedule.
    /// `0` restricts the grid to the paper's lock-step count vectors.
    pub max_boost: usize,
    /// Frequency-plan scale factors, each finite and `>= 1.0`. `vec![1.0]`
    /// restricts the grid to the baseline plan.
    pub freq_scales: Vec<f64>,
    /// Largest intermediate-island switch count; the `k` axis is
    /// `0..=max_intermediate`.
    pub max_intermediate: usize,
}

impl Default for GridConfig {
    /// The paper-equivalent grid: no boosts, baseline frequency plan, and
    /// the default intermediate sweep.
    fn default() -> Self {
        GridConfig {
            max_boost: 0,
            freq_scales: vec![1.0],
            max_intermediate: SynthesisConfig::default().max_intermediate_switches,
        }
    }
}

/// One refinement window: a sub-box of a fine grid's chain coordinates,
/// spawned around a surviving coarse-frontier point by the `refine` stage.
///
/// A windowed grid (see [`SweepGrid::build_windowed`]) treats every chain
/// outside all of its windows as inactive, exactly like the caps-exceeded
/// and duplicate-of-earlier-base rules — chain ids, ordinals, striping and
/// checkpoint bytes are those of the *full* fine grid, so wherever the
/// windows cover the grid, a refined run's frontier entries are
/// byte-identical to the exhaustive fine run's. Windows are recorded in the
/// [`crate::GridDescriptor`], which is what keeps coarse and refined
/// checkpoints from ever merging accidentally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineWindow {
    /// Fine-grid scale indices the window spans (sorted, deduplicated).
    pub scales: Vec<usize>,
    /// Smallest base sweep index (1-based, inclusive).
    pub base_lo: usize,
    /// Largest base sweep index (1-based, inclusive).
    pub base_hi: usize,
    /// Smallest per-island boost (inclusive, applies to every island).
    pub boost_lo: usize,
    /// Largest per-island boost (inclusive, applies to every island).
    pub boost_hi: usize,
}

impl RefineWindow {
    /// `true` when the chain coordinate lies inside this window.
    pub fn contains(&self, scale_index: usize, base_sweep_index: usize, boosts: &[usize]) -> bool {
        self.scales.contains(&scale_index)
            && (self.base_lo..=self.base_hi).contains(&base_sweep_index)
            && boosts
                .iter()
                .all(|&b| (self.boost_lo..=self.boost_hi).contains(&b))
    }
}

/// One frequency-scale slice of the grid.
#[derive(Debug, Clone)]
struct ScaleAxis {
    scale: f64,
    plan: FrequencyPlan,
    /// Deduplicated base count vectors, indexed by `base_sweep_index - 1`.
    base: Vec<Vec<usize>>,
}

/// A lazily enumerable design-space grid for one `(spec, vi)` pair.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    vcgs: Vec<Vcg>,
    /// One switch per core is the hard ceiling of island `j`'s count.
    caps: Vec<usize>,
    scales: Vec<ScaleAxis>,
    cfg: GridConfig,
    /// The effective `k` axis bound: `cfg.max_intermediate`, forced to 0
    /// when [`SynthesisConfig::allow_intermediate_vi`] is off — the grid
    /// must never explore candidates the synthesis config forbids.
    max_mid: usize,
    /// `(max_boost + 1)^island_count`: boost codes per base vector.
    boost_codes: u64,
    /// Chain-id offset of each scale slice (prefix sums), plus the total.
    chain_offsets: Vec<u64>,
    /// Refinement windows; empty for a full (unwindowed) grid. Non-empty
    /// windows deactivate every chain outside all of them.
    windows: Vec<RefineWindow>,
}

/// One decoded chain: the candidates of a `(scale, base index, boost)` grid
/// coordinate, which share a switch assignment and warm-start one another.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    /// The chain's id in `0..num_chains()`.
    pub chain_id: u64,
    /// Index into the configured `freq_scales`.
    pub scale_index: usize,
    /// The frequency scale factor itself.
    pub scale: f64,
    /// Base sweep index (1-based, Algorithm 1's schedule at this scale).
    pub base_sweep_index: usize,
    /// Per-island extra switches on top of the base schedule.
    pub boosts: Vec<usize>,
    /// The resulting per-island switch counts (base + boost).
    pub counts: Vec<usize>,
}

impl SweepGrid {
    /// Builds the grid skeleton: VCGs, one frequency plan per scale, and
    /// each scale's deduplicated base count schedule. Cost is independent of
    /// the number of grid candidates.
    ///
    /// # Panics
    ///
    /// If `grid.freq_scales` is empty or contains a factor that is not
    /// finite and `>= 1.0` (underclocking would silently overload NI links;
    /// see [`FrequencyPlan::scaled`]).
    pub fn build(
        spec: &SocSpec,
        vi: &ViAssignment,
        cfg: &SynthesisConfig,
        grid: &GridConfig,
    ) -> Self {
        assert!(
            !grid.freq_scales.is_empty(),
            "grid needs at least one frequency scale"
        );
        let vcgs: Vec<Vcg> = (0..vi.island_count())
            .map(|j| build_vcg(spec, vi, j, cfg))
            .collect();
        let caps: Vec<usize> = vcgs.iter().map(Vcg::len).collect();
        let base_plan = FrequencyPlan::compute(spec, vi, cfg);

        let scales: Vec<ScaleAxis> = grid
            .freq_scales
            .iter()
            .map(|&scale| {
                let plan = base_plan.scaled(scale, cfg);
                // Same enumeration rule as `SweepPlan::build`: counts grow
                // monotonically per island, so the schedule is exhausted at
                // the first repeated vector.
                let max_sweep = caps.iter().copied().max().unwrap_or(1);
                let mut base: Vec<Vec<usize>> = Vec::new();
                for i in 1..=max_sweep {
                    let counts = switch_counts_for_sweep(&vcgs, &plan, i);
                    if base.last() == Some(&counts) {
                        break;
                    }
                    base.push(counts);
                }
                ScaleAxis { scale, plan, base }
            })
            .collect();

        let boost_codes = (grid.max_boost as u64 + 1)
            .checked_pow(u32::try_from(vcgs.len()).expect("island count fits u32"))
            .expect("boost code space fits u64");
        let mut chain_offsets = Vec::with_capacity(scales.len() + 1);
        let mut total = 0u64;
        for axis in &scales {
            chain_offsets.push(total);
            total = total
                .checked_add(axis.base.len() as u64 * boost_codes)
                .expect("chain count fits u64");
        }
        chain_offsets.push(total);

        SweepGrid {
            vcgs,
            caps,
            scales,
            max_mid: if cfg.allow_intermediate_vi {
                grid.max_intermediate
            } else {
                0
            },
            cfg: grid.clone(),
            boost_codes,
            chain_offsets,
            windows: Vec::new(),
        }
    }

    /// Builds the fine grid restricted to `windows`: identical skeleton,
    /// chain ids and ordinals as [`SweepGrid::build`] of the same axes, but
    /// every chain outside all windows decodes to `None`.
    ///
    /// Windows are canonicalized (sorted, deduplicated) so that any process
    /// deriving them from the same coarse frontier builds a byte-identical
    /// [`crate::GridDescriptor`] — the merge-compatibility requirement for
    /// refined shard checkpoints.
    pub fn build_windowed(
        spec: &SocSpec,
        vi: &ViAssignment,
        cfg: &SynthesisConfig,
        grid: &GridConfig,
        mut windows: Vec<RefineWindow>,
    ) -> Self {
        windows.sort_by(|a, b| {
            (&a.scales, a.base_lo, a.base_hi, a.boost_lo, a.boost_hi)
                .cmp(&(&b.scales, b.base_lo, b.base_hi, b.boost_lo, b.boost_hi))
        });
        windows.dedup();
        let mut built = SweepGrid::build(spec, vi, cfg, grid);
        built.windows = windows;
        built
    }

    /// The refinement windows (empty for a full grid).
    pub fn windows(&self) -> &[RefineWindow] {
        &self.windows
    }

    /// The grid's axis configuration.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// The per-island VI communication graphs (shared by every chain).
    pub fn vcgs(&self) -> &[Vcg] {
        &self.vcgs
    }

    /// The frequency plan of scale slice `scale_index`.
    pub fn plan(&self, scale_index: usize) -> &FrequencyPlan {
        &self.scales[scale_index].plan
    }

    /// Total number of chain ids (active and inactive).
    pub fn num_chains(&self) -> u64 {
        *self.chain_offsets.last().expect("offsets non-empty")
    }

    /// Candidates per chain: `max_intermediate + 1` (just 1 when
    /// [`SynthesisConfig::allow_intermediate_vi`] forbids the intermediate
    /// island — the grid honors the synthesis config).
    pub fn chain_len(&self) -> u64 {
        self.max_mid as u64 + 1
    }

    /// Number of *active* chains. A chain id is inactive — decoding to
    /// `None` — when evaluating it could only duplicate another chain's
    /// work:
    ///
    /// * its boost vector pushes an island past the one-switch-per-core
    ///   cap (the clamped vector is reachable through a smaller code), or
    /// * its count vector is already reachable from the *previous* base
    ///   sweep index with in-range boosts (the base schedule grows every
    ///   unsaturated island by one, so e.g. base `i` with all-one boosts
    ///   equals base `i+1` with none; the smallest-base representation is
    ///   the canonical one).
    ///
    /// Closed form, no enumeration — except on windowed grids, where the
    /// window boxes intersect the cap/duplicate rules in irregular ways and
    /// the count falls back to decoding every id (windowed grids are small
    /// by construction; that is their point).
    pub fn num_active_chains(&self) -> u64 {
        if !self.windows.is_empty() {
            return (0..self.num_chains())
                .filter(|&c| self.chain(c).is_some())
                .count() as u64;
        }
        self.scales
            .iter()
            .map(|axis| {
                axis.base
                    .iter()
                    .enumerate()
                    .map(|(i, counts)| {
                        // Boost codes within the caps…
                        let in_cap: u64 = counts
                            .iter()
                            .zip(&self.caps)
                            .map(|(&c, &cap)| (self.cfg.max_boost.min(cap - c) + 1) as u64)
                            .product();
                        // …minus those whose count vector the previous base
                        // index also reaches (boost'_j = boost_j + delta_j
                        // must stay <= max_boost for every island).
                        let dup: u64 = if i == 0 {
                            0
                        } else {
                            counts
                                .iter()
                                .zip(&axis.base[i - 1])
                                .zip(&self.caps)
                                .map(|((&c, &prev), &cap)| {
                                    let delta = c - prev;
                                    match self.cfg.max_boost.checked_sub(delta) {
                                        Some(room) => (room.min(cap - c) + 1) as u64,
                                        None => 0,
                                    }
                                })
                                .product()
                        };
                        in_cap - dup
                    })
                    .sum::<u64>()
            })
            .sum()
    }

    /// Number of candidates the grid will actually evaluate
    /// (`num_active_chains() * chain_len()`).
    pub fn num_candidates(&self) -> u64 {
        self.num_active_chains() * self.chain_len()
    }

    /// Global candidate ordinal of `(chain_id, k)` — the Pareto tiebreak
    /// index, stable across any sharding.
    pub fn ordinal(&self, chain_id: u64, k: usize) -> u64 {
        chain_id * self.chain_len() + k as u64
    }

    /// Decodes chain `chain_id`, or `None` if the id is inactive — its
    /// boost vector exceeds an island's core count, or its count vector is
    /// a duplicate of one reachable from the previous base sweep index
    /// (see [`SweepGrid::num_active_chains`] for both rules).
    ///
    /// # Panics
    ///
    /// If `chain_id >= num_chains()`.
    pub fn chain(&self, chain_id: u64) -> Option<ChainSpec> {
        assert!(chain_id < self.num_chains(), "chain id out of range");
        let scale_index = match self.chain_offsets[1..]
            .iter()
            .position(|&off| chain_id < off)
        {
            Some(s) => s,
            None => unreachable!("offset table covers every id"),
        };
        let axis = &self.scales[scale_index];
        let rem = chain_id - self.chain_offsets[scale_index];
        let base_index = (rem / self.boost_codes) as usize;
        let mut code = rem % self.boost_codes;

        let radix = self.cfg.max_boost as u64 + 1;
        let base = &axis.base[base_index];
        let mut boosts = Vec::with_capacity(base.len());
        let mut counts = Vec::with_capacity(base.len());
        for (j, &b) in base.iter().enumerate() {
            let boost = (code % radix) as usize;
            code /= radix;
            if b + boost > self.caps[j] {
                return None;
            }
            boosts.push(boost);
            counts.push(b + boost);
        }
        // Duplicate-of-earlier-base check: if every island could absorb the
        // base i-1 -> i growth into its boost budget, this exact count
        // vector was already enumerated at base index i-1 (canonical, being
        // the smaller chain id); checking one step back suffices because
        // the per-island growth only accumulates further back.
        if base_index > 0
            && base
                .iter()
                .zip(&axis.base[base_index - 1])
                .zip(&boosts)
                .all(|((&b, &prev), &boost)| boost + (b - prev) <= self.cfg.max_boost)
        {
            return None;
        }
        // Window check: a refined grid only activates chains inside one of
        // its windows. This runs *after* the canonical-representation rules
        // so that windowed and full grids agree on which id represents each
        // count vector — a window can only hide chains, never re-home them.
        if !self.windows.is_empty()
            && !self
                .windows
                .iter()
                .any(|w| w.contains(scale_index, base_index + 1, &boosts))
        {
            return None;
        }
        Some(ChainSpec {
            chain_id,
            scale_index,
            scale: axis.scale,
            base_sweep_index: base_index + 1,
            boosts,
            counts,
        })
    }

    /// The candidates of a chain, in the ascending-`k` order
    /// [`vi_noc_core::evaluate_candidate_chain`] requires.
    pub fn candidates_of(&self, chain: &ChainSpec) -> Vec<SweepCandidate> {
        (0..=self.max_mid)
            .map(|k| SweepCandidate {
                sweep_index: chain.base_sweep_index,
                switch_counts: chain.counts.clone(),
                requested_intermediate: k,
            })
            .collect()
    }

    /// The chain id encoding `(scale_index, base_sweep_index, boosts)` —
    /// the inverse of [`SweepGrid::chain`]'s decode, whether or not the id
    /// is active.
    ///
    /// # Panics
    ///
    /// If a coordinate is out of range or a boost exceeds `max_boost`.
    pub fn chain_id_of(
        &self,
        scale_index: usize,
        base_sweep_index: usize,
        boosts: &[usize],
    ) -> u64 {
        assert_eq!(boosts.len(), self.vcgs.len(), "one boost per island");
        let radix = self.cfg.max_boost as u64 + 1;
        let mut code = 0u64;
        for &b in boosts.iter().rev() {
            assert!(b <= self.cfg.max_boost, "boost {b} exceeds the axis");
            code = code * radix + b as u64;
        }
        self.chain_offsets[scale_index] + (base_sweep_index as u64 - 1) * self.boost_codes + code
    }

    /// The chain id canonically carrying the *zero-boost counts* of
    /// `(scale_index, base_sweep_index)`: the smallest base sweep index
    /// that reaches those counts with in-range boosts (the representation
    /// [`SweepGrid::chain`]'s duplicate rule keeps active).
    ///
    /// The pruning oracle uses this to confirm that a skipped chain's
    /// dominating reference is actually explored by the grid at hand — on
    /// windowed grids the canonical id may fall outside every window, in
    /// which case no chain of that `(scale, base)` block may be pruned.
    pub fn canonical_reference_id(&self, scale_index: usize, base_sweep_index: usize) -> u64 {
        let counts = self.base_counts(scale_index, base_sweep_index);
        for m in 1..=base_sweep_index {
            let base = &self.scales[scale_index].base[m - 1];
            // The base schedule grows monotonically per island, so
            // `counts >= base` componentwise for every earlier index.
            if counts
                .iter()
                .zip(base)
                .all(|(&c, &b)| c - b <= self.cfg.max_boost)
            {
                let boosts: Vec<usize> = counts.iter().zip(base).map(|(&c, &b)| c - b).collect();
                return self.chain_id_of(scale_index, m, &boosts);
            }
        }
        unreachable!("base_sweep_index itself always fits with zero boosts")
    }

    /// Number of scale slices.
    pub fn num_scales(&self) -> usize {
        self.scales.len()
    }

    /// The scale factor of slice `scale_index`.
    pub fn scale_value(&self, scale_index: usize) -> f64 {
        self.scales[scale_index].scale
    }

    /// Number of base sweep indices of scale slice `scale_index`.
    pub fn num_bases(&self, scale_index: usize) -> usize {
        self.scales[scale_index].base.len()
    }

    /// The boost-free switch counts of `(scale_index, base_sweep_index)`.
    ///
    /// # Panics
    ///
    /// If either coordinate is out of range (`base_sweep_index` is
    /// 1-based).
    pub fn base_counts(&self, scale_index: usize, base_sweep_index: usize) -> &[usize] {
        &self.scales[scale_index].base[base_sweep_index - 1]
    }

    /// The boost-free *reference* candidates of
    /// `(scale_index, base_sweep_index)`, in ascending-`k` order — the
    /// chain the dominance pruning's slack certificate is computed from.
    /// Unlike [`SweepGrid::chain`], this never returns `None`: the
    /// reference counts exist even when their chain id is inactive (their
    /// canonical representative lives at an earlier base index).
    pub fn reference_candidates(
        &self,
        scale_index: usize,
        base_sweep_index: usize,
    ) -> Vec<SweepCandidate> {
        let counts = self.base_counts(scale_index, base_sweep_index).to_vec();
        (0..=self.max_mid)
            .map(|k| SweepCandidate {
                sweep_index: base_sweep_index,
                switch_counts: counts.clone(),
                requested_intermediate: k,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vi_noc_soc::{benchmarks, partition};

    fn d26_grid(grid: &GridConfig) -> SweepGrid {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        SweepGrid::build(&soc, &vi, &SynthesisConfig::default(), grid)
    }

    #[test]
    fn default_grid_matches_the_paper_schedule() {
        let grid = d26_grid(&GridConfig::default());
        // One chain per base sweep index, every one active.
        assert_eq!(grid.num_chains(), grid.scales[0].base.len() as u64);
        assert_eq!(grid.num_active_chains(), grid.num_chains());
        for c in 0..grid.num_chains() {
            let chain = grid.chain(c).expect("active");
            assert_eq!(chain.base_sweep_index, c as usize + 1);
            assert!(chain.boosts.iter().all(|&b| b == 0));
            assert_eq!(chain.scale, 1.0);
        }
    }

    #[test]
    fn boost_axis_multiplies_chains_and_respects_caps() {
        let fine = d26_grid(&GridConfig {
            max_boost: 1,
            ..GridConfig::default()
        });
        let coarse = d26_grid(&GridConfig::default());
        assert_eq!(fine.num_chains(), coarse.num_chains() * 64, "2^6 codes");
        // Active chains are fewer than ids when a base count sits at a cap.
        assert!(fine.num_active_chains() <= fine.num_chains());
        let mut seen_boosted = false;
        for c in 0..fine.num_chains() {
            if let Some(chain) = fine.chain(c) {
                for (j, &count) in chain.counts.iter().enumerate() {
                    assert!(count <= fine.caps[j], "chain {c} island {j}");
                    assert_eq!(
                        count,
                        fine.scales[chain.scale_index].base[chain.base_sweep_index - 1][j]
                            + chain.boosts[j]
                    );
                }
                seen_boosted |= chain.boosts.iter().any(|&b| b > 0);
            }
        }
        assert!(seen_boosted, "boost axis explored");
        // The closed-form active count matches enumeration.
        let enumerated = (0..fine.num_chains())
            .filter(|&c| fine.chain(c).is_some())
            .count() as u64;
        assert_eq!(fine.num_active_chains(), enumerated);
    }

    #[test]
    fn disallowing_the_intermediate_island_restricts_the_k_axis() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig {
            allow_intermediate_vi: false,
            ..SynthesisConfig::default()
        };
        let grid = SweepGrid::build(&soc, &vi, &cfg, &GridConfig::default());
        assert_eq!(grid.chain_len(), 1, "k axis collapses to {{0}}");
        let chain = grid.chain(0).expect("active");
        let cands = grid.candidates_of(&chain);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].requested_intermediate, 0);
    }

    #[test]
    fn duplicate_lock_step_chains_are_inactive() {
        // With boost 1, base index i with all-one boosts reproduces base
        // index i+1 exactly; the grid must enumerate each distinct count
        // vector exactly once per scale slice.
        let fine = d26_grid(&GridConfig {
            max_boost: 1,
            ..GridConfig::default()
        });
        let mut seen = std::collections::HashSet::new();
        for c in 0..fine.num_chains() {
            if let Some(chain) = fine.chain(c) {
                assert!(
                    seen.insert((chain.scale_index, chain.counts.clone())),
                    "chain {c} duplicates an earlier active chain's counts {:?}",
                    chain.counts
                );
            }
        }
        assert_eq!(seen.len() as u64, fine.num_active_chains());
    }

    #[test]
    fn freq_scale_axis_adds_slices_with_scaled_plans() {
        let grid = d26_grid(&GridConfig {
            freq_scales: vec![1.0, 1.25],
            ..GridConfig::default()
        });
        assert_eq!(grid.scales.len(), 2);
        let last = grid.num_chains() - 1;
        let chain = grid.chain(last).expect("active");
        assert_eq!(chain.scale_index, 1);
        assert_eq!(chain.scale, 1.25);
        assert!(
            grid.plan(1).frequency(0).hz() > grid.plan(0).frequency(0).hz(),
            "scaled slice runs faster"
        );
    }

    #[test]
    fn ordinals_are_dense_per_chain() {
        let grid = d26_grid(&GridConfig::default());
        assert_eq!(grid.ordinal(0, 0), 0);
        assert_eq!(grid.ordinal(0, 4), 4);
        assert_eq!(grid.ordinal(1, 0), grid.chain_len());
        let chain = grid.chain(1).unwrap();
        let cands = grid.candidates_of(&chain);
        assert_eq!(cands.len() as u64, grid.chain_len());
        assert!(cands
            .windows(2)
            .all(|w| w[0].requested_intermediate < w[1].requested_intermediate));
    }

    #[test]
    fn windowed_grids_share_ids_and_only_hide_chains() {
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 6).unwrap();
        let cfg = SynthesisConfig::default();
        let grid_cfg = GridConfig {
            max_boost: 1,
            ..GridConfig::default()
        };
        let full = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
        let window = RefineWindow {
            scales: vec![0],
            base_lo: 2,
            base_hi: 3,
            boost_lo: 0,
            boost_hi: 1,
        };
        let windowed = SweepGrid::build_windowed(
            &soc,
            &vi,
            &cfg,
            &grid_cfg,
            vec![window.clone(), window.clone()],
        );
        assert_eq!(windowed.windows().len(), 1, "duplicates canonicalized");
        assert_eq!(windowed.num_chains(), full.num_chains(), "same id space");
        let mut inside = 0u64;
        for c in 0..full.num_chains() {
            match (full.chain(c), windowed.chain(c)) {
                (Some(a), Some(b)) => {
                    assert_eq!(a, b, "chain {c} decodes identically");
                    assert!(window.contains(b.scale_index, b.base_sweep_index, &b.boosts));
                    inside += 1;
                }
                (Some(a), None) => {
                    assert!(!window.contains(a.scale_index, a.base_sweep_index, &a.boosts));
                }
                (None, None) => {}
                (None, Some(_)) => panic!("window activated inactive id {c}"),
            }
        }
        assert!(inside > 0, "window covers some active chains");
        assert_eq!(windowed.num_active_chains(), inside);
    }

    #[test]
    fn reference_candidates_exist_even_for_inactive_zero_boost_ids() {
        // With max_boost 1, the zero-boost chain of base index i > 1 is a
        // duplicate of base i-1 (delta fits the boost budget) — but its
        // reference counts are still well-defined and what the pruning
        // oracle certifies against.
        let fine = d26_grid(&GridConfig {
            max_boost: 1,
            ..GridConfig::default()
        });
        let cands = fine.reference_candidates(0, 2);
        assert_eq!(cands.len() as u64, fine.chain_len());
        assert_eq!(cands[0].sweep_index, 2);
        assert_eq!(cands[0].switch_counts, fine.base_counts(0, 2));
    }

    #[test]
    fn fine_grids_are_expressible_without_materialization() {
        // ~10^5 candidates: 26 islands, boost 1, two scales. Building the
        // grid must stay cheap because nothing per-candidate is allocated.
        let soc = benchmarks::d26_mobile();
        let vi = partition::logical_partition(&soc, 26).unwrap();
        let grid = SweepGrid::build(
            &soc,
            &vi,
            &SynthesisConfig::default(),
            &GridConfig {
                max_boost: 1,
                freq_scales: vec![1.0, 1.1],
                max_intermediate: 4,
            },
        );
        assert!(grid.num_chains() > 100_000, "got {}", grid.num_chains());
        // Decoding far-out ids works without enumerating predecessors: the
        // zero-boost chain of the last scale slice is active, and the
        // all-boost final id is correctly inactive (every island already
        // sits at one switch per core).
        assert!(grid.chain(grid.chain_offsets[1]).is_some());
        assert!(grid.chain(grid.num_chains() - 1).is_none());
    }
}
