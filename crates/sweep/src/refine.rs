//! Coarse-to-fine refinement: turn a merged coarse frontier into the
//! refinement windows of a finer grid.
//!
//! The `refine` stage of the sweep pipeline reads a frontier file (the
//! merged output of a coarse run), places a window around every surviving
//! point — a few base sweep indices, a boost box, and the fine scale
//! factors near the point's scale — and builds the fine grid restricted to
//! those windows ([`crate::SweepGrid::build_windowed`]). Chain ids and
//! ordinals are the *full* fine grid's, so wherever the windows cover the
//! fine grid, the refined frontier's entries are byte-identical to the
//! exhaustive fine run's; the windows are recorded in the
//! [`crate::GridDescriptor`] so refined and unrefined checkpoints can
//! never merge.
//!
//! Window derivation is deterministic (sorted, deduplicated), so any
//! process refining the same frontier file with the same parameters builds
//! the same descriptor — the merge-compatibility requirement for sharded
//! refined runs.

use crate::checkpoint::ParsedFrontier;
use crate::grid::{GridConfig, RefineWindow};
use crate::json::Value;

/// How far a refinement window extends around a surviving coarse point.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineParams {
    /// Half-width of the per-island boost box around the point's boosts.
    pub boost_radius: usize,
    /// Half-width of the base-sweep-index range around the point's index.
    pub base_radius: usize,
    /// Fine scale factors within this absolute distance of the point's
    /// scale are included.
    pub scale_window: f64,
}

impl Default for RefineParams {
    /// One step in every direction, scales within ±0.25.
    fn default() -> Self {
        RefineParams {
            boost_radius: 1,
            base_radius: 1,
            scale_window: 0.25,
        }
    }
}

/// The coordinates of one surviving coarse-frontier point, as the window
/// derivation needs them.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSeed {
    /// Frequency-plan scale factor of the point's chain.
    pub scale: f64,
    /// Base sweep index (1-based).
    pub sweep_index: usize,
    /// Per-island boosts of the point's chain.
    pub boosts: Vec<usize>,
}

fn seed_field<'v>(entry: &'v Value, key: &str, i: usize) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("frontier[{i}]: missing '{key}'"))
}

/// Extracts the window-derivation coordinates of every frontier entry.
pub fn frontier_seeds(frontier: &ParsedFrontier) -> Result<Vec<FrontierSeed>, String> {
    frontier
        .entries
        .iter()
        .enumerate()
        .map(|(i, (_, entry))| {
            let scale = seed_field(entry, "scale", i)?
                .as_f64()
                .ok_or_else(|| format!("frontier[{i}]: 'scale' is not a number"))?;
            let sweep_index = seed_field(seed_field(entry, "point", i)?, "sweep_index", i)?
                .as_u64()
                .ok_or_else(|| format!("frontier[{i}]: 'sweep_index' is not an integer"))?
                as usize;
            let boosts = match seed_field(entry, "boosts", i)? {
                Value::Arr(bs) => bs
                    .iter()
                    .map(|b| {
                        b.as_u64()
                            .map(|u| u as usize)
                            .ok_or_else(|| format!("frontier[{i}]: boost is not an integer"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(format!("frontier[{i}]: 'boosts' is not an array")),
            };
            Ok(FrontierSeed {
                scale,
                sweep_index,
                boosts,
            })
        })
        .collect()
}

/// Checks that a coarse frontier file describes the same experiment as the
/// refine invocation: same spec, same partition tag, same synthesis seed.
/// Any other combination would refine around points of a different design
/// space.
pub fn validate_frontier_source(
    frontier: &ParsedFrontier,
    spec_name: &str,
    partition: &str,
    seed: u64,
) -> Result<(), String> {
    let got_spec = frontier
        .grid
        .get("spec_name")
        .and_then(Value::as_str)
        .ok_or("frontier grid: missing 'spec_name'")?;
    if got_spec != spec_name {
        return Err(format!(
            "frontier was swept over spec '{got_spec}', not '{spec_name}'"
        ));
    }
    let got_partition = frontier
        .grid
        .get("partition")
        .and_then(Value::as_str)
        .ok_or("frontier grid: missing 'partition'")?;
    if got_partition != partition {
        return Err(format!(
            "frontier used partition '{got_partition}', not '{partition}'"
        ));
    }
    let got_seed = frontier
        .grid
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("frontier grid: missing 'seed'")?;
    if got_seed != seed {
        return Err(format!("frontier used seed {got_seed}, not {seed}"));
    }
    Ok(())
}

/// Derives the refinement windows of fine grid `fine` around `seeds`.
///
/// Per seed: the fine scale indices within `params.scale_window` of the
/// seed's scale, base sweep indices within `params.base_radius` of the
/// seed's, and a boost box from `min(boosts) - boost_radius` to
/// `max(boosts) + boost_radius` clamped to the fine boost axis. Seeds
/// whose scale has no fine neighbor contribute nothing. The result is
/// sorted and deduplicated — a pure function of `(seeds, fine, params)`.
pub fn windows_from_frontier(
    seeds: &[FrontierSeed],
    fine: &GridConfig,
    params: &RefineParams,
) -> Vec<RefineWindow> {
    let mut windows: Vec<RefineWindow> = Vec::new();
    for seed in seeds {
        let scales: Vec<usize> = fine
            .freq_scales
            .iter()
            .enumerate()
            .filter(|(_, &s)| (s - seed.scale).abs() <= params.scale_window)
            .map(|(i, _)| i)
            .collect();
        if scales.is_empty() {
            continue;
        }
        let lo = seed.boosts.iter().copied().min().unwrap_or(0);
        let hi = seed.boosts.iter().copied().max().unwrap_or(0);
        windows.push(RefineWindow {
            scales,
            base_lo: seed.sweep_index.saturating_sub(params.base_radius).max(1),
            base_hi: seed.sweep_index + params.base_radius,
            boost_lo: lo.saturating_sub(params.boost_radius),
            boost_hi: (hi + params.boost_radius).min(fine.max_boost),
        });
    }
    windows.sort_by(|a, b| {
        (&a.scales, a.base_lo, a.base_hi, a.boost_lo, a.boost_hi)
            .cmp(&(&b.scales, b.base_lo, b.base_hi, b.boost_lo, b.boost_hi))
    });
    windows.dedup();
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(scale: f64, sweep_index: usize, boosts: &[usize]) -> FrontierSeed {
        FrontierSeed {
            scale,
            sweep_index,
            boosts: boosts.to_vec(),
        }
    }

    #[test]
    fn windows_box_the_seed_and_clamp_to_the_fine_axes() {
        let fine = GridConfig {
            max_boost: 2,
            freq_scales: vec![1.0, 1.1, 1.5],
            max_intermediate: 3,
        };
        let params = RefineParams {
            boost_radius: 1,
            base_radius: 1,
            scale_window: 0.15,
        };
        let ws = windows_from_frontier(&[seed(1.0, 1, &[0, 2])], &fine, &params);
        assert_eq!(
            ws,
            vec![RefineWindow {
                scales: vec![0, 1],
                base_lo: 1,
                base_hi: 2,
                boost_lo: 0,
                boost_hi: 2,
            }]
        );
        // base_lo never drops below the 1-based floor; boost_hi clamps.
        let ws = windows_from_frontier(&[seed(1.5, 3, &[2, 2])], &fine, &params);
        assert_eq!(
            ws,
            vec![RefineWindow {
                scales: vec![2],
                base_lo: 2,
                base_hi: 4,
                boost_lo: 1,
                boost_hi: 2,
            }]
        );
    }

    #[test]
    fn duplicate_and_unmatched_seeds_collapse() {
        let fine = GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0],
            max_intermediate: 2,
        };
        let params = RefineParams::default();
        let seeds = vec![
            seed(1.0, 2, &[0, 0]),
            seed(1.0, 2, &[0, 0]), // identical window
            seed(9.0, 2, &[0, 0]), // no fine scale anywhere near
        ];
        let ws = windows_from_frontier(&seeds, &fine, &params);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].scales, vec![0]);
    }
}
