//! The serde-free JSON checkpoint format: one file per shard, merged into a
//! frontier file that is byte-identical to the unsharded run's emission.
//!
//! Byte-identity is engineered, not hoped for: every writer in the pipeline
//! (the struct writers here, [`vi_noc_core::design_point_json`] for embedded
//! points, and the [`crate::json::Value`] re-writer `merge` uses) emits a
//! fixed key order, compact layout, and shortest-round-trip numbers — so
//! `write(parse(write(x))) == write(x)` byte for byte, and a frontier
//! assembled from parsed shard files equals the frontier written directly
//! from the in-memory run.

use crate::grid::RefineWindow;
use crate::json::{self, Value};
use crate::run::{FrontierPoint, ShardProgress, ShardRun, SweepStats};
use crate::shard::Shard;
use std::fmt::Write as _;
use vi_noc_core::{
    design_point_json, json_number, json_string, json_usize_array, ParetoFold, ParetoKey,
};

/// `format` tag of shard checkpoint files.
pub const SHARD_FORMAT: &str = "vi-noc-sweep-shard-v1";
/// `format` tag of merged frontier files.
pub const FRONTIER_FORMAT: &str = "vi-noc-sweep-frontier-v1";

/// Everything that identifies a grid run, echoed into every shard file so
/// `merge` can refuse to combine shards of different sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDescriptor {
    /// Benchmark/spec name the sweep ran over.
    pub spec_name: String,
    /// Number of voltage islands.
    pub island_count: usize,
    /// Free-form partition tag (e.g. `logical:6`).
    pub partition: String,
    /// The synthesis seed (drives the min-cut partitioner).
    pub seed: u64,
    /// Grid axis: largest per-island switch-count boost.
    pub max_boost: usize,
    /// Grid axis: frequency-plan scale factors.
    pub freq_scales: Vec<f64>,
    /// Grid axis: largest intermediate-island switch count.
    pub max_intermediate: usize,
    /// Total chain ids of the grid (sharding-invariant).
    pub num_chains: u64,
    /// Refinement windows of a windowed (refined) grid; empty for a full
    /// grid. Serialized only when non-empty, so pre-refinement files keep
    /// their exact bytes — and because `merge` compares grids structurally,
    /// a coarse checkpoint (no `windows` member), a refined one, and a
    /// differently-windowed one can never merge.
    pub windows: Vec<RefineWindow>,
}

impl GridDescriptor {
    /// Builds the descriptor of `grid` (the canonical way — axis fields are
    /// taken from the grid itself, so e.g. the *effective* intermediate
    /// bound is recorded: a grid built under `allow_intermediate_vi: false`
    /// describes itself with `max_intermediate: 0` and can never be merged
    /// with shards of the unrestricted grid).
    pub fn for_grid(
        grid: &crate::grid::SweepGrid,
        spec_name: &str,
        partition: &str,
        seed: u64,
    ) -> Self {
        GridDescriptor {
            spec_name: spec_name.to_string(),
            island_count: grid.vcgs().len(),
            partition: partition.to_string(),
            seed,
            max_boost: grid.config().max_boost,
            freq_scales: grid.config().freq_scales.clone(),
            max_intermediate: (grid.chain_len() - 1) as usize,
            num_chains: grid.num_chains(),
            windows: grid.windows().to_vec(),
        }
    }

    /// Serializes the descriptor as one compact JSON object. The `windows`
    /// member is emitted only when non-empty — descriptors of full grids
    /// keep their pre-refinement bytes exactly.
    pub fn to_json(&self) -> String {
        let scales: Vec<String> = self.freq_scales.iter().map(|&s| json_number(s)).collect();
        let mut s = format!(
            "{{\"spec_name\":{},\"island_count\":{},\"partition\":{},\"seed\":{},\
             \"max_boost\":{},\"freq_scales\":[{}],\"max_intermediate\":{},\"num_chains\":{}",
            json_string(&self.spec_name),
            self.island_count,
            json_string(&self.partition),
            self.seed,
            self.max_boost,
            scales.join(","),
            self.max_intermediate,
            self.num_chains
        );
        if !self.windows.is_empty() {
            s.push_str(",\"windows\":[");
            for (i, w) in self.windows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&window_json(w));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

/// Serializes one refinement window as a compact JSON object — the format
/// used inside grid descriptors and in fleet job payloads.
pub fn window_json(w: &RefineWindow) -> String {
    format!(
        "{{\"scales\":{},\"base_lo\":{},\"base_hi\":{},\"boost_lo\":{},\"boost_hi\":{}}}",
        json_usize_array(w.scales.iter().copied()),
        w.base_lo,
        w.base_hi,
        w.boost_lo,
        w.boost_hi
    )
}

/// Parses an array of refinement-window objects (the inverse of
/// [`window_json`] over a `[...]` value), with `ctx`-prefixed errors.
///
/// # Errors
///
/// Non-array values and malformed window members.
pub fn windows_from_value(v: &Value, ctx: &str) -> Result<Vec<RefineWindow>, String> {
    match v {
        Value::Arr(ws) => ws.iter().map(|w| window_from_value(w, ctx)).collect(),
        _ => Err(format!("{ctx}: 'windows' is not an array")),
    }
}

/// Serializes the counters object used in checkpoint/frontier files and in
/// fleet delta messages.
pub fn stats_json(s: &SweepStats) -> String {
    format!(
        "{{\"chains\":{},\"inactive_chains\":{},\"feasible\":{},\"duplicates\":{},\
         \"infeasible\":{}}}",
        s.chains, s.inactive_chains, s.feasible, s.duplicates, s.infeasible
    )
}

/// Serializes one frontier entry: the dominance key fields first (so
/// `merge` can fold without touching the payload), then the chain
/// provenance, then the full design point.
pub fn frontier_entry_json(fp: &FrontierPoint) -> String {
    let boosts: Vec<String> = fp.boosts.iter().map(|b| b.to_string()).collect();
    format!(
        "{{\"ordinal\":{},\"power_mw\":{},\"latency_cycles\":{},\"chain_id\":{},\
         \"scale\":{},\"boosts\":[{}],\"point\":{}}}",
        fp.ordinal,
        json_number(fp.point.metrics.noc_dynamic_power().mw()),
        json_number(fp.point.metrics.avg_latency_cycles),
        fp.chain_id,
        json_number(fp.scale),
        boosts.join(","),
        design_point_json(&fp.point)
    )
}

/// Shared file layout of shard and frontier files: top-level members one
/// per line, frontier entries one per line. `chains_done` is the resume
/// watermark — stripe positions already folded into the file — and is
/// written for shard files only.
fn file_json(
    format: &str,
    grid_json: &str,
    shard: Option<Shard>,
    chains_done: Option<u64>,
    stats: &SweepStats,
    entries: &[String],
) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"format\":{},", json_string(format));
    let _ = write!(s, "\n\"grid\":{grid_json},");
    if let Some(sh) = shard {
        let _ = write!(
            s,
            "\n\"shard\":{{\"index\":{},\"count\":{}}},",
            sh.index, sh.count
        );
    }
    if let Some(done) = chains_done {
        let _ = write!(s, "\n\"chains_done\":{done},");
    }
    let _ = write!(s, "\n\"stats\":{},", stats_json(stats));
    s.push_str("\n\"frontier\":[");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(e);
    }
    s.push_str("\n]}\n");
    s
}

/// Entries of a frontier fold, sorted by dominance key and serialized.
fn sorted_entries(frontier: &ParetoFold<FrontierPoint>) -> Vec<String> {
    frontier
        .clone()
        .into_sorted()
        .iter()
        .map(|(_, fp)| frontier_entry_json(fp))
        .collect()
}

/// Entries of a [`ShardProgress`] fold, sorted by dominance key (the
/// payloads are already serialized).
fn sorted_progress_entries(frontier: &ParetoFold<String>) -> Vec<String> {
    frontier
        .clone()
        .into_sorted()
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

/// Serializes one (complete) shard run's checkpoint file.
pub fn shard_checkpoint_json(desc: &GridDescriptor, run: &ShardRun) -> String {
    file_json(
        SHARD_FORMAT,
        &desc.to_json(),
        Some(run.shard),
        Some(run.shard.stripe_len(desc.num_chains)),
        &run.stats,
        &sorted_entries(&run.frontier),
    )
}

/// Serializes a (possibly partial) resumable run's checkpoint file. For a
/// run driven to completion, the output is byte-identical to
/// [`shard_checkpoint_json`] of the equivalent [`crate::run_shard`] run.
pub fn shard_progress_json(
    desc: &GridDescriptor,
    shard: Shard,
    progress: &ShardProgress,
) -> String {
    file_json(
        SHARD_FORMAT,
        &desc.to_json(),
        Some(shard),
        Some(progress.chains_done),
        &progress.stats,
        &sorted_progress_entries(&progress.frontier),
    )
}

/// Serializes a frontier file directly from an in-memory unsharded run —
/// byte-identical to merging that run's (or any complete shard set's)
/// checkpoint files.
pub fn frontier_json(desc: &GridDescriptor, run: &ShardRun) -> String {
    file_json(
        FRONTIER_FORMAT,
        &desc.to_json(),
        None,
        None,
        &run.stats,
        &sorted_entries(&run.frontier),
    )
}

/// [`frontier_json`] for a resumable unsharded run driven to completion.
pub fn frontier_progress_json(desc: &GridDescriptor, progress: &ShardProgress) -> String {
    file_json(
        FRONTIER_FORMAT,
        &desc.to_json(),
        None,
        None,
        &progress.stats,
        &sorted_progress_entries(&progress.frontier),
    )
}

/// A parsed shard checkpoint, payloads kept as raw JSON values.
#[derive(Debug, Clone)]
pub struct ParsedShard {
    /// The grid descriptor, unparsed (compared structurally by `merge`).
    pub grid: Value,
    /// Which stripe this file covers.
    pub shard: Shard,
    /// Resume watermark: stripe positions folded into the file. `None` for
    /// files written before the watermark existed (treated as complete).
    pub chains_done: Option<u64>,
    /// The shard's counters.
    pub stats: SweepStats,
    /// Frontier entries: dominance key + the full entry value.
    pub entries: Vec<(ParetoKey, Value)>,
}

impl ParsedShard {
    /// Total chain ids of the grid this checkpoint describes.
    pub fn num_chains(&self) -> Result<u64, String> {
        u64_field(&self.grid, "num_chains", "grid")
    }

    /// `true` iff the checkpoint covers its whole stripe (files without a
    /// watermark predate partial checkpoints and are complete by
    /// construction).
    pub fn is_complete(&self) -> Result<bool, String> {
        match self.chains_done {
            None => Ok(true),
            Some(done) => Ok(done >= self.shard.stripe_len(self.num_chains()?)),
        }
    }

    /// Reconstructs the resumable run state this checkpoint froze, with
    /// every frontier entry re-serialized to its original bytes (the
    /// writers are parse→write fixed points, so resuming from a file loses
    /// nothing).
    pub fn to_progress(&self) -> ShardProgress {
        let mut frontier = ParetoFold::new();
        for (key, entry) in &self.entries {
            frontier.offer(*key, entry.to_json());
        }
        // Legacy files without a watermark are complete by construction —
        // resume them at the end of the stripe, not the beginning.
        let chains_done = self.chains_done.unwrap_or_else(|| {
            self.num_chains()
                .map(|n| self.shard.stripe_len(n))
                .unwrap_or(0)
        });
        ShardProgress {
            chains_done,
            stats: self.stats,
            // The advisory pruned-chain counter is per-process and not
            // serialized; a resumed run restarts it at zero.
            pruned_chains: 0,
            frontier,
        }
    }
}

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing '{key}'"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not an unsigned integer"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a number"))
}

/// Removes and returns member `key` of an object (avoids deep-cloning the
/// payload trees when dismantling a parsed checkpoint).
fn take_member(v: &mut Value, key: &str, ctx: &str) -> Result<Value, String> {
    match v {
        Value::Obj(members) => members
            .iter()
            .position(|(k, _)| k == key)
            .map(|i| members.remove(i).1)
            .ok_or_else(|| format!("{ctx}: missing '{key}'")),
        _ => Err(format!("{ctx}: not an object")),
    }
}

/// Parses the counters object of a checkpoint, frontier file, or fleet
/// delta message (the inverse of [`stats_json`]).
///
/// # Errors
///
/// Missing or non-integer counter members.
pub fn stats_from_value(stats_v: &Value) -> Result<SweepStats, String> {
    Ok(SweepStats {
        chains: u64_field(stats_v, "chains", "stats")?,
        inactive_chains: u64_field(stats_v, "inactive_chains", "stats")?,
        feasible: u64_field(stats_v, "feasible", "stats")?,
        duplicates: u64_field(stats_v, "duplicates", "stats")?,
        infeasible: u64_field(stats_v, "infeasible", "stats")?,
    })
}

/// Parses one refinement-window object of a serialized grid descriptor.
fn window_from_value(v: &Value, ctx: &str) -> Result<RefineWindow, String> {
    let scales = match field(v, "scales", ctx)? {
        Value::Arr(xs) => xs
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| format!("{ctx}: window scale is not an unsigned integer"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(format!("{ctx}: 'scales' is not an array")),
    };
    Ok(RefineWindow {
        scales,
        base_lo: u64_field(v, "base_lo", ctx)? as usize,
        base_hi: u64_field(v, "base_hi", ctx)? as usize,
        boost_lo: u64_field(v, "boost_lo", ctx)? as usize,
        boost_hi: u64_field(v, "boost_hi", ctx)? as usize,
    })
}

/// Validates every frontier entry against the serialized grid descriptor
/// and returns `(dominance key, entry)` pairs.
///
/// Checks per entry, each failing with a `frontier[i]:` path context:
///
/// * the fold key bit-matches the embedded point's metrics (tamper check);
/// * `boosts` is an integer array of exactly `island_count` elements;
/// * `chain_id` is within the grid's id space and `ordinal` belongs to
///   that chain (`ordinal / chain_len == chain_id`);
/// * on windowed grids, the entry's `(scale, sweep_index, boosts)`
///   coordinate lies inside at least one refinement window.
///
/// Shared by the checkpoint/frontier parsers here and the fleet
/// coordinator, which runs the same checks on every streamed delta before
/// folding it.
///
/// # Errors
///
/// The first failing check, as a path-contexted message.
pub fn validate_entries(
    frontier: Vec<Value>,
    grid: &Value,
) -> Result<Vec<(ParetoKey, Value)>, String> {
    let island_count = u64_field(grid, "island_count", "grid")? as usize;
    let num_chains = u64_field(grid, "num_chains", "grid")?;
    let chain_len = u64_field(grid, "max_intermediate", "grid")? + 1;
    let freq_scales: Vec<f64> = match field(grid, "freq_scales", "grid")? {
        Value::Arr(xs) => xs
            .iter()
            .map(|x| x.as_f64().ok_or("grid: freq_scale is not a number"))
            .collect::<Result<_, _>>()?,
        _ => return Err("grid: 'freq_scales' is not an array".to_string()),
    };
    let windows: Option<Vec<RefineWindow>> = match grid.get("windows") {
        None => None,
        Some(Value::Arr(ws)) => Some(
            ws.iter()
                .map(|w| window_from_value(w, "grid windows"))
                .collect::<Result<_, _>>()?,
        ),
        Some(_) => return Err("grid: 'windows' is not an array".to_string()),
    };

    let mut entries = Vec::with_capacity(frontier.len());
    for (i, entry) in frontier.into_iter().enumerate() {
        let ctx = format!("frontier[{i}]");
        let key = ParetoKey {
            power_mw: f64_field(&entry, "power_mw", &ctx)?,
            latency_cycles: f64_field(&entry, "latency_cycles", &ctx)?,
            ordinal: u64_field(&entry, "ordinal", &ctx)?,
        };
        // Cross-check the fold key against the embedded point's metrics —
        // a mismatch means the file was edited or truncated.
        let point = field(&entry, "point", &ctx)?;
        let metrics = field(point, "metrics", &ctx)?;
        let total = f64_field(field(metrics, "power_mw", &ctx)?, "total", &ctx)?;
        let lat = f64_field(metrics, "avg_latency_cycles", &ctx)?;
        if total.to_bits() != key.power_mw.to_bits()
            || lat.to_bits() != key.latency_cycles.to_bits()
        {
            return Err(format!("{ctx}: key fields disagree with point metrics"));
        }
        let boosts: Vec<u64> = match field(&entry, "boosts", &ctx)? {
            Value::Arr(bs) => bs
                .iter()
                .map(|b| {
                    b.as_u64()
                        .ok_or_else(|| format!("{ctx}: boost is not an unsigned integer"))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err(format!("{ctx}: 'boosts' is not an array")),
        };
        if boosts.len() != island_count {
            return Err(format!(
                "{ctx}: boosts arity {} does not match the grid's island_count {island_count}",
                boosts.len()
            ));
        }
        let chain_id = u64_field(&entry, "chain_id", &ctx)?;
        if chain_id >= num_chains {
            return Err(format!(
                "{ctx}: chain_id {chain_id} is outside the grid's {num_chains} chains"
            ));
        }
        if key.ordinal / chain_len != chain_id {
            return Err(format!(
                "{ctx}: ordinal {} does not belong to chain {chain_id} (chain length {chain_len})",
                key.ordinal
            ));
        }
        if let Some(windows) = &windows {
            let scale = f64_field(&entry, "scale", &ctx)?;
            let scale_index = freq_scales
                .iter()
                .position(|&s| s.to_bits() == scale.to_bits())
                .ok_or_else(|| {
                    format!("{ctx}: scale {} is not a grid scale", json_number(scale))
                })?;
            let sweep_index = u64_field(point, "sweep_index", &ctx)? as usize;
            let inside = windows.iter().any(|w| {
                w.scales.contains(&scale_index)
                    && (w.base_lo..=w.base_hi).contains(&sweep_index)
                    && boosts
                        .iter()
                        .all(|&b| (w.boost_lo as u64..=w.boost_hi as u64).contains(&b))
            });
            if !inside {
                return Err(format!(
                    "{ctx}: chain {chain_id} lies outside every refinement window"
                ));
            }
        }
        entries.push((key, entry));
    }
    Ok(entries)
}

/// Parses and validates one shard checkpoint file.
pub fn parse_shard_checkpoint(text: &str) -> Result<ParsedShard, String> {
    let mut doc = json::parse(text).map_err(|e| e.to_string())?;
    let format = field(&doc, "format", "checkpoint")?
        .as_str()
        .ok_or("checkpoint: 'format' is not a string")?
        .to_string();
    if format != SHARD_FORMAT {
        return Err(format!(
            "checkpoint: format '{format}' is not '{SHARD_FORMAT}'"
        ));
    }
    let shard_v = field(&doc, "shard", "checkpoint")?;
    let shard = Shard::new(
        u64_field(shard_v, "index", "shard")?,
        u64_field(shard_v, "count", "shard")?,
    )?;
    let chains_done = match doc.get("chains_done") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("checkpoint: 'chains_done' is not an unsigned integer")?,
        ),
    };
    let stats = stats_from_value(field(&doc, "stats", "checkpoint")?)?;
    let grid = take_member(&mut doc, "grid", "checkpoint")?;
    let frontier = match take_member(&mut doc, "frontier", "checkpoint")? {
        Value::Arr(items) => items,
        _ => return Err("checkpoint: 'frontier' is not an array".to_string()),
    };
    let entries = validate_entries(frontier, &grid)?;
    Ok(ParsedShard {
        grid,
        shard,
        chains_done,
        stats,
        entries,
    })
}

/// The grid coordinates and recorded key fields of one frontier entry —
/// everything the dynamic-sweep subsystem needs to regenerate and
/// cross-check the embedded design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierEntryCoords {
    /// Global candidate ordinal.
    pub ordinal: u64,
    /// The chain that produced the point.
    pub chain_id: u64,
    /// Recorded dynamic power of the point, mW.
    pub power_mw: f64,
    /// Recorded average zero-load latency, cycles.
    pub latency_cycles: f64,
}

/// Extracts the coordinates of one parsed frontier entry (an element of
/// [`ParsedFrontier::entries`]).
///
/// # Errors
///
/// Missing or mistyped `ordinal` / `chain_id` / `power_mw` /
/// `latency_cycles` members, with a `frontier entry:` context.
pub fn entry_coords(entry: &Value) -> Result<FrontierEntryCoords, String> {
    let ctx = "frontier entry";
    Ok(FrontierEntryCoords {
        ordinal: u64_field(entry, "ordinal", ctx)?,
        chain_id: u64_field(entry, "chain_id", ctx)?,
        power_mw: f64_field(entry, "power_mw", ctx)?,
        latency_cycles: f64_field(entry, "latency_cycles", ctx)?,
    })
}

/// A parsed merged-frontier file — the `refine` stage's input.
#[derive(Debug, Clone)]
pub struct ParsedFrontier {
    /// The grid descriptor of the run that produced the frontier, unparsed.
    pub grid: Value,
    /// The producing run's counters.
    pub stats: SweepStats,
    /// Frontier entries: dominance key + the full entry value.
    pub entries: Vec<(ParetoKey, Value)>,
}

/// Parses and validates one frontier file (the output of
/// [`merge_checkpoints`] or [`frontier_json`]), with the same per-entry
/// checks as [`parse_shard_checkpoint`].
pub fn parse_frontier_file(text: &str) -> Result<ParsedFrontier, String> {
    let mut doc = json::parse(text).map_err(|e| e.to_string())?;
    let format = field(&doc, "format", "frontier")?
        .as_str()
        .ok_or("frontier: 'format' is not a string")?
        .to_string();
    if format != FRONTIER_FORMAT {
        return Err(format!(
            "frontier: format '{format}' is not '{FRONTIER_FORMAT}'"
        ));
    }
    let stats = stats_from_value(field(&doc, "stats", "frontier")?)?;
    let grid = take_member(&mut doc, "grid", "frontier")?;
    let frontier = match take_member(&mut doc, "frontier", "frontier")? {
        Value::Arr(items) => items,
        _ => return Err("frontier: 'frontier' is not an array".to_string()),
    };
    let entries = validate_entries(frontier, &grid)?;
    Ok(ParsedFrontier {
        grid,
        stats,
        entries,
    })
}

/// Merges a complete set of shard checkpoint files into a frontier file.
///
/// Validates that every file describes the same grid, that all shard counts
/// agree, that the shard indices are exactly `0..count` (no gaps, no
/// duplicates), and that no file is a partial (resumable) checkpoint — then
/// folds all entries and re-emits the survivors. The output is
/// byte-identical to [`frontier_json`] of the unsharded run.
pub fn merge_checkpoints(files: &[String]) -> Result<String, String> {
    if files.is_empty() {
        return Err("merge needs at least one checkpoint file".to_string());
    }
    let parsed: Vec<ParsedShard> = files
        .iter()
        .enumerate()
        .map(|(i, text)| parse_shard_checkpoint(text).map_err(|e| format!("checkpoint #{i}: {e}")))
        .collect::<Result<_, _>>()?;

    let grid = parsed[0].grid.clone();
    let count = parsed[0].shard.count;
    let mut seen = vec![false; count as usize];
    let mut stats = SweepStats::default();
    let mut fold: ParetoFold<Value> = ParetoFold::new();
    for p in parsed {
        if p.grid != grid {
            return Err("checkpoints describe different grids".to_string());
        }
        if p.shard.count != count {
            return Err(format!(
                "shard counts disagree: {} vs {count}",
                p.shard.count
            ));
        }
        let idx = p.shard.index as usize;
        if seen[idx] {
            return Err(format!("shard {idx}/{count} appears twice"));
        }
        if !p.is_complete()? {
            return Err(format!(
                "shard {idx}/{count} is a partial checkpoint ({} of {} chains) — resume it \
                 to completion before merging",
                p.chains_done.unwrap_or(0),
                p.shard.stripe_len(p.num_chains()?)
            ));
        }
        seen[idx] = true;
        stats.add(&p.stats);
        for (key, entry) in p.entries {
            fold.offer(key, entry);
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!("shard {missing}/{count} is missing"));
    }

    let entries: Vec<String> = fold
        .into_sorted()
        .iter()
        .map(|(_, v)| v.to_json())
        .collect();
    Ok(file_json(
        FRONTIER_FORMAT,
        &grid.to_json(),
        None,
        None,
        &stats,
        &entries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, SweepGrid};
    use crate::run::run_shard;
    use vi_noc_core::SynthesisConfig;
    use vi_noc_soc::{benchmarks, partition};

    fn small_setup() -> (GridDescriptor, Vec<ShardRun>, ShardRun) {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let cfg = SynthesisConfig {
            parallel: false,
            ..SynthesisConfig::default()
        };
        let grid_cfg = GridConfig {
            max_boost: 1,
            freq_scales: vec![1.0],
            max_intermediate: 2,
        };
        let grid = SweepGrid::build(&soc, &vi, &cfg, &grid_cfg);
        let desc = GridDescriptor::for_grid(&grid, soc.name(), "logical:4", cfg.seed);
        let shards: Vec<ShardRun> = (0..3)
            .map(|i| run_shard(&soc, &vi, &grid, Shard::new(i, 3).unwrap(), &cfg))
            .collect();
        let full = run_shard(&soc, &vi, &grid, Shard::full(), &cfg);
        (desc, shards, full)
    }

    #[test]
    fn merge_reproduces_the_unsharded_frontier_byte_for_byte() {
        let (desc, shards, full) = small_setup();
        let files: Vec<String> = shards
            .iter()
            .map(|r| shard_checkpoint_json(&desc, r))
            .collect();
        let merged = merge_checkpoints(&files).unwrap();
        let direct = frontier_json(&desc, &full);
        assert_eq!(merged, direct);
        // And merging the single full checkpoint gives the same bytes too.
        let full_desc_file = shard_checkpoint_json(&desc, &full);
        let merged_single = merge_checkpoints(&[full_desc_file]).unwrap();
        assert_eq!(merged_single, direct);
    }

    #[test]
    fn checkpoints_round_trip_through_the_parser() {
        let (desc, shards, _) = small_setup();
        let text = shard_checkpoint_json(&desc, &shards[1]);
        let parsed = parse_shard_checkpoint(&text).unwrap();
        assert_eq!(parsed.shard, Shard::new(1, 3).unwrap());
        assert_eq!(parsed.stats, shards[1].stats);
        assert_eq!(parsed.entries.len(), shards[1].frontier.len());
        // The parsed grid re-serializes to the descriptor's exact bytes.
        assert_eq!(parsed.grid.to_json(), desc.to_json());
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_shard_sets() {
        let (desc, shards, _) = small_setup();
        let files: Vec<String> = shards
            .iter()
            .map(|r| shard_checkpoint_json(&desc, r))
            .collect();
        // Missing shard.
        let err = merge_checkpoints(&files[..2]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        // Duplicate shard.
        let dup = vec![files[0].clone(), files[0].clone(), files[1].clone()];
        let err = merge_checkpoints(&dup).unwrap_err();
        assert!(err.contains("twice"), "{err}");
        // Different grid.
        let mut other_desc = desc.clone();
        other_desc.seed ^= 1;
        let mut mixed = files.clone();
        mixed[2] = shard_checkpoint_json(&other_desc, &shards[2]);
        let err = merge_checkpoints(&mixed).unwrap_err();
        assert!(err.contains("different grids"), "{err}");
        // Tampered metrics.
        let tampered = files[0].replace("\"latency_cycles\":", "\"latency_cycles\":1e9,\"x\":");
        if tampered != files[0] {
            assert!(merge_checkpoints(&[tampered]).is_err());
        }
    }
}
