//! The `sweep` CLI: run one shard of a design-space grid, or merge shard
//! checkpoints into the final Pareto frontier.
//!
//! ```text
//! sweep run   --spec d26 --islands 6 [--partition logical|comm] [--comm-seed S]
//!             [--max-boost B] [--scales 1.0,1.15] [--max-mid M]
//!             [--shard I/N] [--seq] [--frontier] --out FILE
//! sweep merge SHARD.json... --out FILE
//! sweep info  --spec d26 --islands 6 [grid flags]
//! ```
//!
//! `run` writes a shard checkpoint (`--frontier` writes the merged-frontier
//! format directly; only valid for the unsharded `--shard 0/1`). Shards of
//! the same grid may run as separate processes on separate machines; `merge`
//! combines a complete shard set into a frontier byte-identical to the
//! unsharded run.

use std::process::ExitCode;
use std::time::Instant;
use vi_noc_core::SynthesisConfig;
use vi_noc_soc::{benchmarks, partition, SocSpec, ViAssignment};
use vi_noc_sweep::{
    frontier_json, merge_checkpoints, run_shard, shard_checkpoint_json, GridConfig, GridDescriptor,
    Shard, SweepGrid,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  sweep run   --spec <d12|d16|d20|d26|d36> --islands K [--partition logical|comm]
              [--comm-seed S] [--max-boost B] [--scales 1.0,1.15] [--max-mid M]
              [--shard I/N] [--seq] [--frontier] --out FILE
  sweep merge SHARD.json... --out FILE
  sweep info  --spec ... --islands K [grid flags]";

fn cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

/// Options shared by `run` and `info`.
struct SweepOpts {
    spec: SocSpec,
    vi: ViAssignment,
    partition_tag: String,
    grid_cfg: GridConfig,
    cfg: SynthesisConfig,
    shard: Shard,
    frontier: bool,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<SweepOpts, String> {
    let mut spec_name: Option<String> = None;
    let mut islands: Option<usize> = None;
    let mut partition_kind = "logical".to_string();
    let mut comm_seed = 1u64;
    let mut grid_cfg = GridConfig::default();
    let mut cfg = SynthesisConfig::default();
    let mut shard = Shard::full();
    let mut frontier = false;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--spec" => spec_name = Some(value("--spec")?.clone()),
            "--islands" => {
                islands = Some(
                    value("--islands")?
                        .parse()
                        .map_err(|_| "bad --islands value")?,
                )
            }
            "--partition" => partition_kind = value("--partition")?.clone(),
            "--comm-seed" => {
                comm_seed = value("--comm-seed")?
                    .parse()
                    .map_err(|_| "bad --comm-seed value")?
            }
            "--max-boost" => {
                grid_cfg.max_boost = value("--max-boost")?
                    .parse()
                    .map_err(|_| "bad --max-boost value")?
            }
            "--scales" => {
                grid_cfg.freq_scales = value("--scales")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad scale '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--max-mid" => {
                grid_cfg.max_intermediate = value("--max-mid")?
                    .parse()
                    .map_err(|_| "bad --max-mid value")?
            }
            "--shard" => shard = Shard::parse(value("--shard")?)?,
            "--seq" => cfg.parallel = false,
            "--frontier" => frontier = true,
            "--out" => out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let spec_name = spec_name.ok_or("--spec is required")?;
    let spec = match spec_name.as_str() {
        "d12" => benchmarks::d12_auto(),
        "d16" => benchmarks::d16_settop(),
        "d20" => benchmarks::d20_baseband(),
        "d26" => benchmarks::d26_mobile(),
        "d36" => benchmarks::d36_tablet(),
        other => return Err(format!("unknown spec '{other}'")),
    };
    let k = islands.ok_or("--islands is required")?;
    let (vi, partition_tag) = match partition_kind.as_str() {
        "logical" => (
            partition::logical_partition(&spec, k).map_err(|e| e.to_string())?,
            format!("logical:{k}"),
        ),
        "comm" => (
            partition::communication_partition(&spec, k, comm_seed).map_err(|e| e.to_string())?,
            format!("comm:{k}:{comm_seed}"),
        ),
        other => return Err(format!("unknown partition '{other}'")),
    };
    if grid_cfg.freq_scales.is_empty()
        || grid_cfg
            .freq_scales
            .iter()
            .any(|&s| !s.is_finite() || s < 1.0)
    {
        return Err("--scales must be a non-empty list of factors >= 1.0".to_string());
    }
    if frontier && shard != Shard::full() {
        return Err("--frontier requires the unsharded run (--shard 0/1)".to_string());
    }
    Ok(SweepOpts {
        spec,
        vi,
        partition_tag,
        grid_cfg,
        cfg,
        shard,
        frontier,
        out,
    })
}

fn descriptor(opts: &SweepOpts, grid: &SweepGrid) -> GridDescriptor {
    GridDescriptor::for_grid(grid, opts.spec.name(), &opts.partition_tag, opts.cfg.seed)
}

fn write_out(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        None | Some("-") => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let grid = SweepGrid::build(&opts.spec, &opts.vi, &opts.cfg, &opts.grid_cfg);
    let desc = descriptor(&opts, &grid);
    eprintln!(
        "sweep run: {} ({}), grid {} chains / {} candidates, shard {}",
        desc.spec_name,
        desc.partition,
        grid.num_active_chains(),
        grid.num_candidates(),
        opts.shard
    );
    let start = Instant::now();
    let run = run_shard(&opts.spec, &opts.vi, &grid, opts.shard, &opts.cfg);
    let elapsed = start.elapsed();
    eprintln!(
        "sweep run: shard {} done in {elapsed:.2?}: {} chains, {} feasible / {} duplicate / \
         {} infeasible candidates, {} frontier points",
        opts.shard,
        run.stats.chains,
        run.stats.feasible,
        run.stats.duplicates,
        run.stats.infeasible,
        run.frontier.len()
    );
    let text = if opts.frontier {
        frontier_json(&desc, &run)
    } else {
        shard_checkpoint_json(&desc, &run)
    };
    write_out(opts.out.as_deref(), &text)
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return Err("merge needs at least one checkpoint file".to_string());
    }
    let contents: Vec<String> = files
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}")))
        .collect::<Result<_, _>>()?;
    let merged = merge_checkpoints(&contents)?;
    eprintln!(
        "sweep merge: {} shard file(s) -> {} frontier bytes",
        files.len(),
        merged.len()
    );
    write_out(out.as_deref(), &merged)
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let grid = SweepGrid::build(&opts.spec, &opts.vi, &opts.cfg, &opts.grid_cfg);
    println!("spec:            {}", opts.spec.name());
    println!("partition:       {}", opts.partition_tag);
    println!("max boost:       {}", opts.grid_cfg.max_boost);
    println!("freq scales:     {:?}", opts.grid_cfg.freq_scales);
    println!("max mid:         {}", opts.grid_cfg.max_intermediate);
    println!("chain ids:       {}", grid.num_chains());
    println!("active chains:   {}", grid.num_active_chains());
    println!("candidates:      {}", grid.num_candidates());
    println!("chain length:    {}", grid.chain_len());
    Ok(())
}
