//! A minimal, serde-free JSON document model: a recursive-descent parser
//! and a byte-deterministic compact writer.
//!
//! The checkpoint pipeline round-trips documents through this module —
//! `merge` re-emits frontier entries it parsed from shard files — so the
//! writer is built to be *byte-stable* over its own output and over the
//! output of [`vi_noc_core::design_point_json`]: object key order is
//! preserved (objects are ordered key/value lists, not maps), layout is
//! compact, and numbers use Rust's shortest round-trip `Display` form, which
//! re-parses to the exact same `f64` and re-formats to the exact same text.

use std::fmt;
use vi_noc_core::{json_number, json_string};

/// One JSON value. Objects preserve insertion/parse order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered key/value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number behind this value, if it is an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string behind this value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind this value, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), byte-deterministically.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => out.push_str(&json_number(*x)),
            Value::Str(s) => out.push_str(&json_string(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Value::write`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        match text.parse::<f64>() {
            // Over-range literals like 1e999 parse to infinity; reject them
            // here so they cannot reach the writers, whose finite-number
            // contract (`json_number`) they would violate on re-emission.
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(self.err(&format!("invalid or non-finite number '{text}'"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs never appear in our own output
                            // (the writers escape only control characters);
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character. The input
                    // arrived as &str, so `b` is a valid leading byte and
                    // the full sequence is in bounds; decode just it (the
                    // whole remaining input must not be re-validated here —
                    // that would make string parsing quadratic).
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + width])
                        .expect("valid UTF-8");
                    s.push_str(chunk);
                    self.pos += width;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            // Duplicate keys are ambiguous (RFC 8259 leaves the semantics
            // undefined) and our own writers never emit them; reject rather
            // than silently shadow. Objects here have fixed small key sets,
            // so the linear scan stays cheap.
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    at: key_at,
                    msg: format!("duplicate object key '{key}'"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".to_string())
        );
        let v = parse("{\"a\":[1,2,{\"b\":false}],\"c\":null}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"open", "{a:1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_duplicate_object_keys() {
        let err = parse("{\"a\":1,\"b\":2,\"a\":3}").unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
        // Equal keys in *different* objects are fine.
        assert!(parse("[{\"a\":1},{\"a\":2}]").is_ok());
        // Nested duplicate still caught.
        assert!(parse("{\"o\":{\"x\":1,\"x\":1}}").is_err());
    }

    #[test]
    fn rejects_non_finite_numbers() {
        for bad in ["1e999", "-1e999", "[1,2,1e400]", "{\"x\":1e999}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // The largest finite doubles still parse.
        assert!(parse("1.7976931348623157e308").is_ok());
    }

    #[test]
    fn compact_writes_are_reparse_stable() {
        let doc = "{\"s\":\"x\\\"y\",\"n\":0.1,\"i\":42,\"neg\":-0,\"a\":[true,null,1e3]}";
        let v = parse(doc).unwrap();
        let out = v.to_json();
        // Our writer canonicalizes (1e3 -> 1000); its own output is a fixed
        // point of parse -> write.
        let v2 = parse(&out).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v2.to_json(), out);
    }

    #[test]
    fn multibyte_utf8_strings_survive() {
        let v = parse("\"caf\u{e9} \u{2603} \u{1f600}\"").unwrap();
        assert_eq!(v.as_str(), Some("café ☃ 😀"));
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn integer_u64_extraction_is_checked() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
