//! Sharded, streaming design-space exploration with a merging Pareto fold.
//!
//! The classic driver (`vi_noc_core::synthesize`) enumerates every
//! candidate eagerly and materializes the whole `DesignSpace` — fine for the
//! paper's ~10² candidates per SoC, a dead end for production-scale sweeps.
//! This crate turns the sweep into a subsystem that scales across processes
//! and machines while staying *exact*:
//!
//! * [`SweepGrid`] — lazy candidate enumeration over axes finer than the
//!   paper's global `(i, k)` pair: per-island switch-count boosts and
//!   alternative (overclocked) frequency plans on top of the base schedule.
//!   Grids of 10⁴–10⁵ candidates are addressed by index, never materialized.
//! * [`Shard`] — deterministic round-robin striping of the grid's *chains*
//!   (not candidates), keeping PR 2's warm-start sharing intact inside each
//!   stripe.
//! * [`run_shard`] — streams a stripe: evaluates chains through
//!   `vi_noc_core::evaluate_candidate_chain` and folds outcomes into a
//!   bounded-memory [`vi_noc_core::ParetoFold`] the moment they complete.
//! * [`checkpoint`] — a serde-free JSON checkpoint per shard plus
//!   [`merge_checkpoints`], which combines any complete shard set into a
//!   frontier file **byte-identical** to the unsharded run's emission.
//!   Exactness rests on dominance being a strict partial order
//!   (`vi_noc_core::pareto`): survival is pairwise, so folds compose in any
//!   order and across process boundaries.
//! * [`resume_shard`] / [`ShardProgress`] — preemptible shard runs: the
//!   checkpoint's `chains_done` watermark records how much of the stripe a
//!   file covers, so a killed shard resumes where it stopped and its final
//!   checkpoint is byte-identical to an uninterrupted run's.
//! * [`ChainRange`] / [`run_range_deltas`] — the fleet lease shape:
//!   contiguous chain-id ranges evaluated as a stream of *disjoint*
//!   checkpoint deltas (counters + serialized frontier entries per
//!   interval). The `vi-noc-fleet` coordinator folds deltas of any
//!   covering range set — any worker count, any kill/re-lease schedule —
//!   into the identical frontier bytes.
//! * [`run_shard_pruned`] / [`resume_shard_pruned`] — slack-certified
//!   dominance pruning: boosted chains whose zero-boost reference
//!   certifies slack on every boosted island are skipped without
//!   evaluation, exactly like the closed-form caps check. Merged pruned
//!   runs reproduce the exhaustive frontier byte-for-byte.
//! * [`refine`] — coarse-to-fine refinement: derive
//!   [`grid::RefineWindow`]s of a finer grid around a merged coarse
//!   frontier's surviving points and sweep only those windows
//!   ([`SweepGrid::build_windowed`]), with the windows recorded in the
//!   [`GridDescriptor`] so refined and exhaustive checkpoints never merge.
//!
//! The `sweep` binary (hosted by the facade package, `src/bin/sweep.rs`
//! at the workspace root, implemented in `vi-noc-api`) exposes the
//! workflow:
//!
//! ```text
//! sweep run --spec d26 --islands 6 --max-boost 1 --shard 0/3 --out a.json
//! sweep run --spec d26 --islands 6 --max-boost 1 --shard 1/3 --out b.json
//! sweep run --spec d26 --islands 6 --max-boost 1 --shard 2/3 --out c.json
//! sweep merge a.json b.json c.json --out frontier.json
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod grid;
pub mod json;
pub mod refine;
pub mod run;
pub mod shard;

pub use checkpoint::{
    entry_coords, frontier_json, frontier_progress_json, merge_checkpoints, parse_frontier_file,
    parse_shard_checkpoint, shard_checkpoint_json, shard_progress_json, stats_from_value,
    stats_json, validate_entries, window_json, windows_from_value, FrontierEntryCoords,
    GridDescriptor, ParsedFrontier, ParsedShard, FRONTIER_FORMAT, SHARD_FORMAT,
};
pub use grid::{ChainSpec, GridConfig, RefineWindow, SweepGrid};
pub use refine::{
    frontier_seeds, validate_frontier_source, windows_from_frontier, FrontierSeed, RefineParams,
};
pub use run::{
    regenerate_point, resume_shard, resume_shard_pruned, run_range_deltas, run_shard,
    run_shard_pruned, FrontierPoint, RangeDelta, ShardProgress, ShardRun, SweepStats,
};
pub use shard::{ChainRange, Shard};
