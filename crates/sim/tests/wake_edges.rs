//! Wake-list edge cases on hand-built topologies.
//!
//! The golden saturation matrix (`batching.rs`) drives synthesized designs,
//! which reach these configurations only probabilistically. The fixtures
//! here pin them deterministically with `TopologyBuilder`:
//!
//! * two upstream clock domains parked on the *same* full queue, woken by
//!   the same pop and racing for the freed slot;
//! * a watcher whose domain is slower than the popping domain, where the
//!   wake tick must round up across incommensurate `period_ps` ratios;
//! * backpressure chained across three clock domains, where each pop's wake
//!   cascades one hop upstream;
//! * gating a drained island while its former congestion partners keep
//!   popping — no wake may revive the gated domain.
//!
//! Every test asserts the engine contract: batched == stepped `SimStats`,
//! bit for bit, snapshot for snapshot.

use vi_noc_core::{Topology, TopologyBuilder};
use vi_noc_models::{Bandwidth, Frequency};
use vi_noc_sim::{SimConfig, Simulator, TrafficKind};
use vi_noc_soc::{CoreKind, CoreSpec, FlowId, SocSpec, TrafficFlow};

/// Two source cores on separate islands fanning into one destination:
/// both `sw0 → sw1` and `sw2 → sw1` upstream queues park on `sw1`'s single
/// eject queue once the destination island can no longer keep up.
///
/// `mhz = [source 0, destination, source 2]` island clocks;
/// `mbps = [flow c0→c1, flow c2→c1]` demands.
fn fan_in(mhz: [f64; 3], mbps: [f64; 2]) -> (SocSpec, Topology) {
    let mut spec = SocSpec::new("fan-in");
    let c0 = spec.add_core(CoreSpec::new("src0", CoreKind::Cpu, 1.0, 10.0, mhz[0]));
    let c1 = spec.add_core(CoreSpec::new("dst", CoreKind::Memory, 1.0, 10.0, mhz[1]));
    let c2 = spec.add_core(CoreSpec::new("src2", CoreKind::Dsp, 1.0, 10.0, mhz[2]));
    let f0 = spec.add_flow(TrafficFlow::new(c0, c1, mbps[0], 64));
    let f1 = spec.add_flow(TrafficFlow::new(c2, c1, mbps[1], 64));

    let freqs: Vec<Frequency> = [mhz[0], mhz[1], mhz[2], 1000.0]
        .iter()
        .map(|&m| Frequency::from_mhz(m))
        .collect();
    let mut b = TopologyBuilder::new(&spec, 3, freqs);
    let sw0 = b.add_switch("sw0", 0, vec![c0]);
    let sw1 = b.add_switch("sw1", 1, vec![c1]);
    let sw2 = b.add_switch("sw2", 2, vec![c2]);
    let cap = Bandwidth::from_mbps(4000.0);
    b.open_link(sw0, sw1, cap);
    b.open_link(sw2, sw1, cap);
    b.set_route(&spec, f0, vec![sw0, sw1]);
    b.set_route(&spec, f1, vec![sw2, sw1]);
    (spec, b.build())
}

/// One flow crossing three islands in series, `sw0 → sw1 → sw2`, with the
/// sink island slowest: the eject queue fills, `sw1` parks on it, `sw1`'s
/// input queue fills, `sw0` parks on that — each sink pop wakes `sw1`,
/// whose forward pops wake `sw0`.
fn chain(mhz: [f64; 3], mbps: f64) -> (SocSpec, Topology) {
    let mut spec = SocSpec::new("chain");
    let c0 = spec.add_core(CoreSpec::new("src", CoreKind::Cpu, 1.0, 10.0, mhz[0]));
    let c1 = spec.add_core(CoreSpec::new("dst", CoreKind::Memory, 1.0, 10.0, mhz[2]));
    let f0 = spec.add_flow(TrafficFlow::new(c0, c1, mbps, 64));

    let freqs: Vec<Frequency> = [mhz[0], mhz[1], mhz[2], 1000.0]
        .iter()
        .map(|&m| Frequency::from_mhz(m))
        .collect();
    let mut b = TopologyBuilder::new(&spec, 3, freqs);
    let sw0 = b.add_switch("sw0", 0, vec![c0]);
    let sw1 = b.add_switch("sw1", 1, vec![]);
    let sw2 = b.add_switch("sw2", 2, vec![c1]);
    let cap = Bandwidth::from_mbps(4000.0);
    b.open_link(sw0, sw1, cap);
    b.open_link(sw1, sw2, cap);
    b.set_route(&spec, f0, vec![sw0, sw1, sw2]);
    (spec, b.build())
}

fn assert_equivalent(spec: &SocSpec, topo: &Topology, cfg: &SimConfig, segments_ns: &[u64]) {
    let mut batched = Simulator::new(
        spec,
        topo,
        &SimConfig {
            batching: true,
            ..cfg.clone()
        },
    );
    let mut stepped = Simulator::new(
        spec,
        topo,
        &SimConfig {
            batching: false,
            ..cfg.clone()
        },
    );
    for (i, &ns) in segments_ns.iter().enumerate() {
        let sb = batched.run_for_ns(ns);
        let ss = stepped.run_for_ns(ns);
        assert_eq!(
            sb, ss,
            "batched vs stepped diverged in segment {i} (+{ns} ns) of {cfg:?}"
        );
    }
}

/// Two domains watch the same eject queue; every pop wakes both and only
/// one can take the freed slot — arbitration across the wake must match the
/// stepped engine's retry order exactly.
#[test]
fn two_domains_watching_one_queue() {
    // Combined demand 3600 MB/s versus 2800 MB/s of eject capacity at the
    // destination: both upstream queues spend most of the run parked.
    let (spec, topo) = fan_in([1000.0, 700.0, 1000.0], [1800.0, 1800.0]);
    for queue_capacity in [1, 2] {
        for traffic in [TrafficKind::Cbr, TrafficKind::Poisson] {
            let cfg = SimConfig {
                queue_capacity,
                traffic,
                ..SimConfig::default()
            };
            assert_equivalent(&spec, &topo, &cfg, &[20_000, 1, 15_000]);
        }
    }
}

/// The watching domain is slower than the popping domain and no period
/// divides another (313 / 701 / 997 MHz): the wake tick lands between grid
/// points of the watcher and must round up to its next edge, in both the
/// `watcher > popper` (same-timestamp) and `watcher < popper` (next-edge)
/// index orders — island 0 watches from below the popper index, island 2
/// from above.
#[test]
fn slow_watcher_fast_popper_tick_rounding() {
    let (spec, topo) = fan_in([313.0, 701.0, 997.0], [1100.0, 2600.0]);
    for queue_capacity in [1, 2] {
        let cfg = SimConfig {
            queue_capacity,
            ..SimConfig::default()
        };
        assert_equivalent(&spec, &topo, &cfg, &[25_000, 1, 1, 10_000]);
    }
}

/// Backpressure chained across three clock domains: the sink's pops wake
/// the middle island, whose forwards wake the source island, two hops of
/// cascaded wake lists deep.
#[test]
fn chained_backpressure_across_three_domains() {
    let (spec, topo) = chain([1000.0, 600.0, 250.0], 3200.0);
    for queue_capacity in [1, 2] {
        let cfg = SimConfig {
            queue_capacity,
            ..SimConfig::default()
        };
        assert_equivalent(&spec, &topo, &cfg, &[30_000, 1, 12_000]);
    }
}

/// Gates a congested source island after draining it, while the remaining
/// source keeps saturating the shared queue. The drain's pops must fire the
/// gated-island-bound wakes *before* the gate (a parked element implies a
/// non-empty or full queue, which `gate_island` rejects), and pops after
/// the gate must not revive the gated domain. Both engines poll the same
/// deterministic drain schedule, so gating happens at the same simulated
/// time in both.
#[test]
fn gating_a_congestion_partner_island() {
    // Saturated while both flows run (800 + 2400 > 2800 MB/s of eject
    // capacity), but the survivor alone leaves plenty of spare slots, so
    // island 2's backlog can actually drain once its flow stops (the
    // lower-indexed island's retries win ties for a freed slot, so a
    // survivor demanding most of the capacity would starve the drain —
    // identically in both engines, but then there is nothing to gate).
    let (spec, topo) = fan_in([1000.0, 700.0, 1000.0], [800.0, 2400.0]);
    let run = |batching: bool| {
        // Default queue capacity: with a 1-deep queue the 4-cycle crossing
        // dwell serializes the eject pipeline and even the survivor's
        // demand exceeds the effective throughput — nothing would drain.
        let cfg = SimConfig {
            batching,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&spec, &topo, &cfg);
        sim.run_for_ns(20_000);
        // Island 2's flow stops; its backlog must drain through the still
        // contested queue at sw1.
        sim.deactivate_flow(FlowId::from_index(1));
        let mut polls = 0;
        while !sim.island_drained(2) {
            sim.run_for_ns(500);
            polls += 1;
            assert!(polls < 200, "island 2 never drained");
        }
        sim.gate_island(2);
        (polls, sim.run_for_ns(20_000))
    };
    assert_eq!(run(true), run(false));
}

/// The point of the wake lists: a saturated run must process drastically
/// fewer ticks than the stepped reference — blocked domains sleep between
/// pops instead of busy-waiting — while producing identical stats. Tick
/// counts are deterministic, so the bound is exact, not a flaky wall-clock
/// proxy.
#[test]
fn saturated_chain_processes_far_fewer_ticks() {
    let (spec, topo) = chain([1000.0, 600.0, 250.0], 3200.0);
    let cfg = SimConfig {
        queue_capacity: 2,
        ..SimConfig::default()
    };
    let mut batched = Simulator::new(
        &spec,
        &topo,
        &SimConfig {
            batching: true,
            ..cfg.clone()
        },
    );
    let mut stepped = Simulator::new(
        &spec,
        &topo,
        &SimConfig {
            batching: false,
            ..cfg
        },
    );
    let sb = batched.run_for_ns(200_000);
    let ss = stepped.run_for_ns(200_000);
    assert_eq!(sb, ss);
    assert!(
        stepped.ticks_processed() >= 4 * batched.ticks_processed(),
        "saturated batching too weak: stepped {} ticks vs batched {}",
        stepped.ticks_processed(),
        batched.ticks_processed()
    );
}
