//! Property-based tests for the simulator: conservation, determinism, and
//! agreement with the analytic latency model on random designs.

use proptest::prelude::*;
use vi_noc_core::{synthesize, SynthesisConfig};
use vi_noc_sim::{zero_load_latency_ps, SimConfig, Simulator, TrafficKind};
use vi_noc_soc::{generate_synthetic, partition, SyntheticConfig};

fn design(
    n_cores: usize,
    seed: u64,
    k: usize,
) -> Option<(vi_noc_soc::SocSpec, vi_noc_core::Topology)> {
    let spec = generate_synthetic(&SyntheticConfig {
        n_cores,
        seed,
        ..SyntheticConfig::default()
    });
    let vi = partition::communication_partition(&spec, k.min(spec.core_count()), seed).ok()?;
    let space = synthesize(&spec, &vi, &SynthesisConfig::default()).ok()?;
    let topo = space.min_power_point()?.topology.clone();
    Some((spec, topo))
}

proptest! {
    // Every case synthesizes a full random design before simulating. The
    // event-batched engine made the simulation phase cheap (the synthesis
    // setup now dominates), so the case count is back at 10 after the
    // PR-2 trim to 6. `PROPTEST_CASES` trims for smoke runs (the shim
    // honors it as default and ceiling).
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Flits are conserved: never deliver more than injected, and everything
    /// outstanding is accounted for in the queues.
    #[test]
    fn conservation(
        n_cores in 8usize..20,
        seed in 0u64..32,
        load in 0.2f64..0.9,
        poisson in proptest::bool::ANY,
    ) {
        let Some((spec, topo)) = design(n_cores, seed, 3) else { return Ok(()); };
        let cfg = SimConfig {
            load_factor: load,
            traffic: if poisson { TrafficKind::Poisson } else { TrafficKind::Cbr },
            seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&spec, &topo, &cfg);
        let stats = sim.run_for_ns(40_000);
        prop_assert!(stats.total_delivered_packets() <= stats.total_injected_packets());
        // Per-flow deliveries are monotone in time.
        let stats2 = sim.run_for_ns(20_000);
        for fid in spec.flow_ids() {
            prop_assert!(
                stats2.flow(fid).delivered_packets >= stats.flow(fid).delivered_packets
            );
            prop_assert!(
                stats2.flow(fid).injected_packets >= stats.flow(fid).injected_packets
            );
        }
    }

    /// Measured single-packet latency never beats the analytic zero-load
    /// bound on any flow of any random design.
    #[test]
    fn zero_load_is_a_lower_bound(n_cores in 8usize..16, seed in 0u64..24) {
        let Some((spec, topo)) = design(n_cores, seed, 3) else { return Ok(()); };
        // Probe the highest-bandwidth flow alone.
        let probe = spec
            .flow_ids()
            .max_by(|&a, &b| {
                spec.flow(a)
                    .bandwidth
                    .partial_cmp(&spec.flow(b).bandwidth)
                    .unwrap()
            })
            .unwrap();
        let cfg = SimConfig {
            packet_bytes: 4,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&spec, &topo, &cfg);
        for fid in spec.flow_ids() {
            if fid != probe {
                sim.deactivate_flow(fid);
            }
        }
        let stats = sim.run_for_ns(50_000);
        if let Some(measured) = stats.flow(probe).avg_latency_ps() {
            let analytic = zero_load_latency_ps(&spec, &topo, probe).unwrap() as f64;
            prop_assert!(
                measured + 1.0 >= analytic,
                "measured {measured} ps beats zero-load bound {analytic} ps"
            );
        }
    }

    /// Same seed, same trajectory — packet-for-packet.
    #[test]
    fn determinism(seed in 0u64..32, load in 0.3f64..0.8) {
        let Some((spec, topo)) = design(12, seed, 3) else { return Ok(()); };
        let cfg = SimConfig {
            load_factor: load,
            seed,
            traffic: TrafficKind::Poisson,
            ..SimConfig::default()
        };
        let mut a = Simulator::new(&spec, &topo, &cfg);
        let mut b = Simulator::new(&spec, &topo, &cfg);
        let sa = a.run_for_ns(25_000);
        let sb = b.run_for_ns(25_000);
        for fid in spec.flow_ids() {
            prop_assert_eq!(sa.flow(fid), sb.flow(fid));
        }
    }
}
