//! The batching contract: the event-batched engine must be an *exact*
//! optimization of the cycle-stepped reference — same `SimStats`, bit for
//! bit, on every workload.
//!
//! This is the simulator's analogue of `crates/core/tests/warm_start.rs`
//! (which pins warm-started sweeps to cold evaluation): golden runs over
//! the bundled benchmarks plus property tests over random synthetic
//! designs, covering CBR and Poisson traffic, light and saturating loads,
//! multi-clock islands, segmented runs, flow deactivation and full
//! shutdown scenarios.

use proptest::prelude::*;
use vi_noc_core::{synthesize, SynthesisConfig, Topology};
use vi_noc_sim::{
    run_shutdown_scenario, ShutdownScenario, SimConfig, SimStats, Simulator, TrafficKind,
};
use vi_noc_soc::{benchmarks, generate_synthetic, partition, SocSpec, SyntheticConfig};

/// Synthesizes the minimum-power topology for a bundled benchmark.
fn design(soc: &SocSpec, k: usize) -> Topology {
    let vi = partition::logical_partition(soc, k).unwrap();
    let space = synthesize(soc, &vi, &SynthesisConfig::default()).unwrap();
    space.min_power_point().unwrap().topology.clone()
}

/// Runs the same segmented schedule in both modes and asserts each
/// intermediate snapshot (not just the final one) is identical.
fn assert_equivalent(soc: &SocSpec, topo: &Topology, cfg: &SimConfig, segments_ns: &[u64]) {
    let mut batched = Simulator::new(
        soc,
        topo,
        &SimConfig {
            batching: true,
            ..cfg.clone()
        },
    );
    let mut stepped = Simulator::new(
        soc,
        topo,
        &SimConfig {
            batching: false,
            ..cfg.clone()
        },
    );
    for (i, &ns) in segments_ns.iter().enumerate() {
        let sb: SimStats = batched.run_for_ns(ns);
        let ss: SimStats = stepped.run_for_ns(ns);
        assert_eq!(
            sb, ss,
            "batched vs stepped diverged in segment {i} (+{ns} ns) of {:?}",
            cfg
        );
    }
}

#[test]
fn golden_d12_cbr_and_poisson() {
    let soc = benchmarks::d12_auto();
    let topo = design(&soc, 4);
    for traffic in [TrafficKind::Cbr, TrafficKind::Poisson] {
        for load in [0.1, 0.85] {
            let cfg = SimConfig {
                traffic,
                load_factor: load,
                ..SimConfig::default()
            };
            assert_equivalent(&soc, &topo, &cfg, &[12_000, 1, 30_000]);
        }
    }
}

/// D26 at 6 islands is the paper's case study and the sharpest multi-clock
/// configuration the suite runs: seven distinct clock domains (six islands
/// plus the intermediate island), so same-timestamp tick coincidences and
/// cross-domain dwell timing all get exercised.
#[test]
fn golden_d26_multi_clock_islands() {
    let soc = benchmarks::d26_mobile();
    let topo = design(&soc, 6);
    for load in [0.25, 1.0] {
        let cfg = SimConfig {
            load_factor: load,
            ..SimConfig::default()
        };
        assert_equivalent(&soc, &topo, &cfg, &[20_000, 40_000]);
    }
    let cfg = SimConfig {
        traffic: TrafficKind::Poisson,
        load_factor: 0.6,
        ..SimConfig::default()
    };
    assert_equivalent(&soc, &topo, &cfg, &[25_000]);
}

/// Saturation keeps NI backlogs non-empty for long stretches and runs the
/// queues full: the wake-list path, where blocked heads and backlogged NIs
/// park instead of busy-waiting and every pop must re-arm its watchers at
/// exactly the stepped engine's retry tick.
#[test]
fn golden_overload_backpressure() {
    let soc = benchmarks::d12_auto();
    let topo = design(&soc, 4);
    let cfg = SimConfig {
        load_factor: 1.5,
        queue_capacity: 2,
        ..SimConfig::default()
    };
    assert_equivalent(&soc, &topo, &cfg, &[30_000]);
}

/// The saturation matrix on the paper's multi-clock case study: tiny
/// (1- and 2-deep) queues × overload CBR and bursty Poisson at the
/// saturation point, across D26's seven clock domains. Tiny queues park
/// and wake on almost every hop; the frequency ratios place wake targets
/// between the watcher's grid points in both index directions.
#[test]
fn golden_saturation_matrix_d26() {
    let soc = benchmarks::d26_mobile();
    let topo = design(&soc, 6);
    for queue_capacity in [1, 2] {
        for (traffic, load) in [(TrafficKind::Cbr, 1.2), (TrafficKind::Poisson, 1.0)] {
            let cfg = SimConfig {
                queue_capacity,
                traffic,
                load_factor: load,
                ..SimConfig::default()
            };
            assert_equivalent(&soc, &topo, &cfg, &[15_000, 1, 10_000]);
        }
    }
}

/// Mid-run shutdown of a congested island at overload: the drain's pops
/// must wake the upstream islands parked on the island's full queues, and
/// the whole stop–drain–gate–continue outcome must agree bit for bit.
#[test]
fn saturated_shutdown_of_congested_islands_agree() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
    let topo = space.min_power_point().unwrap().topology.clone();
    for island in 0..vi.island_count() {
        if !vi.can_shutdown(island) {
            continue;
        }
        // Stop early and drain generously: `deactivate_flow` only stops the
        // generators, so the island's staged overload backlog still has to
        // flush through queues the survivors keep contending. Queue depth
        // stays at the default — 1–2-deep queues dwell-serialize the
        // contested paths below even the backlog's drain demand, and then
        // nothing ever drains (identically in both engines, but the
        // scenario driver panics).
        let scenario = ShutdownScenario {
            island,
            stop_at_ns: 6_000,
            drain_ns: 25_000,
            post_gate_ns: 15_000,
        };
        let outcome = |batching: bool| {
            let cfg = SimConfig {
                batching,
                load_factor: 1.3,
                ..SimConfig::default()
            };
            run_shutdown_scenario(&soc, &vi, &topo, &cfg, &scenario)
        };
        assert_eq!(outcome(true), outcome(false), "island {island}");
    }
}

/// The perf half of the wake-list contract on the paper's case study.
/// Uniformly saturated D26 is *real-work dense*: every island hosts live
/// flows, so nearly every domain performs some state change almost every
/// cycle and exact batching cannot sleep it — the measured tick reduction
/// (~1.4×, the busy-wait fraction the wake lists eliminate) is the honest
/// ceiling for this workload, unlike bottleneck backpressure where whole
/// domains stall (see `wake_edges::saturated_chain_processes_far_fewer_
/// ticks`, which pins ≥4×). Tick counts are deterministic, so the bound is
/// exact, not a wall-clock proxy; wall clocks are measured by the
/// `sim_saturated` bench group.
#[test]
fn saturated_d26_batches_ticks() {
    let soc = benchmarks::d26_mobile();
    let topo = design(&soc, 6);
    let mut sims: Vec<Simulator> = [true, false]
        .iter()
        .map(|&batching| {
            Simulator::new(
                &soc,
                &topo,
                &SimConfig {
                    batching,
                    load_factor: 1.2,
                    queue_capacity: 2,
                    ..SimConfig::default()
                },
            )
        })
        .collect();
    let sb = sims[0].run_for_ns(20_000);
    let ss = sims[1].run_for_ns(20_000);
    assert_eq!(sb, ss);
    assert!(
        10 * sims[1].ticks_processed() >= 13 * sims[0].ticks_processed(),
        "saturated batching regressed below the 1.3x busy-wait floor: \
         stepped {} ticks vs batched {}",
        sims[1].ticks_processed(),
        sims[0].ticks_processed()
    );
}

/// Single-flit packets change the staging cadence (no multi-cycle packet
/// bursts), a different event-density regime than the 16-flit default.
#[test]
fn golden_single_flit_packets() {
    let soc = benchmarks::d12_auto();
    let topo = design(&soc, 4);
    let cfg = SimConfig {
        packet_bytes: 4,
        load_factor: 0.5,
        ..SimConfig::default()
    };
    assert_equivalent(&soc, &topo, &cfg, &[40_000]);
}

/// Deactivating flows mid-run must leave both engines in lock-step: the
/// drain that follows is the sparse regime batching exists for, and the
/// arbitration pointers must come out of the idle span aligned.
#[test]
fn deactivation_and_drain_stay_in_lock_step() {
    let soc = benchmarks::d26_mobile();
    let topo = design(&soc, 6);
    let run = |batching: bool| {
        let mut sim = Simulator::new(
            &soc,
            &topo,
            &SimConfig {
                batching,
                ..SimConfig::default()
            },
        );
        sim.run_for_ns(15_000);
        for (i, fid) in soc.flow_ids().enumerate() {
            if i % 2 == 0 {
                sim.deactivate_flow(fid);
            }
        }
        sim.run_for_ns(200_000);
        sim.run_for_ns(5_000)
    };
    assert_eq!(run(true), run(false));
}

/// Full shutdown scenarios — stop, drain, gate, continue — agree on every
/// outcome field for every gateable island.
#[test]
fn shutdown_scenarios_agree() {
    let soc = benchmarks::d26_mobile();
    let vi = partition::logical_partition(&soc, 6).unwrap();
    let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
    let topo = space.min_power_point().unwrap().topology.clone();
    for island in 0..vi.island_count() {
        if !vi.can_shutdown(island) {
            continue;
        }
        let scenario = ShutdownScenario {
            island,
            stop_at_ns: 15_000,
            drain_ns: 8_000,
            post_gate_ns: 20_000,
        };
        let outcome = |batching: bool| {
            let cfg = SimConfig {
                batching,
                ..SimConfig::default()
            };
            run_shutdown_scenario(&soc, &vi, &topo, &cfg, &scenario)
        };
        assert_eq!(outcome(true), outcome(false), "island {island}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random synthetic designs, random loads, both traffic kinds, random
    /// segment boundaries: batched == stepped, snapshot for snapshot.
    #[test]
    fn batched_equals_stepped_on_random_designs(
        n_cores in 8usize..20,
        seed in 0u64..64,
        load in 0.05f64..1.2,
        poisson in proptest::bool::ANY,
        seg1 in 1u64..30_000,
        seg2 in 1u64..30_000,
    ) {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        });
        let Ok(vi) = partition::communication_partition(&spec, 3.min(spec.core_count()), seed)
        else { return Ok(()); };
        let Ok(space) = synthesize(&spec, &vi, &SynthesisConfig::default()) else {
            return Ok(());
        };
        let Some(point) = space.min_power_point() else { return Ok(()); };
        let cfg = SimConfig {
            load_factor: load,
            traffic: if poisson { TrafficKind::Poisson } else { TrafficKind::Cbr },
            seed,
            ..SimConfig::default()
        };
        let mut batched = Simulator::new(&spec, &point.topology, &SimConfig { batching: true, ..cfg.clone() });
        let mut stepped = Simulator::new(&spec, &point.topology, &SimConfig { batching: false, ..cfg.clone() });
        for ns in [seg1, seg2] {
            let sb = batched.run_for_ns(ns);
            let ss = stepped.run_for_ns(ns);
            prop_assert_eq!(&sb, &ss, "diverged after +{} ns", ns);
        }
    }

    /// The saturated regime specifically: random designs driven past their
    /// capacity through tiny (1–2 deep) queues, so the wake lists carry the
    /// whole schedule — most heads are blocked, most NIs parked, and every
    /// pop must re-arm its watchers at exactly the stepped retry tick.
    #[test]
    fn batched_equals_stepped_on_saturated_designs(
        n_cores in 8usize..20,
        seed in 0u64..64,
        load in 1.0f64..2.0,
        queue_capacity in 1usize..3,
        poisson in proptest::bool::ANY,
        seg1 in 1u64..30_000,
        seg2 in 1u64..30_000,
    ) {
        let spec = generate_synthetic(&SyntheticConfig {
            n_cores,
            seed,
            ..SyntheticConfig::default()
        });
        let Ok(vi) = partition::communication_partition(&spec, 3.min(spec.core_count()), seed)
        else { return Ok(()); };
        let Ok(space) = synthesize(&spec, &vi, &SynthesisConfig::default()) else {
            return Ok(());
        };
        let Some(point) = space.min_power_point() else { return Ok(()); };
        let cfg = SimConfig {
            load_factor: load,
            queue_capacity,
            traffic: if poisson { TrafficKind::Poisson } else { TrafficKind::Cbr },
            seed,
            ..SimConfig::default()
        };
        let mut batched = Simulator::new(&spec, &point.topology, &SimConfig { batching: true, ..cfg.clone() });
        let mut stepped = Simulator::new(&spec, &point.topology, &SimConfig { batching: false, ..cfg.clone() });
        for ns in [seg1, 1, seg2] {
            let sb = batched.run_for_ns(ns);
            let ss = stepped.run_for_ns(ns);
            prop_assert_eq!(&sb, &ss, "diverged after +{} ns", ns);
        }
    }
}
