//! Analytic zero-load latency (the paper's Figure-3 metric).
//!
//! The measured counterpart — one probe flow active, every other flow
//! deactivated — is the sparsest workload the simulator runs, and the one
//! the event-batched engine accelerates the most (the `sim_long_horizon`
//! benchmark's `zero_load_probe` scenario): with a single packet in
//! flight, almost every cycle of every island is skippable.

use crate::network::SimNetwork;
use vi_noc_core::Topology;
use vi_noc_models::BisyncFifoModel;
use vi_noc_soc::{FlowId, SocSpec};

/// Zero-load latency of `flow` in cycles, as the paper counts it: one cycle
/// per link (NI links included), one per switch, plus the 4-cycle converter
/// dwell per island crossing.
///
/// This mirrors the synthesis-side latency model and is exposed here so the
/// simulator crate can cross-check measured latencies against it.
pub fn zero_load_cycles(topo: &Topology, flow: FlowId) -> Option<u32> {
    topo.route(flow).map(|r| r.latency_cycles)
}

/// Zero-load latency of `flow` in picoseconds, accounting for each hop's
/// own clock domain (slow islands tick slowly, so their "cycles" are long).
///
/// Matches the engine's timing model exactly: injection costs 2 cycles of
/// the first switch's domain (NI link + switch), each further hop costs 2
/// cycles of the downstream domain (+4 more if the hop crosses islands),
/// and ejection costs 1 cycle of the last domain (the final NI link).
pub fn zero_load_latency_ps(spec: &SocSpec, topo: &Topology, flow: FlowId) -> Option<u64> {
    let net = SimNetwork::build(spec, topo);
    let route = topo.route(flow)?;
    let mut ps: u64 = 0;
    let first = topo.switch(route.switches[0]).island_ext;
    ps += 2 * net.period_ps(first);
    for w in route.switches.windows(2) {
        let to = topo.switch(w[1]).island_ext;
        let from = topo.switch(w[0]).island_ext;
        let crossing = to != from;
        let dwell = if crossing {
            BisyncFifoModel::CROSSING_LATENCY_CYCLES as u64 * net.period_ps(to)
        } else {
            0
        };
        ps += 2 * net.period_ps(to) + dwell;
    }
    let last = topo.switch(*route.switches.last().unwrap()).island_ext;
    ps += net.period_ps(last);
    Some(ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::traffic::TrafficKind;
    use vi_noc_core::{synthesize, SynthesisConfig};
    use vi_noc_soc::{benchmarks, partition};

    #[test]
    fn cycles_match_core_model() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;
        for fid in soc.flow_ids() {
            let c = zero_load_cycles(topo, fid).unwrap();
            assert!(c >= 3, "flow {fid} latency {c} below the 1-switch minimum");
        }
    }

    /// The headline cross-check: run ONE packet per flow through the engine
    /// with everything else silent and compare against the analytic number.
    #[test]
    fn measured_zero_load_matches_analytic() {
        let soc = benchmarks::d12_auto();
        let vi = partition::logical_partition(&soc, 4).unwrap();
        let space = synthesize(&soc, &vi, &SynthesisConfig::default()).unwrap();
        let topo = &space.min_power_point().unwrap().topology;

        for probe in soc.flow_ids() {
            // Single-flit packets, only `probe` active.
            let cfg = SimConfig {
                packet_bytes: 4,
                traffic: TrafficKind::Cbr,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&soc, topo, &cfg);
            for fid in soc.flow_ids() {
                if fid != probe {
                    sim.deactivate_flow(fid);
                }
            }
            let stats = sim.run_for_ns(30_000);
            let measured = stats.flow(probe).avg_latency_ps();
            let Some(measured) = measured else {
                panic!("probe flow {probe} delivered nothing");
            };
            let analytic = zero_load_latency_ps(&soc, topo, probe).unwrap() as f64;
            // The engine quantizes to clock edges, so allow a few periods
            // of slack; zero-load must never beat the analytic bound.
            let slowest_period = (0..=vi.island_count())
                .map(|j| {
                    let f = topo.island_frequency(j);
                    1e12 / f.hz()
                })
                .fold(0.0f64, f64::max);
            assert!(
                measured + 1.0 >= analytic,
                "flow {probe}: measured {measured} ps beats analytic {analytic} ps"
            );
            assert!(
                measured <= analytic + 3.0 * slowest_period,
                "flow {probe}: measured {measured} ps far above analytic {analytic} ps"
            );
        }
    }
}
